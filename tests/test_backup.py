"""Property tests for precomputed backup trees (:mod:`repro.multicast.backup`).

Three pinned properties, each over random memberships/capacities for
both a region-splitting and a flood system:

* **exact orphan coverage** — for every primary edge and node, the
  installed plan's orphan set is exactly the frozen subtree an
  independent recomputation (from the routes' own frozen parents)
  yields, and every non-source member has a route;
* **fanout bounds** — activating a failover never pushes any backup
  parent past the descriptor's ``live_fanout_bound`` counting its
  primary children, and recovered/uncovered partition the orphan set;
* **determinism** — two from-scratch builds over the same membership
  are equal, value for value (what lets the campaign install plans in
  worker processes and compare them across runs).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.backup import (
    BackupPlan,
    FailoverTiming,
    apply_failover,
    backup_plan_for_record,
    build_backup_plan,
    delivery_gaps,
    gap_values,
    sorted_gap_items,
)
from repro.multicast.kernel import flood_tree, region_split_tree
from repro.systems import get_system
from repro.trace.causal import MulticastRecord
from tests.conftest import make_snapshot

BITS = 10
ORIGIN = 100.0
HOP = 0.02

memberships = st.sets(st.integers(min_value=0, max_value=1023), min_size=4, max_size=48)
cap_pools = st.lists(st.integers(min_value=2, max_value=12), min_size=1, max_size=6)
systems = st.sampled_from(["cam-chord", "cam-koorde"])


def build_tree(system: str, idents, caps):
    """One frozen tree (plus capacities) over a cycled-capacity ring."""
    descriptor = get_system(system)
    ordered = sorted(idents)
    capacities = [
        max(descriptor.min_capacity, caps[i % len(caps)])
        for i in range(len(ordered))
    ]
    snap = make_snapshot(BITS, ordered, capacity=capacities)
    overlay = descriptor.build_overlay(snap, uniform_fanout=3)
    builder = region_split_tree if descriptor.builds_single_tree else flood_tree
    tree = builder(overlay, snap.nodes[0])
    return descriptor, tree, {node.ident: node.capacity for node in snap.nodes}


def record_from_tree(tree, descriptor, capacities) -> MulticastRecord:
    """A fully-delivered causal record synthesized from one frozen tree."""
    deliveries = {
        ident: (parent, tree.depth[ident], ORIGIN + tree.depth[ident] * HOP)
        for ident, parent in tree.parent.items()
    }
    return MulticastRecord(
        mid=1,
        source=tree.source_ident,
        system=descriptor.name,
        bits=BITS,
        origin_time=ORIGIN,
        members=frozenset(tree.parent),
        capacities=dict(capacities),
        deliveries=deliveries,
    )


def orphan_record(tree, descriptor, capacities, plan: BackupPlan, victim: int):
    """The record after node ``victim`` died mid-dissemination: the
    victim departed, its whole subtree never delivered."""
    record = record_from_tree(tree, descriptor, capacities)
    for ident in plan.subtree(victim):
        record.deliveries.pop(ident, None)
    record.departed = frozenset({victim})
    return record


def descendants(plan: BackupPlan, root: int) -> set[int]:
    """Subtree membership recomputed from the routes' frozen parents
    alone — independent of the plan's stored ``children`` adjacency."""
    parents = {ident: route.parent for ident, route in plan.routes.items()}
    out = {root}
    changed = True
    while changed:
        changed = False
        for ident, parent in parents.items():
            if parent in out and ident not in out:
                out.add(ident)
                changed = True
    return out


@settings(max_examples=40, deadline=None)
@given(idents=memberships, caps=cap_pools, system=systems)
def test_backup_covers_exactly_the_orphan_set(idents, caps, system):
    descriptor, tree, capacities = build_tree(system, idents, caps)
    plan = build_backup_plan(tree, descriptor)
    assert set(plan.routes) == set(plan.epoch_members) - {plan.source}
    for child, route in plan.routes.items():
        assert set(plan.orphans_of_edge(route.parent, child)) == descendants(
            plan, child
        )
    for ident in plan.epoch_members:
        union: set[int] = set()
        for child in plan.children.get(ident, ()):
            union |= descendants(plan, child)
        assert set(plan.orphans_of_node(ident)) == union


@settings(max_examples=40, deadline=None)
@given(idents=memberships, caps=cap_pools, system=systems)
def test_backup_candidates_never_cycle(idents, caps, system):
    """No installed candidate is the member itself or inside its own
    orphaned subtree — a graft there would feed the message from a node
    that does not have it.  The primary parent appears exactly once,
    strictly last: admissible only for pure edge failures, where the
    parent survives and still holds the message."""
    descriptor, tree, capacities = build_tree(system, idents, caps)
    plan = build_backup_plan(tree, descriptor)
    for ident, route in plan.routes.items():
        blocked = descendants(plan, ident)
        assert ident in blocked  # own subtree includes the member
        assert not blocked.intersection(route.candidates)
        assert route.candidates[-1] == route.parent
        assert route.parent not in route.candidates[:-1]


@settings(max_examples=30, deadline=None)
@given(
    idents=memberships,
    caps=cap_pools,
    victim_index=st.integers(min_value=0),
    system=systems,
)
def test_failover_partitions_orphans_within_fanout_bounds(
    idents, caps, victim_index, system
):
    descriptor, tree, capacities = build_tree(system, idents, caps)
    plan = build_backup_plan(tree, descriptor)
    non_source = sorted(set(plan.epoch_members) - {plan.source})
    victim = non_source[victim_index % len(non_source)]
    record = orphan_record(tree, descriptor, capacities, plan, victim)
    recovery = apply_failover(record, plan, descriptor, FailoverTiming())

    recovered = {item.ident for item in recovery.recovered}
    assert recovered | set(recovery.uncovered) == record.undelivered
    assert not recovered.intersection(recovery.uncovered)

    primary: dict[int, int] = {}
    for parent, _child in record.actual_edges():
        primary[parent] = primary.get(parent, 0) + 1
    for parent, grafts in recovery.graft_load().items():
        bound = descriptor.live_fanout_bound(record.capacities[parent])
        assert primary.get(parent, 0) + grafts <= bound
        # feeders hold the message: primary delivery, the source, or
        # their own (earlier) backup recovery
        assert (
            parent == record.source
            or parent in record.deliveries
            or parent in recovered
        )

    gaps = delivery_gaps(record, recovery)
    for member in recovered:
        assert gaps[member] > 0.0
    assert gap_values(sorted_gap_items(gaps)) == [
        gap for _ident, gap in sorted(gaps.items())
    ]


@settings(max_examples=25, deadline=None)
@given(idents=memberships, caps=cap_pools, system=systems)
def test_backup_plan_deterministic_across_two_builds(idents, caps, system):
    """Two fully independent builds — snapshot up — are value-equal."""
    descriptor_a, tree_a, _ = build_tree(system, idents, caps)
    descriptor_b, tree_b, _ = build_tree(system, idents, caps)
    plan_a = build_backup_plan(tree_a, descriptor_a)
    plan_b = build_backup_plan(tree_b, descriptor_b)
    assert plan_a == plan_b


def test_plan_for_record_and_error_paths():
    descriptor, tree, capacities = build_tree("cam-chord", {1, 64, 200, 512, 900}, [3])
    record = record_from_tree(tree, descriptor, capacities)

    plan = backup_plan_for_record(record, descriptor, uniform_fanout=3)
    assert plan is not None
    assert set(plan.epoch_members) == set(record.members)
    assert plan.source == record.source

    # a stale epoch that does not know the source roots nothing
    stale = [(ident, cap) for ident, cap in capacities.items() if ident != record.source]
    assert backup_plan_for_record(record, descriptor, 3, membership=stale) is None

    with pytest.raises(KeyError):
        plan.subtree(7777)  # not an epoch member
    with pytest.raises(KeyError):
        plan.orphans_of_edge(1, 1)  # not a primary edge

    # nothing undelivered -> nothing to recover
    recovery = apply_failover(record, plan, descriptor, FailoverTiming())
    assert not recovery.recovered and not recovery.uncovered

    # no plan at all -> everything stays uncovered
    victim = next(iter(set(plan.epoch_members) - {plan.source}))
    broken = orphan_record(tree, descriptor, capacities, plan, victim)
    bare = apply_failover(broken, None, descriptor, FailoverTiming())
    assert set(bare.uncovered) == broken.undelivered
