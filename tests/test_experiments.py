"""Tests for the experiment harness (tiny scales: wiring, not science)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig06_throughput,
    fig07_ratio,
    fig08_tradeoff,
    fig09_pathdist_cam_chord,
    fig11_avg_path_length,
    ext_balance,
    ext_load,
)
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    resolve_scale,
)
from repro.experiments.runner import EXPERIMENTS, main

TINY = ExperimentScale("tiny", 400, 2, 20, space_bits=12)


class TestCommon:
    def test_resolve_scale_by_name(self):
        assert resolve_scale("quick").name == "quick"
        assert resolve_scale("paper").group_size == 100_000

    def test_resolve_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert resolve_scale().name == "quick"

    def test_resolve_scale_unknown(self):
        with pytest.raises(ValueError, match="unknown scale"):
            resolve_scale("huge")

    def test_series_and_figure_result(self):
        series = Series(label="s")
        series.add(1, 2)
        series.add(3, 4)
        assert series.xs() == [1, 3]
        assert series.ys() == [2, 4]
        figure = FigureResult(figure="f", title="t", series=[series])
        assert figure.get_series("s") is series
        with pytest.raises(KeyError):
            figure.get_series("missing")
        rendered = figure.render()
        assert "f: t" in rendered and "-- s" in rendered


class TestFigureShapes:
    """Each figure runs at tiny scale and its headline shape holds."""

    def test_fig6_cam_dominates_baseline(self):
        result = fig06_throughput.run(TINY)
        cam = dict(result.get_series("cam-chord").points)
        chord = dict(result.get_series("chord").points)
        # compare at the shared fanout point (both sweeps include ~7)
        cam_at_7 = min(cam.items(), key=lambda kv: abs(kv[0] - 7))[1]
        chord_at_8 = chord[8.0]
        assert cam_at_7 > chord_at_8

    def test_fig7_ratio_tracks_heterogeneity(self):
        result = fig07_ratio.run(TINY)
        ratios = result.get_series("cam-chord over chord").ys()
        reference = result.get_series("(a+b)/2a reference").ys()
        # at tiny scale noise blurs exact monotonicity, but the widest
        # range must beat the narrowest and every ratio must show a win
        assert ratios[-1] > ratios[0]
        for ratio, ref in zip(ratios, reference):
            assert 1.0 < ratio < ref * 1.6

    def test_fig8_curves_rise(self):
        result = fig08_tradeoff.run(TINY)
        for label in ("cam-chord", "cam-koorde"):
            ys = result.get_series(label).ys()
            # path length grows with throughput (allow minor wobble)
            assert ys[-1] > ys[0]

    def test_fig9_distributions_shift_left(self):
        result = fig09_pathdist_cam_chord.run(TINY)
        def mean_hops(label):
            series = result.get_series(label)
            total = sum(x * y for x, y in series.points)
            count = sum(y for _, y in series.points)
            return total / count
        assert mean_hops("4") > mean_hops("[4..20]") > mean_hops("[4..200]")

    def test_fig11_bound_and_crossover_tendency(self):
        result = fig11_avg_path_length.run(TINY)
        chord = dict(result.get_series("cam-chord").points)
        koorde = dict(result.get_series("cam-koorde").points)
        # small capacities: CAM-Chord shorter (paper Figure 11)
        assert chord[4.0] < koorde[4.0]
        # both fall as capacity grows
        assert chord[102.0] < chord[4.0]
        assert koorde[102.0] < koorde[4.0]

    def test_ext_load_flooding_spreads(self):
        result = ext_load.run(TINY)
        flood = dict(result.get_series("flooding").points)
        tree = dict(result.get_series("single-tree").points)
        assert flood[3] < tree[3]  # idle fraction
        assert flood[1] < tree[1]  # max/mean

    def test_ext_balance_degree_capped(self):
        result = ext_balance.run(TINY)
        balanced = result.get_series("balanced (ours)")
        el_ansary = result.get_series("el-ansary")
        balanced_root = balanced.points[0][1]
        el_root = el_ansary.points[0][1]
        assert balanced_root <= 4
        assert el_root > 4


class TestRunnerCli:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "extA", "extB", "extC", "extD", "extE", "extF", "extG", "extH",
            "extI", "extJ", "extK", "extL", "extM", "extN", "extO",
        }

    def test_single_run_prints_and_writes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        # run the cheapest experiment at quick scale via the CLI
        code = main(["extB", "--scale", "quick", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "extB" in out
        assert (tmp_path / "extB.txt").exists()
