"""Property-based tests for the fault-injection campaign subsystem.

Random :class:`~repro.faults.FaultPlan` schedules on clusters of up to
64 members must satisfy every oracle after quiesce-and-repair; any
failure hypothesis finds is shrunk (by our own shrinker, not just
hypothesis's) to a replayable minimal scenario whose JSON round-trips.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.churn.resilience import ResilienceReport
from repro.faults import (
    FaultEvent,
    FaultPlan,
    PlanOutcome,
    crash_at,
    generate_plan,
    loss_burst,
    run_campaign,
    run_plan,
    save_plan,
    shrink_plan,
    timeout_storm,
)
from repro.faults.campaign import CampaignResult
from repro.faults.plan import ACTIONS, load_plan
from repro.systems import get_system, system_names
from tests.conftest import assert_plan_deterministic

WINDOW = 20.0


# -- strategies ---------------------------------------------------------------

fault_events = st.builds(
    FaultEvent,
    time=st.floats(min_value=0.0, max_value=WINDOW, allow_nan=False),
    action=st.sampled_from(ACTIONS),
    a=st.integers(min_value=0, max_value=63),
    b=st.integers(min_value=0, max_value=63),
    rate=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    kind=st.sampled_from(["", "get_info", "next_hop", "mc_region", "mc_flood"]),
    capacity=st.integers(min_value=4, max_value=8),
)

fault_plans = st.builds(
    FaultPlan,
    system=st.sampled_from(sorted(system_names())),
    size=st.integers(min_value=6, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    events=st.lists(fault_events, max_size=5).map(
        lambda events: tuple(sorted(events, key=lambda e: (e.time, e.action)))
    ),
    fault_window=st.just(WINDOW),
    multicasts=st.integers(min_value=1, max_value=2),
    propagation_window=st.just(10.0),
)


# -- properties ---------------------------------------------------------------


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(plan=fault_plans)
def test_random_plans_satisfy_all_oracles(plan: FaultPlan, tmp_path_factory):
    """Any random schedule either passes every oracle or shrinks to a
    replayable minimal repro (which we save before failing loudly)."""
    outcome = run_plan(plan)
    if outcome.passed:
        assert outcome.measured, "a passing run must have measured multicasts"
        assert all(ratio == 1.0 for ratio in outcome.delivery_ratios)
        return
    minimized, final = shrink_plan(plan)
    path = tmp_path_factory.mktemp("faults") / "minimal-repro.json"
    save_plan(
        minimized, str(path), extra={"violations": [str(v) for v in final.violations]}
    )
    replayed = run_plan(load_plan(str(path)))
    pytest.fail(
        f"oracle violation (minimized repro at {path}, replays "
        f"{len(replayed.violations)} violations): "
        + "; ".join(str(v) for v in final.violations)
    )


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    system=st.sampled_from(["koorde", "cam-koorde"]),
    index=st.integers(min_value=0, max_value=30),
)
def test_flood_duplicates_match_network_accounting(system: str, index: int):
    """Flood systems: recorded duplicate counts must balance against the
    network's per-kind delivered-datagram counters — the flood-accounting
    oracle holds on every generated plan, not just the passing ones."""
    plan = generate_plan(system, index, campaign_seed=7)
    outcome = run_plan(plan)
    assert not [
        v for v in outcome.violations if v.oracle == "flood-accounting"
    ], "flood accounting imbalance on an unmutated peer"
    if outcome.measured:
        descriptor = get_system(system)
        assert not descriptor.builds_single_tree
        # floods legitimately duplicate; the monitor must have seen them
        assert all(count >= 0 for count in outcome.duplicates_per_message)


def test_same_plan_twice_is_identical():
    """Two runs of one plan in one process (shared message-id counter,
    shared tracer) produce identical violation sets and measurements."""
    plan = generate_plan("cam-chord", 2, campaign_seed=3)
    outcome = assert_plan_deterministic(plan)
    assert outcome.passed


def test_generated_plans_are_reproducible():
    """generate_plan is a pure function of (system, index, seed)."""
    for system in system_names():
        assert generate_plan(system, 5, 11) == generate_plan(system, 5, 11)
    assert generate_plan("chord", 0, 0) != generate_plan("chord", 1, 0)


@given(plan=fault_plans)
@settings(max_examples=25, deadline=None)
def test_plan_json_round_trip(plan: FaultPlan, tmp_path_factory):
    """save_plan/load_plan is the identity on every expressible plan."""
    path = tmp_path_factory.mktemp("plans") / "plan.json"
    save_plan(plan, str(path))
    assert load_plan(str(path)) == plan
    # and the file is actual JSON, not a pickle in disguise
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["system"] == plan.system


def test_campaign_serial_matches_parallel():
    """--jobs N aggregates byte-identically to serial execution."""
    plans = [generate_plan("cam-chord", i, 1) for i in range(3)]
    serial = run_campaign(plans, jobs=1)
    parallel = run_campaign(plans, jobs=2)
    assert [o.violations for o in serial.outcomes] == [
        o.violations for o in parallel.outcomes
    ]
    assert [o.delivery_ratios for o in serial.outcomes] == [
        o.delivery_ratios for o in parallel.outcomes
    ]
    assert serial.summary() == parallel.summary()


# -- empty-run aggregation guards (NaN regression) ----------------------------


def test_empty_report_is_nan_but_flagged():
    """An unmeasured ResilienceReport reports NaN ratios and says so."""
    report = ResilienceReport(system="cam-chord", churn_rate=0.0)
    assert not report.has_measurements
    assert math.isnan(report.mean_delivery_ratio)
    assert math.isnan(report.min_delivery_ratio)


def test_campaign_aggregation_skips_unmeasured_runs():
    """A convergence-failed outcome (no multicast phase) must not poison
    the campaign's mean delivery with NaN."""
    plan = generate_plan("cam-chord", 0, 0)
    measured = PlanOutcome(plan=plan, delivery_ratios=(1.0, 0.5))
    unmeasured = PlanOutcome(plan=plan)  # bootstrap/convergence failure
    result = CampaignResult(outcomes=[measured, unmeasured])
    mean = result.mean_delivery()
    assert mean is not None and not math.isnan(mean)
    assert mean == pytest.approx(0.75)
    assert "n/a" not in result.summary()


def test_campaign_aggregation_with_no_measured_runs():
    plan = generate_plan("cam-chord", 0, 0)
    result = CampaignResult(outcomes=[PlanOutcome(plan=plan)])
    assert result.mean_delivery() is None
    assert "n/a" in result.summary()


# -- plan validation ----------------------------------------------------------


def test_plan_rejects_events_outside_window():
    with pytest.raises(ValueError, match="outside fault window"):
        FaultPlan(
            system="cam-chord",
            size=8,
            seed=0,
            events=tuple(crash_at(99.0, 0)),
            fault_window=30.0,
        )


def test_event_rejects_unknown_action():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultEvent(1.0, "meteor")


def test_primitives_respect_the_window_limit():
    events = loss_burst(28.0, 10.0, 0.2, limit=30.0)
    assert all(event.time <= 30.0 for event in events)
    events = timeout_storm(29.0, 5.0, 0.5, limit=30.0)
    assert all(event.time <= 30.0 for event in events)


def test_shrinker_refuses_passing_plans():
    plan = FaultPlan(system="cam-chord", size=8, seed=4, events=())
    with pytest.raises(ValueError, match="does not fail"):
        shrink_plan(plan)


# -- schedule summarization ---------------------------------------------------


class TestDescribeCompositePrimitives:
    """describe() names the composite shapes, not their raw expansion."""

    def test_partition_window_coalesced(self):
        from repro.faults import partition_window

        plan = FaultPlan(
            system="cam-chord",
            size=8,
            seed=0,
            events=tuple(partition_window(2.0, 5.0, 1, 4, limit=30.0)),
        )
        assert "partition_window" in plan.describe()
        assert "heal" not in plan.describe()

    def test_timeout_storm_coalesced(self):
        plan = FaultPlan(
            system="cam-chord",
            size=8,
            seed=0,
            events=tuple(timeout_storm(3.0, 6.0, 0.4, limit=30.0)),
        )
        assert plan.describe().count("timeout_storm") == 1
        assert "kind_loss" not in plan.describe()

    def test_flash_churn_counted(self):
        from repro.faults import flash_churn

        plan = FaultPlan(
            system="cam-chord",
            size=8,
            seed=0,
            events=tuple(flash_churn(1.0, 5, 0.5, 6, limit=30.0)),
        )
        assert "flash_churn[5]" in plan.describe()

    def test_loss_burst_and_kind_loss_named(self):
        from repro.faults import message_loss_burst, summarize_events

        names = summarize_events(loss_burst(2.0, 4.0, 0.2, limit=30.0))
        assert names == ["loss_burst"]
        names = summarize_events(
            message_loss_burst(2.0, 4.0, "mc_region", 0.2, limit=30.0)
        )
        assert names == ["kind_loss(mc_region)"]

    def test_dangling_halves_stay_raw(self):
        from repro.faults import summarize_events

        # a shrunk plan may keep a partition without its heal
        names = summarize_events([FaultEvent(2.0, "partition", a=1, b=4)])
        assert names == ["partition"]
        names = summarize_events([FaultEvent(2.0, "loss", rate=0.2)])
        assert names == ["loss"]
