"""Unit and property tests for the identifier-ring arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idspace.ring import (
    IdentifierSpace,
    ring_distance,
    segment_contains,
    segment_size,
)

SPACE = IdentifierSpace(8)  # N = 256: small enough for brute force


class TestSegmentSize:
    def test_empty_segment(self):
        assert segment_size(5, 5, 256) == 0

    def test_simple(self):
        assert segment_size(3, 10, 256) == 7

    def test_wraparound(self):
        assert segment_size(250, 4, 256) == 10

    def test_full_ring_minus_one(self):
        assert segment_size(5, 4, 256) == 255

    def test_space_method_matches(self):
        assert SPACE.segment_size(250, 4) == 10


class TestSegmentContains:
    def test_basic_membership(self):
        assert segment_contains(5, 3, 10, 256)
        assert segment_contains(10, 3, 10, 256)  # right end inclusive
        assert not segment_contains(3, 3, 10, 256)  # left end exclusive
        assert not segment_contains(11, 3, 10, 256)

    def test_wraparound_membership(self):
        assert segment_contains(255, 250, 4, 256)
        assert segment_contains(0, 250, 4, 256)
        assert segment_contains(4, 250, 4, 256)
        assert not segment_contains(250, 250, 4, 256)
        assert not segment_contains(5, 250, 4, 256)

    def test_empty_segment_contains_nothing(self):
        for z in range(256):
            assert not segment_contains(z, 7, 7, 256)


class TestRingDistance:
    def test_symmetric(self):
        assert ring_distance(3, 10, 256) == ring_distance(10, 3, 256) == 7

    def test_takes_shorter_way(self):
        assert ring_distance(1, 255, 256) == 2

    def test_antipodal(self):
        assert ring_distance(0, 128, 256) == 128

    def test_zero(self):
        assert ring_distance(42, 42, 256) == 0


class TestIdentifierSpace:
    def test_size(self):
        assert IdentifierSpace(19).size == 2**19

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            IdentifierSpace(0)

    def test_add_sub_wrap(self):
        assert SPACE.add(250, 10) == 4
        assert SPACE.sub(4, 10) == 250

    def test_contains(self):
        assert SPACE.contains(0)
        assert SPACE.contains(255)
        assert not SPACE.contains(256)
        assert not SPACE.contains(-1)

    def test_normalize(self):
        assert SPACE.normalize(256) == 0
        assert SPACE.normalize(-1) == 255

    def test_top_low_bits(self):
        x = 0b10110100
        assert SPACE.top_bits(x, 3) == 0b101
        assert SPACE.low_bits(x, 3) == 0b100
        assert SPACE.top_bits(x, 0) == 0
        assert SPACE.low_bits(x, 0) == 0
        assert SPACE.top_bits(x, 8) == x
        assert SPACE.low_bits(x, 8) == x

    def test_top_bits_rejects_out_of_range_count(self):
        with pytest.raises(ValueError):
            SPACE.top_bits(1, 9)
        with pytest.raises(ValueError):
            SPACE.low_bits(1, -1)

    def test_shift_left_in(self):
        # 10110100 shifted left by 2 with digit 0b11 pushed in.
        assert SPACE.shift_left_in(0b10110100, 0b11, 2) == 0b11010011

    def test_shift_left_in_rejects_oversized_digit(self):
        with pytest.raises(ValueError):
            SPACE.shift_left_in(0, 4, 2)

    def test_shift_right(self):
        assert SPACE.shift_right(0b10110100, 3) == 0b10110
        with pytest.raises(ValueError):
            SPACE.shift_right(1, -1)

    def test_format_id(self):
        space = IdentifierSpace(6)
        assert space.format_id(36) == "100100"


class TestPsCommonBits:
    """Definition 1 of the paper (prefix-of-x matches suffix-of-k)."""

    def test_identical(self):
        assert SPACE.ps_common_bits(0b10110100, 0b10110100) == 8

    def test_no_common(self):
        # Every prefix of x starts with 0; every suffix of k is all 1s.
        assert SPACE.ps_common_bits(0b01000000, 0b11111111) == 0

    def test_partial(self):
        # prefix 101 of x == suffix 101 of k; longer overlaps fail.
        x = 0b10100000
        k = 0b11111101
        assert SPACE.ps_common_bits(x, k) == 3

    def test_asymmetric(self):
        x = 0b10100000
        k = 0b11111101
        assert SPACE.ps_common_bits(k, x) != SPACE.ps_common_bits(x, k)


# -- property tests -----------------------------------------------------

ids = st.integers(min_value=0, max_value=255)


@given(ids, ids, ids)
def test_segment_partition_property(x, y, z):
    """Every z != x is in exactly one of (x, y] and (y, x] when x != y."""
    if x == y:
        return
    in_first = segment_contains(z, x, y, 256)
    in_second = segment_contains(z, y, x, 256)
    if z == x:
        assert not in_first
        assert in_second  # x is the inclusive right end of (y, x]
    else:
        assert in_first != in_second


@given(ids, ids)
def test_segment_sizes_complementary(x, y):
    if x == y:
        assert segment_size(x, y, 256) == 0
    else:
        assert segment_size(x, y, 256) + segment_size(y, x, 256) == 256


@given(ids, ids)
def test_distance_bounds(x, y):
    d = ring_distance(x, y, 256)
    assert 0 <= d <= 128
    assert d == ring_distance(y, x, 256)


@given(ids, ids, ids)
def test_distance_triangle_inequality(x, y, z):
    assert ring_distance(x, z, 256) <= ring_distance(x, y, 256) + ring_distance(
        y, z, 256
    )


@given(ids, ids)
def test_segment_size_matches_enumeration(x, y):
    members = [z for z in range(256) if segment_contains(z, x, y, 256)]
    assert len(members) == segment_size(x, y, 256)


@given(ids, ids)
def test_ps_common_bits_is_valid_overlap(x, k):
    l = SPACE.ps_common_bits(x, k)
    if l > 0:
        assert SPACE.top_bits(x, l) == SPACE.low_bits(k, l)
    # maximality: no longer overlap exists
    for longer in range(l + 1, 9):
        assert SPACE.top_bits(x, longer) != SPACE.low_bits(k, longer)
