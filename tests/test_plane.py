"""Tests for the event-driven multi-group service plane."""

from __future__ import annotations

import pytest

from repro.multicast.plane import SequenceLedger, ServicePlane


def make_plane(
    hosts: int = 20, kbps: float = 400.0, space_bits: int = 14
) -> ServicePlane:
    plane = ServicePlane(space_bits=space_bits)
    for index in range(hosts):
        plane.register_host(f"h{index}", kbps)
    return plane


class TestSequenceLedger:
    def test_contiguous_delivery_is_clean(self):
        ledger = SequenceLedger()
        ledger.admit("a")
        for _ in range(3):
            seq = ledger.issue()
            assert ledger.record("a", seq) == "ok"
        audit = ledger.audit()
        assert audit.clean
        assert ledger.issued == 3

    def test_gap_is_named_exactly(self):
        ledger = SequenceLedger()
        ledger.admit("a")
        ledger.issue(); ledger.issue(); ledger.issue()
        ledger.record("a", 1)
        ledger.record("a", 3)
        audit = ledger.audit()
        assert audit.gaps == {"a": (2,)}
        ledger.record("a", 2)
        assert ledger.audit().clean

    def test_out_of_order_is_not_a_gap(self):
        # overlapping sends complete out of order; the cursor's ahead
        # set absorbs them without false gaps
        ledger = SequenceLedger()
        ledger.admit("a")
        for _ in range(4):
            ledger.issue()
        for seq in (3, 1, 4, 2):
            assert ledger.record("a", seq) == "ok"
        assert ledger.audit().clean

    def test_duplicate_detected_across_overlap(self):
        ledger = SequenceLedger()
        ledger.admit("a")
        ledger.issue(); ledger.issue()
        assert ledger.record("a", 2) == "ok"
        assert ledger.record("a", 2) == "dup"  # still in the ahead set
        assert ledger.record("a", 1) == "ok"
        assert ledger.record("a", 1) == "dup"  # behind the cursor now
        assert ledger.audit().dups == 2

    def test_joiner_obligated_from_next_seq(self):
        ledger = SequenceLedger()
        ledger.admit("old")
        ledger.issue()  # seq 1: only old is obligated
        ledger.admit("young")  # obligated from 2 on
        ledger.issue()
        ledger.record("old", 1); ledger.record("old", 2)
        ledger.record("young", 2)
        assert ledger.audit().clean
        # a stray delivery of seq 1 to the joiner is out of obligation
        assert ledger.record("young", 1) == "unexpected"
        assert ledger.audit().unexpected == 1

    def test_leaver_stays_accountable(self):
        ledger = SequenceLedger()
        ledger.admit("a"); ledger.admit("b")
        ledger.issue()
        ledger.retire("b")  # leaves after seq 1 was issued
        ledger.issue()  # b is NOT obligated for seq 2
        ledger.record("a", 1); ledger.record("a", 2)
        audit = ledger.audit()
        assert audit.gaps == {"b": (1,)}  # the in-flight send still owed
        ledger.record("b", 1)
        assert ledger.audit().clean
        assert ledger.record("b", 2) == "unexpected"

    def test_rejoin_gets_a_fresh_stint(self):
        ledger = SequenceLedger()
        ledger.admit("a")
        ledger.issue()
        ledger.record("a", 1)
        ledger.retire("a")
        ledger.issue()  # seq 2 while away: not owed
        ledger.admit("a")  # rejoin: obligated from 3
        ledger.issue()
        ledger.record("a", 3)
        assert ledger.audit().clean
        assert ledger.record("a", 2) == "unexpected"
        with pytest.raises(ValueError, match="already tracked"):
            ledger.admit("a")

    def test_double_retire_rejected(self):
        ledger = SequenceLedger()
        ledger.admit("a")
        ledger.retire("a")
        with pytest.raises(ValueError, match="not actively tracked"):
            ledger.retire("a")


class TestPlaneSends:
    def test_single_send_completes_everyone(self):
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(10)])
        receipt = plane.send("g", "h0", message_kbits=16.0)
        assert not receipt.complete  # nothing ran yet
        plane.drain()
        assert receipt.complete
        receipt.verify_complete()
        assert set(receipt.delivered) == set(receipt.members)
        plane.verify_quiesced()

    def test_interleaved_groups_share_one_clock(self):
        plane = make_plane()
        plane.create_group("a", [f"h{i}" for i in range(8)])
        plane.create_group("b", [f"h{i}" for i in range(4, 12)])
        r1 = plane.send("a", "h0", 32.0)
        r2 = plane.send("b", "h4", 32.0)
        plane.drain()
        plane.verify_quiesced()
        # shared hosts h4..h7 serialized both groups on one uplink:
        # the budget must show deferred slots
        assert plane.budget.deferrals() > 0
        report = plane.report()
        assert report.total_deliveries == (len(r1.members) - 1) + (
            len(r2.members) - 1
        )

    def test_sequence_numbers_are_per_group(self):
        plane = make_plane()
        plane.create_group("a", ["h0", "h1", "h2"])
        plane.create_group("b", ["h3", "h4", "h5"])
        assert plane.send("a", "h0").seq == 1
        assert plane.send("b", "h3").seq == 1
        assert plane.send("a", "h1").seq == 2
        plane.drain()
        plane.verify_quiesced()

    def test_send_to_unknown_group_rejected(self):
        plane = make_plane()
        with pytest.raises(KeyError, match="no group named"):
            plane.send("ghost", "h0")

    def test_send_after_drop_rejected(self):
        plane = make_plane()
        plane.create_group("g", ["h0", "h1"])
        plane.drop_group("g")
        with pytest.raises(KeyError):
            plane.send("g", "h0")

    def test_charges_the_service_ledger(self):
        # the plane's timed sends charge the same per-host ledger the
        # synchronous service does
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(10)])
        plane.send("g", "h0", message_kbits=4.0)
        plane.drain()
        load = plane.service.host_load_kbits()
        assert sum(load.values()) == pytest.approx(9 * 4.0)


class TestMidStreamMembership:
    def test_join_mid_stream_is_not_owed_inflight_sends(self):
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(8)])
        inflight = plane.send("g", "h0", 64.0)
        plane.join("g", "h15")  # joins while the send is in flight
        plane.drain()
        plane.verify_quiesced()  # joiner owes nothing for seq 1
        assert "h15" not in inflight.members
        assert "h15" not in inflight.delivered

    def test_joiner_receives_subsequent_sends(self):
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(8)])
        plane.send("g", "h0", 16.0)
        plane.join("g", "h15")
        later = plane.send("g", "h1", 16.0)
        assert "h15" in later.members
        plane.drain()
        plane.verify_quiesced()
        assert "h15" in later.delivered

    def test_leaver_still_receives_inflight_sends(self):
        # frozen send-time membership: the in-flight send finishes
        # against its origin member set even though h3 left mid-stream
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(8)])
        inflight = plane.send("g", "h0", 64.0)
        plane.leave("g", "h3")
        assert "h3" in inflight.members
        later = plane.send("g", "h0", 16.0)
        assert "h3" not in later.members
        plane.drain()
        plane.verify_quiesced()
        assert "h3" in inflight.delivered
        assert "h3" not in later.delivered

    def test_send_later_freezes_at_fire_time(self):
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(6)])
        placed = plane.send_later(1.0, "g", "h0", 8.0)
        plane.join("g", "h10")  # before the send fires
        plane.drain()
        plane.verify_quiesced()
        assert "h10" in placed.value.members

    def test_drop_mid_stream_finishes_inflight(self):
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(8)])
        inflight = plane.send("g", "h0", 64.0)
        plane.drop_group("g")
        plane.drain()
        plane.verify_quiesced()
        assert inflight.complete
        inflight.verify_complete()

    def test_rebuild_preserves_identifiers(self):
        plane = make_plane()
        plane.create_group("g", [f"h{i}" for i in range(8)])
        before = {
            name: plane.service.member_ident("g", name)
            for name in plane.service.members_of("g")
        }
        plane.join("g", "h15")
        plane.leave("g", "h2")
        for name in plane.service.members_of("g"):
            if name in before:
                assert plane.service.member_ident("g", name) == before[name]


class TestBackpressure:
    def test_saturated_host_defers_forwarding_slots(self):
        # one slow host is the source of two groups' sends: the second
        # group's forwarding must queue behind the first on its uplink
        plane = ServicePlane(space_bits=14)
        plane.register_host("slow", 50.0)
        for index in range(10):
            plane.register_host(f"h{index}", 800.0)
        plane.create_group("a", ["slow"] + [f"h{i}" for i in range(5)])
        plane.create_group("b", ["slow"] + [f"h{i}" for i in range(5, 10)])
        plane.send("a", "slow", 100.0)
        plane.send("b", "slow", 100.0)
        plane.drain()
        plane.verify_quiesced()
        assert plane.budget.deferrals("slow") > 0
        report = plane.report()
        deferrals = {row["group"]: row["deferrals"] for row in report.rows}
        # group b queued behind a's serialization on the shared uplink
        assert deferrals["b"] > 0

    def test_unshared_groups_do_not_defer(self):
        plane = make_plane(hosts=16, kbps=1000.0)
        plane.create_group("a", [f"h{i}" for i in range(8)])
        plane.create_group("b", [f"h{i}" for i in range(8, 16)])
        plane.send("a", "h0", 8.0)
        plane.send("b", "h8", 8.0)
        plane.drain()
        plane.verify_quiesced()
        # disjoint hosts, one message each: every uplink starts free...
        report = plane.report()
        for row in report.rows:
            # ...so any deferral comes only from a node's own fanout
            # (several children share its one uplink), never from the
            # other group
            assert row["deferrals"] == plane.budget.deferrals() - sum(
                other["deferrals"]
                for other in report.rows
                if other["group"] != row["group"]
            )

    def test_goodput_reported_per_group(self):
        plane = make_plane()
        plane.create_group("a", [f"h{i}" for i in range(6)])
        plane.create_group("b", [f"h{i}" for i in range(6, 12)])
        plane.send("a", "h0", 40.0)
        plane.send("b", "h6", 10.0)
        plane.drain()
        report = plane.report()
        rows = {row["group"]: row for row in report.rows}
        assert rows["a"]["deliveries"] == 5
        assert rows["b"]["deliveries"] == 5
        assert rows["a"]["goodput_kbps"] > 0
        assert report.render()  # the table renders

    def test_queue_depth_tracks_outstanding_hops(self):
        plane = make_plane(hosts=10, kbps=100.0)
        plane.create_group("g", [f"h{i}" for i in range(10)])
        plane.send("g", "h0", 50.0)
        plane.drain()
        report = plane.report()
        (row,) = report.rows
        assert row["max_queue_depth"] >= 1


class TestManyGroupsUnderChurn:
    def test_200_groups_with_mid_stream_churn(self):
        # the acceptance bar: 200 concurrent groups, poisson join/leave
        # firing mid-dissemination, every oracle green after quiesce
        from repro.workloads import (
            ServiceWorkloadSpec,
            generate_service_workload,
        )

        spec = ServiceWorkloadSpec(
            groups=200,
            hosts=500,
            group_size=6,
            horizon_s=30.0,
            send_interval_s=6.0,
            churn_rate=0.05,
            mean_hold_s=None,  # all 200 stay concurrent
            message_kbits=8.0,
        )
        workload = generate_service_workload(spec, seed=7)
        counts = workload.counts()
        assert counts["create"] == 200
        assert counts.get("join", 0) + counts.get("leave", 0) > 0
        plane = ServicePlane(space_bits=15)
        for name, kbps in workload.hosts:
            plane.register_host(name, kbps)
        plane.replay(workload.events)
        plane.drain()
        plane.verify_quiesced()
        report = plane.report()
        assert len(report.rows) == 200
        assert report.total_deliveries > 0
        audit = plane.audit()
        assert audit.clean

    def test_replay_is_deterministic(self):
        from repro.workloads import (
            ServiceWorkloadSpec,
            generate_service_workload,
        )

        spec = ServiceWorkloadSpec(
            groups=12, hosts=60, group_size=5, horizon_s=20.0,
            send_interval_s=3.0, churn_rate=0.1, mean_hold_s=15.0,
        )
        workload = generate_service_workload(spec, seed=3)

        def run() -> tuple:
            plane = ServicePlane(space_bits=14)
            for name, kbps in workload.hosts:
                plane.register_host(name, kbps)
            plane.replay(workload.events)
            plane.drain()
            plane.verify_quiesced()
            return plane.report()

        assert run() == run()


class TestExtNExperiment:
    def test_bench_scale_runs_and_renders(self):
        from repro.experiments import ext_service
        from repro.experiments.common import SCALES

        result = ext_service.run(SCALES["bench"], seed=0)
        assert result.figure == "extN"
        rendered = result.render()
        assert "deliveries" in rendered.lower() or "extN" in rendered
        # one series per churn rate, one point per group count
        assert len(result.series) == len(ext_service.CHURN_RATES["bench"])
        for series in result.series:
            assert len(series.points) == len(ext_service.GROUP_COUNTS["bench"])
            assert all(y > 0 for _, y in series.points)

    def test_parallel_matches_serial(self):
        from repro.experiments.common import SCALES
        from repro.experiments.parallel import run_experiments

        bench = SCALES["bench"]
        serial = run_experiments(["extN"], bench, seeds=[0], jobs=1)
        fanned = run_experiments(["extN"], bench, seeds=[0], jobs=2)
        assert serial[0].result.render() == fanned[0].result.render()

    def test_every_cell_is_audited(self):
        # run_point itself runs the quiesce oracles; a bench cell with
        # churn must come back with the full metric set
        from repro.experiments import ext_service
        from repro.experiments.common import SCALES

        bench = SCALES["bench"]
        point = ext_service.sweep(bench)[-1]
        metrics = ext_service.run_point(bench, seed=0, point=point)
        for key in (
            "groups", "churn", "deliveries", "deliveries_per_sec",
            "deferrals", "max_queue_depth", "peak_concurrent",
        ):
            assert key in metrics, key
        assert metrics["deliveries"] > 0
        assert metrics["peak_concurrent"] >= 1
