"""Structural equivalences the design relies on.

Two deliberate degeneracies tie the baselines to the CAM systems:

* base-``k`` Chord *is* CAM-Chord with every capacity pinned to ``k``
  (same neighbor identifiers, same lookup routing, same balanced
  multicast trees);
* a live ``CamChordPeer`` fleet with uniform capacities *is* a live
  Chord deployment.

These tests pin the equivalences so refactors cannot silently split
the shared arithmetic.
"""

from __future__ import annotations

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.cam_chord import cam_chord_multicast
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.chord import ChordOverlay
from tests.conftest import make_snapshot


def paired_overlays(idents: list[int], fanout: int):
    snap = make_snapshot(10, idents, capacity=fanout)
    return ChordOverlay(snap, base=fanout), CamChordOverlay(snap), snap


class TestChordIsUniformCamChord:
    def test_same_neighbor_identifiers(self):
        chord, cam, snap = paired_overlays([0, 100, 400, 700, 900], fanout=4)
        for node in snap:
            assert sorted(chord.neighbor_identifiers(node)) == sorted(
                cam.neighbor_identifiers(node)
            )

    def test_same_lookup_answers_and_paths(self):
        rng = Random(1)
        idents = sorted(rng.sample(range(1024), 60))
        chord, cam, snap = paired_overlays(idents, fanout=5)
        for _ in range(100):
            start = snap.random_node(rng)
            key = rng.randrange(1024)
            chord_result = chord.lookup(start, key)
            cam_result = cam.lookup(start, key)
            assert chord_result.responsible.ident == cam_result.responsible.ident
            assert [n.ident for n in chord_result.path] == [
                n.ident for n in cam_result.path
            ]

    def test_same_multicast_trees(self):
        rng = Random(2)
        idents = sorted(rng.sample(range(1024), 80))
        chord, cam, snap = paired_overlays(idents, fanout=6)
        for index in (0, 20, 50):
            source = snap.nodes[index]
            chord_tree = cam_chord_multicast(chord, source)
            cam_tree = cam_chord_multicast(cam, source)
            assert chord_tree.parent == cam_tree.parent
            assert chord_tree.depth == cam_tree.depth


@settings(max_examples=40, deadline=None)
@given(
    idents=st.sets(st.integers(min_value=0, max_value=1023), min_size=2, max_size=50),
    fanout=st.integers(min_value=2, max_value=10),
    key=st.integers(min_value=0, max_value=1023),
)
def test_equivalence_property(idents, fanout, key):
    chord, cam, snap = paired_overlays(sorted(idents), fanout)
    start = snap.nodes[0]
    assert (
        chord.lookup(start, key).responsible.ident
        == cam.lookup(start, key).responsible.ident
    )
    chord_tree = cam_chord_multicast(chord, start)
    cam_tree = cam_chord_multicast(cam, start)
    assert chord_tree.parent == cam_tree.parent
