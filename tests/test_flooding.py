"""Tests for the flooding disseminators (CAM-Koorde and Koorde)."""

from __future__ import annotations

from random import Random

from repro.multicast.cam_koorde import cam_koorde_multicast, flood_multicast
from repro.multicast.koorde_flood import koorde_flood
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.overlay.koorde import KoordeOverlay
from tests.conftest import make_snapshot, random_snapshot


class TestFloodMulticast:
    def test_bfs_depths_are_shortest_paths(self):
        """Flood depth equals the shortest overlay path from the source
        (verified against a reference BFS over the neighbor relation)."""
        snap = random_snapshot(10, 80, seed=1)
        overlay = CamKoordeOverlay(snap)
        source = snap.nodes[0]
        tree = cam_koorde_multicast(overlay, source)

        # reference BFS over the (directed) neighbor relation
        from collections import deque

        dist = {source.ident: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in overlay.neighbors(node):
                if neighbor.ident not in dist:
                    dist[neighbor.ident] = dist[node.ident] + 1
                    queue.append(neighbor)
        assert tree.depth == dist

    def test_fanout_limit_caps_children(self):
        snap = random_snapshot(10, 80, seed=2)
        overlay = CamKoordeOverlay(snap)
        tree = flood_multicast(overlay, snap.nodes[0], fanout_limit=lambda n: 2)
        assert max(tree.children_counts().values()) <= 2

    def test_parent_is_a_neighbor(self):
        """Every delivery edge is an actual overlay link."""
        snap = random_snapshot(10, 60, seed=3)
        overlay = CamKoordeOverlay(snap)
        tree = cam_koorde_multicast(overlay, snap.nodes[0])
        for child, parent in tree.parent.items():
            if parent is None:
                continue
            parent_node = snap.node_at(parent)
            neighbor_idents = {n.ident for n in overlay.neighbors(parent_node)}
            assert child in neighbor_idents


class TestKoordeFlood:
    def test_two_node_ring(self):
        snap = make_snapshot(6, [3, 40], capacity=4)
        overlay = KoordeOverlay(snap, degree=2)
        tree = koorde_flood(overlay, snap.node_at(3))
        tree.verify_exactly_once({3, 40})

    def test_effective_fanout_grows_with_degree(self):
        """With consecutive-member pointers the flood fanout tracks the
        configured degree (the capacity-oblivious sweep of Figure 6)."""
        snap = random_snapshot(13, 1500, seed=4)
        averages = {}
        for degree in (2, 8):
            overlay = KoordeOverlay(snap, degree=degree)
            tree = koorde_flood(overlay, snap.nodes[0])
            internal = [c for c in tree.children_counts().values() if c > 0]
            averages[degree] = sum(internal) / len(internal)
        assert averages[8] > averages[2]

    def test_deeper_than_cam_koorde_at_same_capacity(self):
        """Koorde's clustered pointers cover the ring less efficiently
        than CAM-Koorde's spread ones: deeper trees at equal degree."""
        rng = Random(5)
        snap = random_snapshot(14, 3000, seed=5, capacity_range=(8, 8))
        koorde_overlay = KoordeOverlay(snap, degree=6)  # 6 + pred + succ = 8 links
        cam_overlay = CamKoordeOverlay(snap)
        source = snap.random_node(rng)
        koorde_tree = koorde_flood(koorde_overlay, source)
        cam_tree = cam_koorde_multicast(cam_overlay, source)
        assert koorde_tree.average_path_length() > cam_tree.average_path_length()
