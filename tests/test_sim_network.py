"""Tests for the simulated network and latency models."""

from __future__ import annotations

from random import Random

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, GeographicLatency, UniformLatency
from repro.sim.network import Message, Network


class Recorder:
    """Endpoint that logs everything it receives."""

    def __init__(self, network: Network | None = None, address: int | None = None):
        self.messages: list[Message] = []
        self._network = network
        self._address = address

    def handle_message(self, message: Message) -> None:
        self.messages.append(message)
        if self._network is not None and message.request_id is not None:
            self._network.respond(message, {"echo": message.payload})


def make_net(latency=None, loss=0.0, seed=0):
    sim = Simulator()
    return sim, Network(sim, latency=latency, loss_rate=loss, seed=seed)


class TestDatagrams:
    def test_delivery_after_latency(self):
        sim, net = make_net(latency=ConstantLatency(0.5))
        receiver = Recorder()
        net.register(2, receiver)
        net.send(1, 2, "hello", {"x": 1})
        sim.run(until=0.4)
        assert receiver.messages == []
        sim.run(until=0.5)
        assert len(receiver.messages) == 1
        assert receiver.messages[0].payload == {"x": 1}
        assert net.stats.delivered == 1

    def test_send_to_dead_host_dropped(self):
        sim, net = make_net()
        net.send(1, 99, "hello")
        sim.run_until_idle()
        assert net.stats.dropped_dead == 1

    def test_unregister_drops_in_flight(self):
        sim, net = make_net(latency=ConstantLatency(1.0))
        receiver = Recorder()
        net.register(2, receiver)
        net.send(1, 2, "hello")
        net.unregister(2)
        sim.run_until_idle()
        assert receiver.messages == []
        assert net.stats.dropped_dead == 1

    def test_duplicate_registration_rejected(self):
        _, net = make_net()
        net.register(1, Recorder())
        with pytest.raises(ValueError):
            net.register(1, Recorder())

    def test_loss(self):
        sim, net = make_net(loss=0.5, seed=1)
        receiver = Recorder()
        net.register(2, receiver)
        for _ in range(200):
            net.send(1, 2, "m")
        sim.run_until_idle()
        assert 0 < len(receiver.messages) < 200
        assert net.stats.dropped_loss == 200 - len(receiver.messages)

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            make_net(loss=1.0)
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_loss_rate(-0.1)

    def test_partition_and_heal(self):
        sim, net = make_net()
        receiver = Recorder()
        net.register(2, receiver)
        net.partition(1, 2)
        net.send(1, 2, "lost")
        sim.run_until_idle()
        assert receiver.messages == []
        assert net.stats.dropped_partition == 1
        net.heal(1, 2)
        net.send(1, 2, "found")
        sim.run_until_idle()
        assert len(receiver.messages) == 1


class TestPartitionInteractions:
    """Partitions composed with loss, timeouts and per-kind accounting."""

    def test_partition_checked_before_loss(self):
        # On a partitioned link every drop is a partition drop: the loss
        # coin is never tossed, so the loss RNG stream stays untouched.
        sim, net = make_net(loss=0.5, seed=1)
        net.register(2, Recorder())
        net.partition(1, 2)
        for _ in range(50):
            net.send(1, 2, "m")
        sim.run_until_idle()
        assert net.stats.dropped_partition == 50
        assert net.stats.dropped_loss == 0

    def test_heal_restores_lossy_delivery(self):
        # After heal the link behaves like any lossy link again.
        sim, net = make_net(loss=0.5, seed=1)
        receiver = Recorder()
        net.register(2, receiver)
        net.partition(1, 2)
        net.send(1, 2, "m")
        net.heal(1, 2)
        for _ in range(200):
            net.send(1, 2, "m")
        sim.run_until_idle()
        assert net.stats.dropped_partition == 1
        assert 0 < len(receiver.messages) < 200
        assert net.stats.dropped_loss == 200 - len(receiver.messages)

    def test_partition_is_symmetric_and_pairwise(self):
        sim, net = make_net()
        a, b, c = Recorder(), Recorder(), Recorder()
        net.register(1, a)
        net.register(2, b)
        net.register(3, c)
        net.partition(1, 2)
        net.send(2, 1, "reverse")  # partition blocks both directions
        net.send(1, 3, "bypass")  # but only the named pair
        sim.run_until_idle()
        assert a.messages == []
        assert len(c.messages) == 1
        assert net.stats.dropped_partition == 1

    def test_request_into_partition_times_out(self):
        sim, net = make_net()
        server = Recorder(network=net)
        net.register(2, server)
        net.partition(1, 2)
        future = net.request(1, 2, "ask", timeout=2.0)
        sim.run_until_idle()
        assert future.failed
        assert net.stats.timeouts == 1
        assert net.stats.dropped_partition == 1
        assert server.messages == []  # request never arrived

    def test_partition_blocks_reply_path(self):
        # The request lands, then the link partitions before the reply:
        # the reply is dropped by the partition and the waiter times out.
        sim, net = make_net(latency=ConstantLatency(0.5))

        class PartitionThenRespond(Recorder):
            def handle_message(self, message):
                net.partition(1, 2)
                super().handle_message(message)

        server = PartitionThenRespond(network=net)
        net.register(2, server)
        future = net.request(1, 2, "ask", timeout=3.0)
        sim.run_until_idle()
        assert len(server.messages) == 1  # request was delivered
        assert future.failed
        assert net.stats.timeouts == 1
        assert net.stats.dropped_partition == 1

    def test_heal_before_timeout_lets_retry_succeed(self):
        sim, net = make_net(latency=ConstantLatency(0.1))
        server = Recorder(network=net)
        net.register(2, server)
        net.partition(1, 2)
        first = net.request(1, 2, "ask", timeout=1.0)
        sim.run_until_idle()
        assert first.failed
        net.heal(1, 2)
        second = net.request(1, 2, "ask", {"q": 1}, timeout=1.0)
        sim.run_until_idle()
        assert second.value == {"echo": {"q": 1}}

    def test_per_kind_accounting(self):
        sim, net = make_net()
        net.register(2, Recorder())
        net.partition(1, 2)
        net.send(1, 2, "mc_region", {"mid": 7})
        net.send(1, 2, "mc_region", {"mid": 8})
        future = net.request(1, 2, "ping", timeout=1.0)
        sim.run_until_idle()
        assert future.failed
        assert net.stats.drops_by_kind["mc_region"]["partition"] == 2
        assert net.stats.drops_by_kind["ping"]["partition"] == 1
        assert net.stats.timeouts_by_kind["ping"] == 1
        summary = net.stats.by_kind_summary()
        assert "mc_region[partition=2]" in summary
        assert "ping=1" in summary


class TestRequestResponse:
    def test_round_trip(self):
        sim, net = make_net(latency=ConstantLatency(0.1))
        server = Recorder(network=net)
        net.register(2, server)
        future = net.request(1, 2, "ask", {"q": 7}, timeout=5.0)
        sim.run_until_idle()
        assert future.value == {"echo": {"q": 7}}

    def test_timeout(self):
        sim, net = make_net()
        future = net.request(1, 99, "ask", timeout=2.0)
        sim.run_until_idle()
        assert future.failed
        assert net.stats.timeouts == 1

    def test_respond_requires_request(self):
        _, net = make_net()
        message = Message(1, 2, "x", None, request_id=None)
        with pytest.raises(ValueError):
            net.respond(message)

    def test_late_reply_after_timeout_ignored(self):
        sim, net = make_net(latency=ConstantLatency(3.0))
        server = Recorder(network=net)
        net.register(2, server)
        future = net.request(1, 2, "slow", timeout=1.0)
        sim.run_until_idle()
        assert future.failed  # reply arrived at t=6 > timeout
        assert net.stats.timeouts == 1


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.2)
        assert model.delay(1, 2, Random(0)) == 0.2
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_range(self):
        model = UniformLatency(0.1, 0.3)
        rng = Random(0)
        draws = [model.delay(1, 2, rng) for _ in range(100)]
        assert all(0.1 <= d <= 0.3 for d in draws)
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.1)

    def test_geographic_stable_coordinates(self):
        model = GeographicLatency(jitter=0.0)
        assert model.coordinates(7) == model.coordinates(7)
        assert model.delay(1, 2, Random(0)) == model.delay(1, 2, Random(99))

    def test_geographic_triangleish(self):
        model = GeographicLatency(jitter=0.0, base=0.0)
        # delay is symmetric and zero to itself
        assert model.delay(3, 3, Random(0)) == 0.0
        assert model.delay(1, 2, Random(0)) == model.delay(2, 1, Random(0))

    def test_geographic_torus_distance_bounds(self):
        model = GeographicLatency()
        for a, b in [(1, 2), (3, 4), (100, 200)]:
            assert 0 <= model.distance(a, b) <= (0.5**2 + 0.5**2) ** 0.5
