"""Tests for the simulated network and latency models."""

from __future__ import annotations

from random import Random

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, GeographicLatency, UniformLatency
from repro.sim.network import Message, Network


class Recorder:
    """Endpoint that logs everything it receives."""

    def __init__(self, network: Network | None = None, address: int | None = None):
        self.messages: list[Message] = []
        self._network = network
        self._address = address

    def handle_message(self, message: Message) -> None:
        self.messages.append(message)
        if self._network is not None and message.request_id is not None:
            self._network.respond(message, {"echo": message.payload})


def make_net(latency=None, loss=0.0, seed=0):
    sim = Simulator()
    return sim, Network(sim, latency=latency, loss_rate=loss, seed=seed)


class TestDatagrams:
    def test_delivery_after_latency(self):
        sim, net = make_net(latency=ConstantLatency(0.5))
        receiver = Recorder()
        net.register(2, receiver)
        net.send(1, 2, "hello", {"x": 1})
        sim.run(until=0.4)
        assert receiver.messages == []
        sim.run(until=0.5)
        assert len(receiver.messages) == 1
        assert receiver.messages[0].payload == {"x": 1}
        assert net.stats.delivered == 1

    def test_send_to_dead_host_dropped(self):
        sim, net = make_net()
        net.send(1, 99, "hello")
        sim.run_until_idle()
        assert net.stats.dropped_dead == 1

    def test_unregister_drops_in_flight(self):
        sim, net = make_net(latency=ConstantLatency(1.0))
        receiver = Recorder()
        net.register(2, receiver)
        net.send(1, 2, "hello")
        net.unregister(2)
        sim.run_until_idle()
        assert receiver.messages == []
        assert net.stats.dropped_dead == 1

    def test_duplicate_registration_rejected(self):
        _, net = make_net()
        net.register(1, Recorder())
        with pytest.raises(ValueError):
            net.register(1, Recorder())

    def test_loss(self):
        sim, net = make_net(loss=0.5, seed=1)
        receiver = Recorder()
        net.register(2, receiver)
        for _ in range(200):
            net.send(1, 2, "m")
        sim.run_until_idle()
        assert 0 < len(receiver.messages) < 200
        assert net.stats.dropped_loss == 200 - len(receiver.messages)

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            make_net(loss=1.0)
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_loss_rate(-0.1)

    def test_partition_and_heal(self):
        sim, net = make_net()
        receiver = Recorder()
        net.register(2, receiver)
        net.partition(1, 2)
        net.send(1, 2, "lost")
        sim.run_until_idle()
        assert receiver.messages == []
        assert net.stats.dropped_partition == 1
        net.heal(1, 2)
        net.send(1, 2, "found")
        sim.run_until_idle()
        assert len(receiver.messages) == 1


class TestRequestResponse:
    def test_round_trip(self):
        sim, net = make_net(latency=ConstantLatency(0.1))
        server = Recorder(network=net)
        net.register(2, server)
        future = net.request(1, 2, "ask", {"q": 7}, timeout=5.0)
        sim.run_until_idle()
        assert future.value == {"echo": {"q": 7}}

    def test_timeout(self):
        sim, net = make_net()
        future = net.request(1, 99, "ask", timeout=2.0)
        sim.run_until_idle()
        assert future.failed
        assert net.stats.timeouts == 1

    def test_respond_requires_request(self):
        _, net = make_net()
        message = Message(1, 2, "x", None, request_id=None)
        with pytest.raises(ValueError):
            net.respond(message)

    def test_late_reply_after_timeout_ignored(self):
        sim, net = make_net(latency=ConstantLatency(3.0))
        server = Recorder(network=net)
        net.register(2, server)
        future = net.request(1, 2, "slow", timeout=1.0)
        sim.run_until_idle()
        assert future.failed  # reply arrived at t=6 > timeout
        assert net.stats.timeouts == 1


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.2)
        assert model.delay(1, 2, Random(0)) == 0.2
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_range(self):
        model = UniformLatency(0.1, 0.3)
        rng = Random(0)
        draws = [model.delay(1, 2, rng) for _ in range(100)]
        assert all(0.1 <= d <= 0.3 for d in draws)
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.1)

    def test_geographic_stable_coordinates(self):
        model = GeographicLatency(jitter=0.0)
        assert model.coordinates(7) == model.coordinates(7)
        assert model.delay(1, 2, Random(0)) == model.delay(1, 2, Random(99))

    def test_geographic_triangleish(self):
        model = GeographicLatency(jitter=0.0, base=0.0)
        # delay is symmetric and zero to itself
        assert model.delay(3, 3, Random(0)) == 0.0
        assert model.delay(1, 2, Random(0)) == model.delay(2, 1, Random(0))

    def test_geographic_torus_distance_bounds(self):
        model = GeographicLatency()
        for a, b in [(1, 2), (3, 4), (100, 200)]:
            assert 0 <= model.distance(a, b) <= (0.5**2 + 0.5**2) ** 0.5
