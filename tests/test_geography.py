"""Tests for the Hilbert curve and geographic identifier layout."""

from __future__ import annotations

import math
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idspace.geography import (
    geographic_identifiers,
    hilbert_index,
    hilbert_point,
)
from repro.idspace.ring import IdentifierSpace


class TestHilbertCurve:
    def test_order1(self):
        # the unit curve visits (0,0) (0,1) (1,1) (1,0)
        expected = {(0, 0): 0, (0, 1): 1, (1, 1): 2, (1, 0): 3}
        for (x, y), d in expected.items():
            assert hilbert_index(x, y, 1) == d
            assert hilbert_point(d, 1) == (x, y)

    def test_bijective_order4(self):
        order = 4
        cells = (1 << order) ** 2
        seen = set()
        for d in range(cells):
            x, y = hilbert_point(d, order)
            assert hilbert_index(x, y, order) == d
            seen.add((x, y))
        assert len(seen) == cells

    def test_curve_is_continuous(self):
        """Consecutive curve positions are grid neighbors."""
        order = 5
        previous = hilbert_point(0, order)
        for d in range(1, (1 << order) ** 2):
            x, y = hilbert_point(d, order)
            assert abs(x - previous[0]) + abs(y - previous[1]) == 1
            previous = (x, y)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            hilbert_index(4, 0, 2)
        with pytest.raises(ValueError):
            hilbert_point(16, 2)


@settings(max_examples=100)
@given(
    d=st.integers(min_value=0, max_value=(1 << 6) ** 2 - 1),
)
def test_hilbert_roundtrip_property(d):
    x, y = hilbert_point(d, 6)
    assert hilbert_index(x, y, 6) == d


class TestGeographicIdentifiers:
    def test_distinct_identifiers(self):
        rng = Random(1)
        coords = [(rng.random(), rng.random()) for _ in range(500)]
        space = IdentifierSpace(16)
        idents = geographic_identifiers(coords, space)
        assert len(set(idents)) == 500
        assert all(space.contains(i) for i in idents)

    def test_locality_preserved(self):
        """Geographically close hosts get ring-close identifiers far
        more often than under random placement."""
        rng = Random(2)
        coords = [(rng.random(), rng.random()) for _ in range(400)]
        space = IdentifierSpace(16)
        idents = geographic_identifiers(coords, space)

        def geo_distance(a, b):
            ax, ay = coords[a]
            bx, by = coords[b]
            return math.hypot(ax - bx, ay - by)

        # ring-successor pairs should be geographically close on average
        order = sorted(range(400), key=lambda i: idents[i])
        successor_distance = sum(
            geo_distance(order[i], order[(i + 1) % 400]) for i in range(400)
        ) / 400
        random_pairs = [(rng.randrange(400), rng.randrange(400)) for _ in range(400)]
        random_distance = sum(geo_distance(a, b) for a, b in random_pairs) / 400
        assert successor_distance < random_distance / 2

    def test_rejects_bad_coordinates(self):
        space = IdentifierSpace(10)
        with pytest.raises(ValueError, match="unit square"):
            geographic_identifiers([(1.5, 0.2)], space)

    def test_rejects_overfull(self):
        space = IdentifierSpace(3)
        coords = [(i / 10, i / 10) for i in range(9)]
        with pytest.raises(ValueError, match="cannot place"):
            geographic_identifiers(coords, space)

    def test_deterministic(self):
        coords = [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1)]
        space = IdentifierSpace(12)
        assert geographic_identifiers(coords, space) == geographic_identifiers(
            coords, space
        )
