"""Tests for shared-memory membership buffers and the scale tier.

The headline guarantees:

* a :class:`MemberBuffer` round-trips a snapshot *exactly* — same
  identifiers, capacities, bandwidths, same nodes — through both the
  shared-memory path and the by-value fallback;
* ``--jobs N`` output stays byte-identical to serial with shared
  buffers enabled AND with the fallback forced (``REPRO_NO_SHM=1``);
* the shm counters attribute cleanly: the parent balances creates
  against detaches, workers count each physical attach exactly once
  inside a task delta, so pool-summed deltas never double-count.
"""

from __future__ import annotations

import os
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.capacity.distributions import UniformCapacity
from repro.experiments.common import (
    BandwidthMembers,
    CapacityMembers,
    ExperimentScale,
    bandwidth_group,
    bandwidth_members,
    clear_caches,
    members_snapshot,
)
from repro.experiments.parallel import run_experiments
from repro.idspace.ring import IdentifierSpace
from repro.membership import DISABLE_ENV, InlineHandle, MemberBuffer, ShmHandle
from repro.membership import exchange
from repro.multicast import kernel
from repro.overlay.base import build_snapshot
from repro.overlay.cam_chord import CamChordOverlay
from repro.workloads.groups import GroupSpec

TINY = ExperimentScale("tiny", 400, 2, 20, space_bits=12)


@pytest.fixture
def force_fallback(monkeypatch):
    monkeypatch.setenv(DISABLE_ENV, "1")


def _build_snapshot(capacities, bandwidths, seed=0):
    return build_snapshot(
        IdentifierSpace(12),
        capacities,
        bandwidths=bandwidths,
        rng=Random(seed),
    )


def _assert_round_trip(original, restored):
    assert len(restored) == len(original)
    assert restored.space.bits == original.space.bits
    assert list(restored.identifiers) == list(original.identifiers)
    assert list(restored.capacities) == list(original.capacities)
    assert list(restored.bandwidths) == list(original.bandwidths)
    assert restored.nodes == original.nodes


class TestMemberBufferRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        capacities=st.lists(st.integers(1, 20), min_size=1, max_size=40),
        with_bandwidths=st.booleans(),
        seed=st.integers(0, 3),
    )
    def test_property_round_trip_shared_and_fallback(
        self, capacities, with_bandwidths, seed
    ):
        bandwidths = (
            [100.0 * c for c in capacities] if with_bandwidths else None
        )
        original = _build_snapshot(capacities, bandwidths, seed)
        previous = os.environ.get(DISABLE_ENV)
        try:
            for disable in ("", "1"):
                os.environ[DISABLE_ENV] = disable
                owner = MemberBuffer.from_snapshot(original)
                try:
                    assert owner.shared == (disable != "1")
                    _assert_round_trip(original, owner.snapshot())
                    attached = MemberBuffer.attach(owner.handle())
                    try:
                        _assert_round_trip(original, attached.snapshot())
                    finally:
                        attached.destroy()
                finally:
                    owner.destroy()
        finally:
            if previous is None:
                os.environ.pop(DISABLE_ENV, None)
            else:
                os.environ[DISABLE_ENV] = previous

    def test_handle_kinds(self, force_fallback):
        snapshot = _build_snapshot([4, 5, 6], [400.0, 500.0, 600.0])
        fallback = MemberBuffer.from_snapshot(snapshot)
        assert isinstance(fallback.handle(), InlineHandle)
        assert not fallback.shared
        fallback.destroy()  # no-op, must not raise

    def test_shared_handle_and_idempotent_destroy(self):
        snapshot = _build_snapshot([4, 5, 6], [400.0, 500.0, 600.0])
        buffer = MemberBuffer.from_snapshot(snapshot)
        if not buffer.shared:
            pytest.skip("shared memory unavailable on this platform")
        handle = buffer.handle()
        assert isinstance(handle, ShmHandle)
        assert handle.count == 3
        before = perf.snapshot()
        buffer.destroy()
        buffer.destroy()
        assert perf.since(before).shm_detaches == 1

    def test_snapshot_is_cached_per_buffer(self):
        snapshot = _build_snapshot([4, 4, 4], None)
        buffer = MemberBuffer.from_snapshot(snapshot)
        try:
            assert buffer.snapshot() is buffer.snapshot()
        finally:
            buffer.destroy()


class TestMemberRequests:
    def test_bandwidth_request_matches_group_snapshot(self):
        clear_caches()
        request = bandwidth_members("cam-chord", TINY, per_link_kbps=100.0, seed=3)
        built = members_snapshot(request)
        group = bandwidth_group("cam-chord", TINY, per_link_kbps=100.0, seed=3)
        assert group.snapshot is built  # same cache entry, not a rebuild

    def test_snapshot_shared_across_kinds_with_same_floor(self):
        clear_caches()
        chord = bandwidth_group("chord", TINY, per_link_kbps=100.0, seed=0)
        koorde = bandwidth_group("koorde", TINY, per_link_kbps=100.0, seed=0)
        # both baselines have min_capacity == 1 -> identical request
        assert chord.snapshot is koorde.snapshot

    def test_capacity_request_reproduces_generate_group(self):
        clear_caches()
        spec = GroupSpec(
            size=50, space_bits=12, capacities=UniformCapacity(4, 10), min_capacity=4
        )
        first = members_snapshot(CapacityMembers(spec=spec, seed=1))
        second = members_snapshot(CapacityMembers(spec=spec, seed=1))
        assert first is second
        assert first.identifiers == CapacityMembers(spec, 1).build().identifiers

    def test_requests_are_hashable_and_picklable(self):
        import pickle

        request = bandwidth_members("cam-koorde", TINY, per_link_kbps=40.0, seed=2)
        assert isinstance(request, BandwidthMembers)
        assert pickle.loads(pickle.dumps(request)) == request
        assert hash(request) == hash(pickle.loads(pickle.dumps(request)))


class TestParallelParity:
    """Serial vs --jobs 2, shared buffers on and fallback forced."""

    def _parity(self, figure):
        clear_caches()
        serial = run_experiments([figure], TINY, seeds=[0], jobs=1)
        clear_caches()
        fanned = run_experiments([figure], TINY, seeds=[0], jobs=2)
        assert serial[0].result.render() == fanned[0].result.render()

    def test_fig6_parity_with_shared_buffers(self):
        self._parity("fig6")

    def test_fig7_parity_with_shared_buffers(self):
        self._parity("fig7")

    def test_fig6_parity_with_fallback_forced(self, force_fallback):
        before = perf.snapshot()
        self._parity("fig6")
        delta = perf.since(before)
        assert delta.shm_creates == 0
        assert delta.shm_fallbacks > 0  # the fanned run published inline

    def test_fig7_parity_with_fallback_forced(self, force_fallback):
        self._parity("fig7")


class TestCounterAttribution:
    def test_parent_balances_creates_and_detaches(self):
        clear_caches()
        before = perf.snapshot()
        runs = run_experiments(["fig6"], TINY, seeds=[0], jobs=2)
        parent = perf.since(before)
        if parent.shm_fallbacks:
            pytest.skip("shared memory unavailable on this platform")
        assert parent.shm_creates > 0
        assert parent.shm_creates == parent.shm_detaches
        # the parent publishes but never attaches: worker attaches must
        # not leak into the parent's own counter stream
        assert parent.shm_attaches == 0
        # summed task deltas carry the worker attaches, each counted
        # once: at least one worker attached, no worker attached any
        # buffer twice (<= workers x buffers)
        attaches = runs[0].counters.shm_attaches
        assert 1 <= attaches <= 2 * parent.shm_creates

    def test_exchange_attach_counted_once_per_worker(self):
        snapshot = _build_snapshot([4, 5, 6], [400.0, 500.0, 600.0])
        exchange.publish("req", snapshot)
        try:
            handles = exchange.export_handles()
            exchange.install(handles)  # simulate the worker initializer
            before = perf.snapshot()
            first = exchange.acquire("req")
            second = exchange.acquire("req")
            delta = perf.since(before)
            assert first is second
            if delta.shm_fallbacks == 0:
                assert delta.shm_attaches == 1  # second acquire was a dict hit
        finally:
            exchange.install({})
            exchange.release_all()

    def test_acquire_unpublished_returns_none(self):
        assert exchange.acquire(("nope", 1)) is None


class TestKernelStateCache:
    def test_state_reused_for_same_overlay(self):
        snapshot = _build_snapshot([4] * 30, None)
        overlay = CamChordOverlay(snapshot)
        state = kernel._split_state(overlay)
        assert kernel._split_state(overlay) is state

    def test_capacity_eviction_counts(self):
        overlays = []
        for seed in range(kernel._STATE_CAPACITY + 2):
            snapshot = _build_snapshot([4] * 20, None, seed=seed)
            overlays.append(CamChordOverlay(snapshot))
        before = perf.snapshot()
        for overlay in overlays:
            kernel._split_state(overlay)
        delta = perf.since(before)
        assert delta.kernel_state_evictions >= 2
        assert len(kernel._SPLIT_STATES) <= kernel._STATE_CAPACITY

    def test_dead_overlay_entry_dropped_without_eviction(self):
        import gc

        snapshot = _build_snapshot([4] * 20, None, seed=99)
        overlay = CamChordOverlay(snapshot)
        kernel._split_state(overlay)
        population = len(kernel._SPLIT_STATES)
        before = perf.snapshot()
        del overlay
        gc.collect()
        assert len(kernel._SPLIT_STATES) == population - 1
        assert perf.since(before).kernel_state_evictions == 0


class TestPeakRss:
    def test_peak_rss_positive_or_absent(self):
        rss = perf.peak_rss()
        if rss is None:
            pytest.skip("resource module unavailable")
        assert rss > 0
        assert perf.peak_rss_mb() == pytest.approx(rss / (1024 * 1024), abs=0.06)
