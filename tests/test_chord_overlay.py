"""Plain Chord baseline: finger tables and lookup."""

from __future__ import annotations

import math
from random import Random

import pytest

from repro.overlay.chord import ChordOverlay
from tests.conftest import make_snapshot, random_snapshot


class TestFingers:
    def test_classic_base2_fingers(self):
        snap = make_snapshot(8, [0, 50, 100, 200], capacity=2)
        overlay = ChordOverlay(snap, base=2)
        node = snap.node_at(0)
        assert sorted(overlay.neighbor_identifiers(node)) == [
            1, 2, 4, 8, 16, 32, 64, 128,
        ]

    def test_base4_fingers(self):
        snap = make_snapshot(4, [0, 5], capacity=2)
        overlay = ChordOverlay(snap, base=4)
        node = snap.node_at(0)
        assert sorted(overlay.neighbor_identifiers(node)) == [1, 2, 3, 4, 8, 12]

    def test_fanout_ignores_node_capacity(self):
        snap = make_snapshot(8, [0, 50], capacity=[2, 9])
        overlay = ChordOverlay(snap, base=4)
        assert overlay.fanout(snap.node_at(0)) == 4
        assert overlay.fanout(snap.node_at(50)) == 4

    def test_validation(self):
        snap = make_snapshot(8, [0], capacity=2)
        with pytest.raises(ValueError):
            ChordOverlay(snap, base=1)
        with pytest.raises(ValueError):
            overlay = ChordOverlay(snap, base=2)
            overlay.finger_identifier(snap.node_at(0), 0, 5)


class TestLookup:
    def test_every_key_every_start(self):
        snap = make_snapshot(7, [0, 5, 17, 40, 41, 90, 100, 127], capacity=2)
        for base in (2, 3, 8):
            overlay = ChordOverlay(snap, base=base)
            for start in snap:
                for key in range(128):
                    result = overlay.lookup(start, key)
                    assert result.responsible.ident == snap.resolve(key).ident

    def test_logarithmic_hops(self):
        rng = Random(11)
        snap = random_snapshot(19, 4000, seed=11)
        overlay = ChordOverlay(snap, base=2)
        hops = []
        for _ in range(300):
            start = snap.random_node(rng)
            key = rng.randrange(2**19)
            hops.append(overlay.lookup(start, key).hops)
        mean = sum(hops) / len(hops)
        # classic Chord averages ~0.5 log2 n; assert a loose upper bound
        assert mean <= 1.5 * math.log2(4000)
