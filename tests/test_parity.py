"""Static-vs-live parity: one MemberSpec, two worlds, the same tree."""

from __future__ import annotations

import pytest

from repro.systems import MemberSpec, SystemKind, all_descriptors, descriptor_for
from repro.systems.parity import check_parity

RING_SIZE = 64
SPACE_BITS = 12
UNIFORM_FANOUT = 4


@pytest.fixture(scope="module")
def spec() -> MemberSpec:
    return MemberSpec.generate(RING_SIZE, space_bits=SPACE_BITS, seed=11)


@pytest.fixture(
    scope="module",
    params=[d.name for d in all_descriptors()],
)
def report(request, spec):
    return check_parity(
        request.param, spec, uniform_fanout=UNIFORM_FANOUT, seed=11
    )


class TestParityAllSystems:
    def test_worlds_agree(self, report):
        assert report.ok, report.summary()

    def test_exactly_once_in_both_worlds(self, report, spec):
        members = set(spec.identifiers)
        # static: every member delivered, depth recorded once
        assert set(report.static_depths) == members
        # live: every member recorded exactly one first delivery
        assert set(report.live_depths) == members
        assert report.static_depths == report.live_depths

    def test_tree_systems_match_edge_for_edge(self, report):
        descriptor = descriptor_for(SystemKind(report.system))
        if not descriptor.builds_single_tree:
            pytest.skip("flood systems compare receivers and depths only")
        assert report.edges_compared
        assert report.static_edges == report.live_edges
        assert report.live_duplicates == 0
        # a single-parent tree spanning n members has n-1 edges
        assert len(report.live_edges) == len(report.members) - 1

    def test_source_at_depth_zero(self, report):
        assert report.static_depths[report.source] == 0
        assert report.live_depths[report.source] == 0


class TestMemberSpec:
    def test_generate_is_deterministic(self):
        a = MemberSpec.generate(32, space_bits=12, seed=7)
        b = MemberSpec.generate(32, space_bits=12, seed=7)
        assert a == b
        assert MemberSpec.generate(32, space_bits=12, seed=8) != a

    def test_bandwidths_follow_capacity_rule(self):
        spec = MemberSpec.generate(32, space_bits=12, per_link_kbps=100.0, seed=7)
        for capacity, bandwidth in zip(spec.capacities, spec.bandwidths):
            assert bandwidth == capacity * 100.0

    def test_snapshot_clamps_to_floor(self):
        spec = MemberSpec(
            space_bits=10,
            identifiers=(1, 2, 3),
            capacities=(1, 2, 9),
            bandwidths=(100.0, 200.0, 900.0),
        )
        snapshot = spec.snapshot(min_capacity=4)
        assert [node.capacity for node in snapshot.nodes] == [4, 4, 9]

    def test_rejects_duplicate_identifiers(self):
        with pytest.raises(ValueError, match="duplicate"):
            MemberSpec(
                space_bits=10,
                identifiers=(5, 5),
                capacities=(4, 4),
                bandwidths=(400.0, 400.0),
            )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            MemberSpec(
                space_bits=10,
                identifiers=(1, 2),
                capacities=(4,),
                bandwidths=(400.0, 400.0),
            )

    def test_rejects_out_of_space_identifier(self):
        with pytest.raises(ValueError, match="outside"):
            MemberSpec(
                space_bits=4,
                identifiers=(99,),
                capacities=(4,),
                bandwidths=(400.0,),
            )

    def test_same_spec_seeds_both_worlds(self):
        """The whole point: one spec places the same members at the
        same identifiers in the static snapshot and the live cluster."""
        from repro.protocol.cluster import Cluster

        spec = MemberSpec.generate(16, space_bits=10, seed=3)
        snapshot = spec.snapshot(min_capacity=2)
        cluster = Cluster("cam-chord", spec, seed=3)
        assert {node.ident for node in snapshot.nodes} == set(cluster.peers)
        for node in snapshot.nodes:
            assert cluster.peers[node.ident].capacity == node.capacity
