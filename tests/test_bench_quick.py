"""The CI perf-smoke gate (`bench_core --quick`), tested hermetically.

Figure timings are monkeypatched so the gate logic — baseline lookup,
ratio computation, result JSON, exit code — is exercised without
multi-second benchmark runs in the tier-1 suite.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import bench_core


@pytest.fixture
def trajectory(tmp_path):
    path = tmp_path / "BENCH_core.json"
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "entries": [
                    {
                        "recorded_at": "2026-08-06T00:00:00+00:00",
                        "scale": "bench",
                        "figures": {
                            "fig6": {"cold_median_s": 1.0},
                            "fig8": {"cold_median_s": 2.0},
                            "extL": {"cold_median_s": 0.5},
                            "extN": {"cold_median_s": 0.5},
                        },
                        "service": {
                            "wall_s": 1.0,
                            "deliveries_per_sec": 25.0,
                        },
                    }
                ],
            }
        )
    )
    return path


def run_quick(
    monkeypatch,
    tmp_path,
    trajectory,
    timings,
    service_wall=1.0,
    service_dps=30000.0,
    service_plane_wall=0.05,
):
    monkeypatch.setattr(
        bench_core, "time_figure", lambda name, scale, seed=0: timings[name]
    )
    monkeypatch.setattr(
        bench_core,
        "measure_service",
        lambda scale, seed=0, profile=None: {
            "wall_s": service_wall,
            "deliveries_per_sec": 25.0,
            "deliveries_per_sec_wall": service_dps,
            "plane_wall_s": service_plane_wall,
        },
    )
    result_path = tmp_path / "bench_quick.json"
    code = bench_core.main(
        [
            "--quick",
            "--out",
            str(trajectory),
            "--quick-out",
            str(result_path),
        ]
    )
    return code, json.loads(result_path.read_text())


def test_quick_passes_within_tolerance(monkeypatch, tmp_path, trajectory):
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.1, "extL": 0.5, "extN": 0.5},
    )
    assert code == 0
    assert result["passed"] is True
    assert result["figures"]["fig6"]["ratio"] == 1.2
    assert result["figures"]["fig6"]["baseline_cold_median_s"] == 1.0
    assert set(result["figures"]) == set(bench_core.QUICK_FIGURES)


def test_quick_fails_on_regression_but_still_writes_result(
    monkeypatch, tmp_path, trajectory
):
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.0 * 1.31, "extL": 0.5, "extN": 0.5},
    )
    assert code == 1
    assert result["passed"] is False
    assert result["figures"]["fig6"]["ok"] is True
    assert result["figures"]["fig8"]["ok"] is False


def test_quick_noise_floor_forgives_small_absolute_slowdowns(
    monkeypatch, tmp_path, trajectory
):
    """A fast figure over the ratio tolerance but within the absolute
    noise floor must not fail the gate — sub-100ms figures jitter past
    1.3x from scheduler noise alone."""
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {
            "fig6": 1.2,
            "fig8": 2.1,
            "extL": 0.5 + bench_core.NOISE_FLOOR_S,
            "extN": 0.5,
        },
    )
    assert code == 0
    assert result["passed"] is True
    assert result["figures"]["extL"]["ok"] is True
    assert result["figures"]["extL"]["ratio"] > 1.3


def test_quick_skips_figures_missing_from_baseline(
    monkeypatch, tmp_path, trajectory
):
    """A baseline entry that predates a gated figure must not fail the
    gate — the figure is skipped until the next trajectory append."""
    stale = json.loads(trajectory.read_text())
    del stale["entries"][-1]["figures"]["extL"]
    trajectory.write_text(json.dumps(stale))
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.1, "extL": 0.5, "extN": 0.5},
    )
    assert code == 0
    assert result["passed"] is True
    assert "extL" not in result["figures"]


def test_quick_gates_service_throughput(monkeypatch, tmp_path, trajectory):
    """The sustained-throughput entry is held to the same tolerance as
    the figures: a service wall-clock past 1.3x the committed entry
    (and past the noise floor) fails the gate."""
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.1, "extL": 0.5, "extN": 0.5},
        service_wall=1.0 * 1.31 + bench_core.NOISE_FLOOR_S,
    )
    assert code == 1
    assert result["passed"] is False
    assert result["service"]["ok"] is False
    assert result["service"]["baseline_wall_s"] == 1.0


def _with_wall_rate_baseline(trajectory, dps=30000.0, plane_wall=0.05):
    entry = json.loads(trajectory.read_text())
    entry["entries"][-1]["service"]["deliveries_per_sec_wall"] = dps
    entry["entries"][-1]["service"]["plane_wall_s"] = plane_wall
    trajectory.write_text(json.dumps(entry))


def test_quick_gates_service_wall_rate_floor(monkeypatch, tmp_path, trajectory):
    """With a wall-rate baseline committed, a cell delivering below
    0.77x of it — and slower by more than the noise floor — fails."""
    _with_wall_rate_baseline(trajectory)
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.1, "extL": 0.5, "extN": 0.5},
        service_dps=30000.0 * 0.5,
        service_plane_wall=0.05 + bench_core.NOISE_FLOOR_S + 0.1,
    )
    assert code == 1
    assert result["passed"] is False
    assert result["service"]["dps_ok"] is False
    assert result["service"]["dps_floor"] == 0.77


def test_quick_wall_rate_floor_forgives_sub_noise_slowdowns(
    monkeypatch, tmp_path, trajectory
):
    """A low ratio on a cell whose absolute slowdown is within the
    noise floor passes — tiny cells jitter past any ratio."""
    _with_wall_rate_baseline(trajectory)
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.1, "extL": 0.5, "extN": 0.5},
        service_dps=30000.0 * 0.5,
        service_plane_wall=0.06,  # 10ms over baseline: noise
    )
    assert code == 0
    assert result["service"]["dps_ok"] is True


def test_quick_skips_wall_rate_floor_on_stale_baseline(
    monkeypatch, tmp_path, trajectory
):
    """The fixture baseline predates deliveries_per_sec_wall, so only
    the wall-time gate runs — no dps fields in the result."""
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.1, "extL": 0.5, "extN": 0.5},
    )
    assert code == 0
    assert "dps_ok" not in result["service"]


def test_quick_skips_service_missing_from_baseline(
    monkeypatch, tmp_path, trajectory
):
    stale = json.loads(trajectory.read_text())
    del stale["entries"][-1]["service"]
    trajectory.write_text(json.dumps(stale))
    code, result = run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 1.2, "fig8": 2.1, "extL": 0.5, "extN": 0.5},
    )
    assert code == 0
    assert result["service"] is None


def test_quick_rejects_scale_mismatch(monkeypatch, tmp_path, trajectory):
    monkeypatch.setattr(bench_core, "time_figure", lambda name, scale, seed=0: 0.1)
    with pytest.raises(SystemExit, match="scale"):
        bench_core.main(
            [
                "--quick",
                "--scale",
                "quick",
                "--out",
                str(trajectory),
                "--quick-out",
                str(tmp_path / "q.json"),
            ]
        )


def test_quick_never_appends_to_trajectory(monkeypatch, tmp_path, trajectory):
    before = trajectory.read_text()
    run_quick(
        monkeypatch,
        tmp_path,
        trajectory,
        {"fig6": 0.5, "fig8": 0.5, "extL": 0.5, "extN": 0.5},
    )
    assert trajectory.read_text() == before
