"""Epoch-cached dissemination schedules: byte-identity and invalidation.

The service plane's schedule cache is pure mechanism — it must change
*nothing* observable.  These tests pin that down three ways:

* **Equivalence.**  The full extN quick matrix runs twice, cache on
  and cache off (``REPRO_NO_SCHED_CACHE=1``), and receipts, sequence
  audits, ``mc.*`` trace JSONL and the plane report must be
  byte-identical — including contended-uplink scenarios where the
  wavefront's reservations interleave with backpressure.
* **Invalidation.**  A Hypothesis-driven op sequence checks the
  membership-epoch contract: every join/leave/create bumps the epoch,
  no send ever delivers through a stale tree to a departed member,
  and a leave-then-rejoin opens a fresh ledger stint.
* **Attribution.**  The ``schedule_cache_*`` / ``wavefront_commits``
  counters, the extN per-cell cache stats, and the schedule preview.
"""

from __future__ import annotations

import json
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.experiments.common import SCALES, point_rng
from repro.experiments.ext_service import _workload_spec, run_point
from repro.multicast.plane import ServicePlane
from repro.sim.transfer import UplinkBudget, delivery_timeline
from repro.trace.tracer import TRACER


def make_plane(
    hosts: int = 20,
    kbps: float = 400.0,
    space_bits: int = 14,
    schedule_cache: bool | None = None,
    hop_latency: float = 0.0,
) -> ServicePlane:
    plane = ServicePlane(
        space_bits=space_bits,
        schedule_cache=schedule_cache,
        hop_latency=hop_latency,
    )
    for index in range(hosts):
        plane.register_host(f"h{index}", kbps)
    return plane


def observe(plane: ServicePlane, trace: str | None = None):
    """Everything the cache must not change, in comparison form.

    ``delivered`` is compared as an ordered item tuple on purpose:
    insertion order is commit order, so even the *sequence* in which
    members received must match the uncached interleaving.
    """
    receipts = tuple(
        (
            r.group,
            r.seq,
            r.mid,
            r.source,
            r.message_kbits,
            r.origin_time,
            r.members,
            tuple(r.delivered.items()),
            r.complete,
        )
        for r in plane.receipts()
    )
    audit = plane.audit()
    return (
        receipts,
        (audit.gaps, audit.dups, audit.unexpected),
        trace,
        plane.report(),
        plane.service.host_load_kbits(),
        plane.budget.deferrals(),
    )


def run_extn_cell(point, cache: bool, scale=SCALES["quick"], seed: int = 0):
    """One extN cell end to end, returning the observable tuple."""
    from repro.workloads import generate_service_workload

    groups, churn = point
    spec = _workload_spec(scale, groups, churn)
    workload_seed = point_rng(seed, "extN", groups, churn).randrange(1 << 31)
    workload = generate_service_workload(spec, seed=workload_seed)
    plane = ServicePlane(space_bits=scale.space_bits, schedule_cache=cache)
    for name, kbps in workload.hosts:
        plane.register_host(name, kbps)
    TRACER.enable()
    try:
        plane.replay(workload.events)
        plane.drain()
        trace = "\n".join(
            json.dumps(event.to_json_dict()) for event in TRACER.events()
        )
    finally:
        TRACER.disable()
        TRACER.clear()
    plane.verify_quiesced()
    return observe(plane, trace)


class TestCachedUncachedEquivalence:
    def test_extn_quick_matrix_is_byte_identical(self):
        # the full quick matrix: group counts x churn rates, including
        # churned cells where epochs move mid-dissemination
        scale = SCALES["quick"]
        from repro.experiments.ext_service import sweep

        for point in sweep(scale):
            cached = run_extn_cell(point, cache=True, scale=scale)
            uncached = run_extn_cell(point, cache=False, scale=scale)
            assert cached == uncached, f"divergence at extN cell {point}"

    def test_env_escape_hatch_selects_uncached(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SCHED_CACHE", "1")
        plane = ServicePlane(space_bits=14)
        assert plane._schedule_cache is False
        monkeypatch.delenv("REPRO_NO_SCHED_CACHE")
        assert ServicePlane(space_bits=14)._schedule_cache is True

    def test_contended_uplink_fallback_is_byte_identical(self):
        # one slow host shared by every group: the budget saturates,
        # deliveries defer, and the wavefront must interleave with the
        # backpressure exactly as the event-per-delivery path does
        def contended(cache: bool):
            plane = ServicePlane(space_bits=14, schedule_cache=cache)
            plane.register_host("slow", 10.0)  # 10 kbps uplink
            for index in range(12):
                plane.register_host(f"h{index}", 400.0)
            rng = Random(7)
            for g in range(4):
                members = ["slow"] + [f"h{i}" for i in range(g, g + 6)]
                plane.create_group(f"g{g}", members)
            TRACER.enable()
            try:
                for step in range(25):
                    group = f"g{rng.randrange(4)}"
                    source = rng.choice(
                        plane.service.members_of(group)
                    )
                    plane.send_later(step * 0.2, group, source, 16.0)
                plane.drain()
                trace = "\n".join(
                    json.dumps(e.to_json_dict()) for e in TRACER.events()
                )
            finally:
                TRACER.disable()
                TRACER.clear()
            plane.verify_quiesced()
            return observe(plane, trace)

        cached = contended(True)
        uncached = contended(False)
        assert cached == uncached
        assert cached[5] > 0  # the scenario genuinely backpressured

    def test_bounded_run_interleaves_identically(self):
        # run(until) bounds the wavefront's look-ahead: mid-run state
        # must match the event-per-delivery execution at every cut
        def stepped(cache: bool):
            plane = make_plane(hosts=16, schedule_cache=cache)
            plane.create_group("g", [f"h{i}" for i in range(10)])
            states = []
            plane.send("g", "h0", 40.0)
            for until in (0.02, 0.05, 0.011, 0.3, 2.0):
                plane.run(plane.now + until)
                states.append(observe(plane))
                plane.send("g", "h1", 24.0)
            plane.drain()
            plane.verify_quiesced()
            states.append(observe(plane))
            return states

        assert stepped(True) == stepped(False)


class TestEpochInvalidation:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=40))
    def test_membership_ops_bump_epoch_and_freeze_membership(self, codes):
        plane = make_plane(hosts=8)
        pool = [f"h{i}" for i in range(8)]
        members = ["h0", "h1", "h2"]
        plane.create_group("g", list(members))
        service = plane.service
        epoch = service.membership_epoch("g")
        admissions = {name: 1 for name in members}
        for code in codes:
            op = code % 3
            if op == 0:  # join (falls through to send when full)
                candidates = [name for name in pool if name not in members]
                if candidates:
                    joiner = candidates[(code // 3) % len(candidates)]
                    plane.join("g", joiner)
                    members.append(joiner)
                    admissions[joiner] = admissions.get(joiner, 0) + 1
                    bumped = service.membership_epoch("g")
                    assert bumped > epoch, "join must open a new epoch"
                    epoch = bumped
                    continue
                op = 2
            if op == 1:  # leave (keeps at least one member)
                if len(members) > 1:
                    leaver = members[(code // 3) % len(members)]
                    plane.leave("g", leaver)
                    members.remove(leaver)
                    bumped = service.membership_epoch("g")
                    assert bumped > epoch, "leave must open a new epoch"
                    epoch = bumped
                    continue
                op = 2
            if op == 2:  # send: frozen membership == current members
                source = members[(code // 3) % len(members)]
                receipt = plane.send("g", source, 4.0)
                assert set(receipt.members) == set(members), (
                    "a send must freeze exactly the current epoch's "
                    "membership — never a stale tree's"
                )
                assert service.membership_epoch("g") == epoch, (
                    "sends must not bump the epoch"
                )
        plane.drain()
        plane.verify_quiesced()  # leavers still complete in-flight sends
        for receipt in plane.receipts():
            assert set(receipt.delivered) == set(receipt.members), (
                "deliveries must cover the frozen membership exactly: "
                "no departed member may receive through a stale tree"
            )
        ledger = plane._ledgers["g"]
        for name, stints in ledger._cursors.items():
            assert len(stints) == admissions[name], (
                f"{name}: every leave-then-rejoin must open a fresh stint"
            )

    def test_drop_group_invalidates_cached_templates(self):
        plane = make_plane(schedule_cache=True)
        plane.create_group("g", ["h0", "h1", "h2", "h3"])
        with perf.scoped() as scope:
            plane.send("g", "h0")
            plane.send("g", "h1")
            plane.drain()
            plane.drop_group("g")
        assert scope.delta.schedule_cache_misses == 2
        assert scope.delta.schedule_cache_invalidations == 2


class TestCounters:
    def test_hit_miss_accounting(self):
        plane = make_plane(schedule_cache=True)
        plane.create_group("g", ["h0", "h1", "h2", "h3"])
        with perf.scoped() as scope:
            plane.send("g", "h0")
            plane.send("g", "h0")  # same (epoch, source): hit
            plane.send("g", "h1")  # new source: miss
            plane.drain()
        delta = scope.delta
        assert delta.schedule_cache_misses == 2
        assert delta.schedule_cache_hits == 1
        assert delta.wavefront_commits >= 1

    def test_membership_change_invalidates(self):
        plane = make_plane(schedule_cache=True)
        plane.create_group("g", ["h0", "h1", "h2", "h3"])
        plane.send("g", "h0")
        plane.drain()
        plane.join("g", "h4")
        with perf.scoped() as scope:
            plane.send("g", "h0")  # stale epoch: invalidate + rebuild
            plane.drain()
        assert scope.delta.schedule_cache_invalidations == 1
        assert scope.delta.schedule_cache_misses == 1
        assert scope.delta.schedule_cache_hits == 0

    def test_uncached_plane_touches_no_cache_counters(self):
        plane = make_plane(schedule_cache=False)
        plane.create_group("g", ["h0", "h1", "h2", "h3"])
        with perf.scoped() as scope:
            plane.send("g", "h0")
            plane.drain()
        delta = scope.delta
        assert delta.schedule_cache_hits == 0
        assert delta.schedule_cache_misses == 0
        assert delta.wavefront_commits == 0


class TestSchedulePreview:
    def test_preview_matches_uncontended_send(self):
        plane = make_plane(hosts=12, hop_latency=0.005)
        plane.create_group("g", [f"h{i}" for i in range(10)])
        preview = plane.schedule_preview("g", "h0", message_kbits=8.0)
        receipt = plane.send("g", "h0", message_kbits=8.0)  # at t=0
        plane.drain()
        assert receipt.delivered == preview, (
            "an isolated send at t=0 must land exactly on the preview"
        )

    def test_preview_does_not_perturb_the_plane(self):
        plane = make_plane(hosts=12)
        plane.create_group("g", [f"h{i}" for i in range(8)])
        free_before = {
            f"h{i}": plane.budget.free_at(f"h{i}") for i in range(8)
        }
        plane.schedule_preview("g", "h0")
        assert free_before == {
            f"h{i}": plane.budget.free_at(f"h{i}") for i in range(8)
        }
        assert plane.budget.reservations() == 0

    def test_preview_agrees_with_delivery_timeline(self):
        plane = make_plane(hosts=12)
        plane.create_group("g", [f"h{i}" for i in range(8)])
        service = plane.service
        group = service.group("g")
        source = service.member_ident("g", "h0")
        tree = group.multicast_from(group.snapshot.node_at(source))
        host_of = {
            service.member_ident("g", name): name
            for name in service.members_of("g")
        }
        timeline = delivery_timeline(
            tree, group.snapshot, 8.0, budget=UplinkBudget()
        )
        preview = plane.schedule_preview("g", "h0", message_kbits=8.0)
        assert preview == {
            host_of[ident]: when for ident, when in timeline.items()
        }

    def test_preview_unknown_group_and_member(self):
        plane = make_plane()
        with pytest.raises(KeyError, match="no group"):
            plane.schedule_preview("nope", "h0")
        plane.create_group("g", ["h0", "h1"])
        with pytest.raises(KeyError, match="not a member"):
            plane.schedule_preview("g", "h9")


class TestExperimentAttribution:
    def test_extn_row_carries_cache_stats(self):
        row = run_point(SCALES["bench"], 0, (12, 0.0))
        cache = row["sched_cache"]
        lookups = cache["hits"] + cache["misses"]
        # one template lookup per send — no more, no fewer
        assert lookups == row["sends"]
        assert cache["misses"] > 0
        assert cache["wavefront_commits"] > 0
        assert cache["hit_rate"] == round(cache["hits"] / lookups, 4)

    def test_wall_rate_in_report_and_render(self):
        plane = make_plane()
        plane.create_group("g", ["h0", "h1", "h2", "h3"])
        plane.send("g", "h0")
        plane.drain()
        report = plane.report()
        assert report.wall_s > 0.0
        assert report.wall_deliveries_per_sec() > 0.0
        assert "/s wall" in report.render()

    def test_wall_clock_excluded_from_report_equality(self):
        def once():
            plane = make_plane()
            plane.create_group("g", ["h0", "h1", "h2", "h3"])
            plane.send("g", "h0")
            plane.drain()
            return plane.report()

        one, other = once(), once()
        assert one == other  # wall_s differs but is compare-excluded
        assert one.wall_s != 0.0
