"""Tests for the capacity model and distributions."""

from __future__ import annotations

import math
from random import Random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capacity.distributions import (
    FixedCapacity,
    UniformBandwidth,
    UniformCapacity,
    expected_log_capacity,
)
from repro.capacity.model import (
    CAM_CHORD_MIN_CAPACITY,
    CAM_KOORDE_MIN_CAPACITY,
    CapacityModel,
    capacity_from_bandwidth,
)


class TestCapacityFromBandwidth:
    def test_papers_rule(self):
        # c_x = floor(B_x / p)
        assert capacity_from_bandwidth(700, 100) == 7
        assert capacity_from_bandwidth(699, 100) == 6
        assert capacity_from_bandwidth(400, 100) == 4

    def test_minimum_clamp(self):
        assert capacity_from_bandwidth(50, 100, minimum=4) == 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            capacity_from_bandwidth(100, 0)
        with pytest.raises(ValueError):
            capacity_from_bandwidth(-1, 100)

    def test_floors_match_overlays(self):
        assert CAM_CHORD_MIN_CAPACITY == 2
        assert CAM_KOORDE_MIN_CAPACITY == 4


class TestCapacityModel:
    def test_vectorized(self):
        model = CapacityModel(per_link_kbps=100, minimum=4)
        assert model.capacities([400, 1000, 50]) == [4, 10, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityModel(per_link_kbps=0)
        with pytest.raises(ValueError):
            CapacityModel(per_link_kbps=10, minimum=0)

    def test_paper_default_range(self):
        """B in [400,1000], p=100 gives the paper's default c in [4..10]."""
        model = CapacityModel(per_link_kbps=100, minimum=4)
        rng = Random(0)
        draws = [model.capacity(rng.uniform(400, 1000)) for _ in range(1000)]
        assert min(draws) >= 4
        assert max(draws) <= 10
        # capacity 10 needs B == 1000 exactly (measure zero), so the
        # observable support is [4..9]
        assert set(range(4, 10)) <= set(draws)


class TestDistributions:
    def test_fixed(self):
        dist = FixedCapacity(4)
        assert dist.sample(Random(0)) == 4
        assert dist.mean() == 4
        assert str(dist) == "4"

    def test_uniform_capacity_range_and_mean(self):
        dist = UniformCapacity(4, 10)
        rng = Random(1)
        draws = dist.sample_many(2000, rng)
        assert set(draws) == set(range(4, 11))
        assert dist.mean() == 7
        assert str(dist) == "[4..10]"

    def test_uniform_capacity_validation(self):
        with pytest.raises(ValueError):
            UniformCapacity(0, 5)
        with pytest.raises(ValueError):
            UniformCapacity(5, 4)

    def test_uniform_bandwidth(self):
        dist = UniformBandwidth(400, 1000)
        rng = Random(2)
        draws = dist.sample_many(1000, rng)
        assert all(400 <= b <= 1000 for b in draws)
        assert dist.mean() == 700
        assert dist.minimum() == 400
        assert dist.heterogeneity() == pytest.approx(1.75)

    def test_uniform_bandwidth_validation(self):
        with pytest.raises(ValueError):
            UniformBandwidth(0, 100)
        with pytest.raises(ValueError):
            UniformBandwidth(500, 400)

    def test_expected_log_capacity(self):
        assert expected_log_capacity(FixedCapacity(8)) == pytest.approx(3.0)
        manual = sum(math.log2(v) for v in range(4, 11)) / 7
        assert expected_log_capacity(UniformCapacity(4, 10)) == pytest.approx(manual)
        with pytest.raises(TypeError):
            expected_log_capacity(object())  # type: ignore[arg-type]


@given(
    st.floats(min_value=1, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
)
def test_capacity_never_exceeds_bandwidth_ratio(bandwidth, per_link):
    capacity = capacity_from_bandwidth(bandwidth, per_link)
    assert capacity >= 1
    # Above the clamp the allocation per link is at least per_link.
    if bandwidth / per_link >= 1:
        assert bandwidth / capacity >= per_link * 0.999999
