"""Tests for the MulticastGroup facade."""

from __future__ import annotations

from random import Random

import pytest

from repro.multicast.session import MulticastGroup, SystemKind
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.koorde import KoordeOverlay
from tests.conftest import random_snapshot


def bandwidths(count: int, seed: int = 0) -> list[float]:
    rng = Random(seed)
    return [rng.uniform(400, 1000) for _ in range(count)]


class TestSystemKind:
    def test_capacity_awareness_flags(self):
        assert SystemKind.CAM_CHORD.capacity_aware
        assert SystemKind.CAM_KOORDE.capacity_aware
        assert not SystemKind.CHORD.capacity_aware
        assert not SystemKind.KOORDE.capacity_aware

    def test_min_capacities(self):
        assert SystemKind.CAM_CHORD.min_capacity == 2
        assert SystemKind.CAM_KOORDE.min_capacity == 4
        assert SystemKind.CHORD.min_capacity == 1
        assert SystemKind.KOORDE.min_capacity == 1


class TestBuild:
    def test_overlay_types(self):
        expected = {
            SystemKind.CAM_CHORD: CamChordOverlay,
            SystemKind.CAM_KOORDE: CamKoordeOverlay,
            SystemKind.CHORD: ChordOverlay,
            SystemKind.KOORDE: KoordeOverlay,
        }
        for kind, overlay_type in expected.items():
            group = MulticastGroup.build(
                kind, bandwidths(50), per_link_kbps=100, space_bits=12,
                uniform_fanout=4,
            )
            assert isinstance(group.overlay, overlay_type)
            assert group.kind is kind
            assert len(group) == 50

    def test_capacities_follow_bandwidths(self):
        group = MulticastGroup.build(
            SystemKind.CAM_CHORD, [450.0, 980.0], per_link_kbps=100, space_bits=12
        )
        caps = sorted(node.capacity for node in group.snapshot)
        assert caps == [4, 9]

    def test_min_capacity_clamp_for_cam_koorde(self):
        group = MulticastGroup.build(
            SystemKind.CAM_KOORDE, [100.0, 900.0], per_link_kbps=100, space_bits=12
        )
        caps = sorted(node.capacity for node in group.snapshot)
        assert caps == [4, 9]

    def test_deterministic_by_seed(self):
        groups = [
            MulticastGroup.build(
                SystemKind.CAM_CHORD, bandwidths(30), per_link_kbps=100,
                space_bits=12, seed=5,
            )
            for _ in range(2)
        ]
        idents = [[n.ident for n in g.snapshot] for g in groups]
        assert idents[0] == idents[1]

    def test_from_snapshot(self):
        snap = random_snapshot(12, 30, seed=1)
        group = MulticastGroup.from_snapshot(SystemKind.CAM_CHORD, snap)
        assert group.snapshot is snap


class TestMulticast:
    @pytest.mark.parametrize("kind", list(SystemKind))
    def test_full_coverage_every_system(self, kind):
        group = MulticastGroup.build(
            kind, bandwidths(120), per_link_kbps=100, space_bits=12,
            uniform_fanout=4, seed=2,
        )
        source = group.random_member(Random(0))
        tree = group.multicast_from(source)
        tree.verify_exactly_once({n.ident for n in group.snapshot})

    def test_chord_baseline_is_balanced(self):
        """SystemKind.CHORD uses the balanced splitter: out-degree is
        capped at the uniform fanout everywhere."""
        group = MulticastGroup.build(
            SystemKind.CHORD, bandwidths(300), per_link_kbps=100,
            space_bits=12, uniform_fanout=4, seed=3,
        )
        tree = group.multicast_from(group.random_member(Random(1)))
        assert max(tree.children_counts().values()) <= 4

    def test_non_member_source_rejected(self):
        group = MulticastGroup.build(
            SystemKind.CAM_CHORD, bandwidths(10), per_link_kbps=100, space_bits=12
        )
        from repro.overlay.base import Node

        with pytest.raises(KeyError):
            group.multicast_from(Node(ident=1, capacity=4))

    def test_lookup_delegates(self):
        group = MulticastGroup.build(
            SystemKind.CAM_CHORD, bandwidths(40), per_link_kbps=100, space_bits=12
        )
        start = group.random_member(Random(2))
        result = group.lookup(start, 123)
        assert result.responsible.ident == group.snapshot.resolve(123).ident
