"""CAM-Koorde overlay: neighbor groups and ps-common-bit lookup."""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.cam_koorde import (
    CamKoordeOverlay,
    cam_koorde_neighbor_groups,
)
from tests.conftest import make_snapshot, random_snapshot


class TestNeighborGroups:
    def test_basic_group_shift_identifiers(self):
        groups = cam_koorde_neighbor_groups(0b100100, 4, 6)
        # x/2 and 2^(b-1) + x/2
        assert groups.basic_shift == (0b010010, 0b110010)

    def test_identifier_count_matches_capacity_minus_ring_links(self):
        """de Bruijn identifiers = capacity - 2 (pred/succ are the rest)."""
        for capacity in range(4, 40):
            groups = cam_koorde_neighbor_groups(36, capacity, 12)
            assert len(groups.all_identifiers()) == capacity - 2

    def test_second_group_even_spread(self):
        """Second-group identifiers are spaced N / t apart on the ring."""
        groups = cam_koorde_neighbor_groups(36, 10, 6)
        second = sorted(groups.second)
        gaps = {second[i + 1] - second[i] for i in range(len(second) - 1)}
        assert gaps == {64 // 4}

    def test_identifiers_in_space(self):
        for capacity in (4, 5, 8, 16, 33, 100):
            groups = cam_koorde_neighbor_groups(123, capacity, 10)
            assert all(0 <= i < 1024 for i in groups.all_identifiers())

    def test_validation(self):
        with pytest.raises(ValueError):
            cam_koorde_neighbor_groups(0, 3, 6)
        with pytest.raises(ValueError, match="outside"):
            cam_koorde_neighbor_groups(64, 4, 6)
        with pytest.raises(ValueError):
            cam_koorde_neighbor_groups(0, 4, 1)

    def test_huge_capacity_does_not_overflow_shifts(self):
        # capacity larger than the space width must still stay in-ring.
        groups = cam_koorde_neighbor_groups(5, 300, 8)
        assert all(0 <= i < 256 for i in groups.all_identifiers())


class TestOverlay:
    def test_rejects_capacity_below_four(self):
        snap = make_snapshot(6, [0, 10], capacity=3)
        with pytest.raises(ValueError, match="capacity >= 4"):
            CamKoordeOverlay(snap)

    def test_neighbor_count_at_most_capacity(self):
        snap = random_snapshot(12, 80, seed=2, capacity_range=(4, 20))
        overlay = CamKoordeOverlay(snap)
        for node in snap:
            assert len(overlay.neighbors(node)) <= node.capacity

    def test_ring_links_always_present(self):
        snap = random_snapshot(12, 80, seed=3)
        overlay = CamKoordeOverlay(snap)
        for node in snap:
            idents = {n.ident for n in overlay.neighbors(node)}
            assert snap.predecessor(node).ident in idents
            assert snap.successor(node).ident in idents

    def test_neighbor_spread_beats_koorde(self):
        """CAM-Koorde neighbors should scatter over the whole ring: the
        de Bruijn identifiers differ in their high-order bits."""
        groups = cam_koorde_neighbor_groups(1000, 12, 19)
        idents = sorted(groups.all_identifiers())
        span = idents[-1] - idents[0]
        assert span > (1 << 19) // 2  # covers more than half the ring


class TestLookup:
    def test_every_key_small_ring(self):
        snap = make_snapshot(6, [1, 4, 9, 12, 18, 21, 25, 30, 35, 36], capacity=5)
        overlay = CamKoordeOverlay(snap)
        for start in snap:
            for key in range(64):
                result = overlay.lookup(start, key)
                assert result.responsible.ident == snap.resolve(key).ident

    def test_figure4_topology_lookup(self, figure4_snapshot):
        overlay = CamKoordeOverlay(figure4_snapshot)
        for start in figure4_snapshot:
            for key in range(64):
                result = overlay.lookup(start, key)
                assert result.responsible.ident == figure4_snapshot.resolve(key).ident

    def test_single_node(self):
        snap = make_snapshot(6, [9], capacity=4)
        overlay = CamKoordeOverlay(snap)
        assert overlay.lookup(snap.node_at(9), 50).responsible.ident == 9

    def test_hop_count_reasonable(self):
        """Theorem 5 scaling sanity: hops stay near log n / log c."""
        rng = Random(7)
        snap = random_snapshot(19, 2000, seed=7, capacity_range=(8, 8))
        overlay = CamKoordeOverlay(snap)
        hops = []
        for _ in range(200):
            start = snap.random_node(rng)
            key = rng.randrange(2**19)
            hops.append(overlay.lookup(start, key).hops)
        mean = sum(hops) / len(hops)
        assert mean <= 25  # log2(2000) ~ 11; allow generous slack


@settings(max_examples=40, deadline=None)
@given(
    idents=st.sets(st.integers(min_value=0, max_value=1023), min_size=2, max_size=60),
    capacity=st.integers(min_value=4, max_value=16),
    key=st.integers(min_value=0, max_value=1023),
    start_index=st.integers(min_value=0),
)
def test_lookup_always_finds_responsible(idents, capacity, key, start_index):
    snap = make_snapshot(10, sorted(idents), capacity=capacity)
    overlay = CamKoordeOverlay(snap)
    start = snap.nodes[start_index % len(snap.nodes)]
    result = overlay.lookup(start, key)
    assert result.responsible.ident == snap.resolve(key).ident
