"""Tests for tree statistics, throughput and load metrics."""

from __future__ import annotations

import pytest

from repro.metrics.load import flooding_load, single_tree_load
from repro.metrics.throughput import (
    allocated_link_bandwidths,
    average_children_per_internal_node,
    sustainable_throughput,
)
from repro.metrics.tree_stats import summarize_tree
from repro.multicast.delivery import DuplicateDeliveryError, MulticastResult
from tests.conftest import make_snapshot


def star_tree(center: int, leaves: list[int]) -> MulticastResult:
    result = MulticastResult(source_ident=center)
    for leaf in leaves:
        result.record_delivery(leaf, center)
    return result


def chain_tree(idents: list[int]) -> MulticastResult:
    result = MulticastResult(source_ident=idents[0])
    for parent, child in zip(idents, idents[1:]):
        result.record_delivery(child, parent)
    return result


class TestMulticastResult:
    def test_source_recorded_at_depth_zero(self):
        result = MulticastResult(source_ident=5)
        assert result.depth[5] == 0
        assert result.parent[5] is None
        assert result.receiver_count == 1

    def test_duplicate_delivery_raises(self):
        result = star_tree(0, [1, 2])
        with pytest.raises(DuplicateDeliveryError):
            result.record_delivery(1, 2)

    def test_forward_before_receive_rejected(self):
        result = MulticastResult(source_ident=0)
        with pytest.raises(ValueError, match="before receiving"):
            result.record_delivery(5, 99)

    def test_path_to_source(self):
        result = chain_tree([1, 2, 3, 4])
        assert result.path_to_source(4) == [4, 3, 2, 1]
        assert result.path_to_source(1) == [1]
        with pytest.raises(KeyError):
            result.path_to_source(9)

    def test_histogram_and_averages(self):
        result = chain_tree([1, 2, 3])
        assert result.path_length_histogram() == {0: 1, 1: 1, 2: 1}
        assert result.average_path_length() == 1.5
        assert result.max_path_length() == 2

    def test_average_path_single_node(self):
        result = MulticastResult(source_ident=3)
        assert result.average_path_length() == 0.0

    def test_verify_exactly_once_missing(self):
        result = star_tree(0, [1])
        with pytest.raises(AssertionError, match="never received"):
            result.verify_exactly_once({0, 1, 2})

    def test_verify_exactly_once_extra(self):
        result = star_tree(0, [1, 9])
        with pytest.raises(AssertionError, match="non-members"):
            result.verify_exactly_once({0, 1})


class TestTreeStats:
    def test_star(self):
        stats = summarize_tree(star_tree(0, [1, 2, 3]))
        assert stats.receivers == 4
        assert stats.internal_count == 1
        assert stats.leaf_count == 3
        assert stats.average_children == 3
        assert stats.max_children == 3
        assert stats.max_path_length == 1
        assert stats.histogram == {0: 1, 1: 3}
        assert stats.coverage_complete(4)
        assert not stats.coverage_complete(5)

    def test_chain(self):
        stats = summarize_tree(chain_tree([0, 1, 2, 3]))
        assert stats.internal_count == 3
        assert stats.average_children == 1
        assert stats.average_path_length == 2.0

    def test_single_node(self):
        stats = summarize_tree(MulticastResult(source_ident=0))
        assert stats.internal_count == 0
        assert stats.average_children == 0.0
        assert stats.max_children == 0


class TestThroughput:
    def test_allocations(self):
        snap = make_snapshot(8, [0, 10, 20, 30], capacity=4,
                             bandwidth=[800.0, 600.0, 500.0, 400.0])
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        tree.record_delivery(20, 0)
        tree.record_delivery(30, 10)
        allocations = allocated_link_bandwidths(tree, snap)
        assert allocations == {0: 400.0, 10: 600.0}
        assert sustainable_throughput(tree, snap) == 400.0

    def test_missing_bandwidth_rejected(self):
        snap = make_snapshot(8, [0, 10], capacity=4)
        tree = star_tree(0, [10])
        with pytest.raises(ValueError, match="no bandwidth"):
            sustainable_throughput(tree, snap)

    def test_single_node_session(self):
        snap = make_snapshot(8, [0], capacity=4, bandwidth=750.0)
        tree = MulticastResult(source_ident=0)
        assert sustainable_throughput(tree, snap) == 750.0

    def test_average_children(self):
        assert average_children_per_internal_node(star_tree(0, [1, 2])) == 2
        assert average_children_per_internal_node(chain_tree([0, 1, 2])) == 1
        assert (
            average_children_per_internal_node(MulticastResult(source_ident=0)) == 0.0
        )


class TestForwardingLoad:
    def test_flooding_aggregates_across_sources(self):
        trees = [star_tree(0, [1, 2]), star_tree(1, [0, 2])]
        load = flooding_load(trees, message_kbits=2.0)
        assert load.per_node[0] == 4.0  # 2 children in tree 1
        assert load.per_node[1] == 4.0
        assert load.per_node[2] == 0.0
        assert load.total == 8.0
        assert load.idle_fraction == pytest.approx(1 / 3)

    def test_single_tree_concentrates(self):
        tree = star_tree(0, [1, 2, 3])
        load = single_tree_load(tree, message_count=10, message_kbits=1.0)
        assert load.per_node[0] == 30.0
        assert load.per_node[1] == 0.0
        assert load.idle_fraction == 0.75
        assert load.max_over_mean == 4.0

    def test_single_tree_validation(self):
        with pytest.raises(ValueError):
            single_tree_load(star_tree(0, [1]), message_count=-1)

    def test_empty_load(self):
        load = flooding_load([], message_kbits=1.0)
        assert load.mean == 0.0
        assert load.max_over_mean == 0.0
        assert load.coefficient_of_variation == 0.0
        assert load.idle_fraction == 0.0

    def test_coefficient_of_variation_uniform_is_zero(self):
        trees = [chain_tree([0, 1, 2, 3])]
        load = flooding_load(trees)
        internal_only = {k: v for k, v in load.per_node.items() if v > 0}
        assert len(set(internal_only.values())) == 1
