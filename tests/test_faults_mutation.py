"""Mutation tests: prove the oracles detect a deliberately broken peer.

A campaign that always passes could be vacuous.  Here duplicate
suppression is broken in a test-local :class:`CamChordPeer` subclass —
every region handoff passes the *parent's* full limit instead of the
disjoint sublimit, so child spans overlap and members receive the
message more than once.  The campaign must detect it (duplicates
oracle), the shrinker must minimize the scenario to at most three
fault events, and the minimized repro must replay the identical
violation set through ``python -m repro.faults replay``.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import generate_plan, run_plan, save_plan, shrink_plan
from repro.faults.__main__ import main as faults_main
from repro.multicast.cam_chord import select_child_regions
from repro.protocol.cam_chord_peer import CamChordPeer
from tests.conftest import assert_plan_deterministic

#: importable reference for the replay CLI's --peer-class hook
MUTANT_REF = "tests.test_faults_mutation:OverlappingRegionPeer"


class OverlappingRegionPeer(CamChordPeer):
    """CAM-Chord with broken duplicate suppression.

    The correct ``_forward_region`` hands each child a *disjoint*
    sublimit — the region-splitting invariant that makes the implicit
    tree exactly-once.  This mutant hands every child the parent's full
    limit, so sibling spans overlap and the same members are reached
    along several paths.  Receivers still dedupe (delivery stays
    correct and the recursion terminates, since a handed-off region
    strictly shrinks), but the monitor records every redundant arrival
    — precisely what the duplicates oracle must flag on a tree system.
    """

    def _forward_region(self, message_id: int, limit: int, depth: int) -> None:
        children = select_child_regions(
            self.ident,
            self.capacity,
            self.space.bits,
            limit,
            self._slot_resolver,
        )
        for child, _sublimit in children:
            self.network.send(
                self.ident,
                child,
                "mc_region",
                {"mid": message_id, "limit": limit, "depth": depth + 1},
            )


def _first_failing_plan():
    """The first generated cam-chord plan the mutant fails on."""
    for index in range(10):
        plan = generate_plan("cam-chord", index, campaign_seed=0)
        outcome = run_plan(plan, peer_class=OverlappingRegionPeer)
        if not outcome.passed:
            return plan, outcome
    pytest.fail("mutant survived 10 generated plans — the oracles are toothless")


def test_campaign_detects_broken_duplicate_suppression():
    plan, outcome = _first_failing_plan()
    oracles = {violation.oracle for violation in outcome.violations}
    assert "duplicates" in oracles, (
        f"expected the duplicates oracle to fire, got {oracles}"
    )
    detail = next(
        v for v in outcome.violations if v.oracle == "duplicates"
    )
    assert detail.members, "a duplicates violation must name the members hit"


def test_mutant_shrinks_to_minimal_replayable_scenario(tmp_path):
    plan, _ = _first_failing_plan()
    minimized, final = shrink_plan(
        plan, runner=lambda p: run_plan(p, peer_class=OverlappingRegionPeer)
    )
    # The duplicates bug needs no faults at all — a single multicast on
    # a healthy ring exhibits it — so the shrinker must strip the
    # schedule to (nearly) nothing.
    assert len(minimized.events) <= 3
    assert minimized.multicasts == 1
    assert minimized.size <= plan.size
    assert any(v.oracle == "duplicates" for v in final.violations)

    # The minimized repro replays deterministically.
    replayed = assert_plan_deterministic(minimized, peer_class=OverlappingRegionPeer)
    assert replayed.violations == final.violations


def test_replay_cli_reproduces_the_mutant_violations(tmp_path, capsys):
    """`python -m repro.faults replay` on the minimized scenario exits 1
    with byte-identical output on every invocation."""
    plan, _ = _first_failing_plan()
    minimized, final = shrink_plan(
        plan, runner=lambda p: run_plan(p, peer_class=OverlappingRegionPeer)
    )
    path = tmp_path / "minimal.json"
    save_plan(
        minimized, str(path), extra={"violations": [str(v) for v in final.violations]}
    )
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["meta"]["violations"]

    exit_first = faults_main(["replay", str(path), "--peer-class", MUTANT_REF])
    out_first = capsys.readouterr().out
    exit_second = faults_main(["replay", str(path), "--peer-class", MUTANT_REF])
    out_second = capsys.readouterr().out
    assert exit_first == exit_second == 1
    assert out_first == out_second
    assert "duplicates" in out_first

    # and the unmutated peer passes the very same scenario
    exit_clean = faults_main(["replay", str(path)])
    out_clean = capsys.readouterr().out
    assert exit_clean == 0
    assert "ok" in out_clean
