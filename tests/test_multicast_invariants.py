"""Property tests for the headline multicast invariants.

Section 3.4: the recursive execution "makes sure that every member node
will receive one and only one copy of the message", and "the outdegree
of each intermediate node in a tree does not exceed its capacity".
These must hold for *every* membership, *every* capacity assignment and
*every* source — exactly what hypothesis is for.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.cam_koorde import cam_koorde_multicast
from repro.multicast.chord_broadcast import chord_broadcast
from repro.multicast.koorde_flood import koorde_flood
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.koorde import KoordeOverlay
from tests.conftest import make_snapshot

memberships = st.sets(st.integers(min_value=0, max_value=1023), min_size=1, max_size=80)


def build_capacities(draw_caps: list[int], count: int, floor: int) -> list[int]:
    """Cycle the drawn capacities over the member count."""
    return [max(floor, draw_caps[i % len(draw_caps)]) for i in range(count)]


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    caps=st.lists(st.integers(min_value=2, max_value=30), min_size=1, max_size=8),
    source_index=st.integers(min_value=0),
)
def test_cam_chord_exactly_once_and_capacity_bound(idents, caps, source_index):
    ordered = sorted(idents)
    capacities = build_capacities(caps, len(ordered), floor=2)
    snap = make_snapshot(10, ordered, capacity=capacities)
    overlay = CamChordOverlay(snap)
    source = snap.nodes[source_index % len(snap.nodes)]
    result = cam_chord_multicast(overlay, source)
    result.verify_exactly_once(set(ordered))
    for ident, count in result.children_counts().items():
        assert count <= snap.node_at(ident).capacity


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    caps=st.lists(st.integers(min_value=4, max_value=30), min_size=1, max_size=8),
    source_index=st.integers(min_value=0),
)
def test_cam_koorde_exactly_once_and_capacity_bound(idents, caps, source_index):
    ordered = sorted(idents)
    capacities = build_capacities(caps, len(ordered), floor=4)
    snap = make_snapshot(10, ordered, capacity=capacities)
    overlay = CamKoordeOverlay(snap)
    source = snap.nodes[source_index % len(snap.nodes)]
    result = cam_koorde_multicast(overlay, source)
    result.verify_exactly_once(set(ordered))
    for ident, count in result.children_counts().items():
        # a node forwards to at most its neighbors (= capacity links)
        assert count <= snap.node_at(ident).capacity


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    base=st.integers(min_value=2, max_value=16),
    source_index=st.integers(min_value=0),
)
def test_chord_broadcast_exactly_once(idents, base, source_index):
    ordered = sorted(idents)
    snap = make_snapshot(10, ordered, capacity=2)
    overlay = ChordOverlay(snap, base=base)
    source = snap.nodes[source_index % len(snap.nodes)]
    result = chord_broadcast(overlay, source)
    result.verify_exactly_once(set(ordered))


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    degree=st.sampled_from([2, 3, 4, 8, 16]),
    source_index=st.integers(min_value=0),
)
def test_koorde_flood_exactly_once(idents, degree, source_index):
    ordered = sorted(idents)
    snap = make_snapshot(10, ordered, capacity=2)
    overlay = KoordeOverlay(snap, degree=degree)
    source = snap.nodes[source_index % len(snap.nodes)]
    result = koorde_flood(overlay, source)
    result.verify_exactly_once(set(ordered))


@settings(max_examples=40, deadline=None)
@given(
    idents=st.sets(st.integers(min_value=0, max_value=1023), min_size=2, max_size=60),
    caps=st.lists(st.integers(min_value=2, max_value=20), min_size=1, max_size=6),
)
def test_cam_chord_all_sources_cover_everyone(idents, caps):
    """Any-source multicast: the invariant holds from every root."""
    ordered = sorted(idents)
    capacities = build_capacities(caps, len(ordered), floor=2)
    snap = make_snapshot(10, ordered, capacity=capacities)
    overlay = CamChordOverlay(snap)
    members = set(ordered)
    for source in snap.nodes:
        cam_chord_multicast(overlay, source).verify_exactly_once(members)


@settings(max_examples=40, deadline=None)
@given(
    idents=st.sets(st.integers(min_value=0, max_value=1023), min_size=2, max_size=60),
)
def test_cam_chord_depths_consistent_with_parents(idents):
    ordered = sorted(idents)
    snap = make_snapshot(10, ordered, capacity=3)
    overlay = CamChordOverlay(snap)
    result = cam_chord_multicast(overlay, snap.nodes[0])
    for ident, parent in result.parent.items():
        if parent is None:
            assert result.depth[ident] == 0
        else:
            assert result.depth[ident] == result.depth[parent] + 1
