"""Property tests for the optimized snapshot hot paths.

``resolve_index`` / ``nodes_in_segment`` / ``without`` / ``with_nodes``
were rewritten around the compact identifier array; each is checked
here against a brute-force reference on randomly generated rings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idspace.ring import IdentifierSpace
from repro.overlay.base import Node, RingSnapshot
from tests.conftest import make_snapshot

BITS = st.integers(min_value=3, max_value=10)


def ring(data, bits: int, min_size: int = 1) -> RingSnapshot:
    size = 1 << bits
    idents = data.draw(
        st.sets(st.integers(0, size - 1), min_size=min_size, max_size=32)
    )
    return make_snapshot(bits, sorted(idents))


def naive_resolve(snap: RingSnapshot, ident: int, size: int) -> Node:
    """Reference x-hat: first node clockwise at or after the identifier."""
    target = ident % size
    for node in snap.nodes:
        if node.ident >= target:
            return node
    return snap.nodes[0]


def naive_segment(
    snap: RingSnapshot, x: int, y: int, size: int, limit: int | None
) -> list[Node]:
    """Reference (x, y] walk: step the ring one identifier at a time."""
    if limit is not None and limit <= 0:
        return []
    out: list[Node] = []
    for step in range(1, ((y - x) % size) + 1):
        ident = (x + step) % size
        if ident in snap:
            out.append(snap.node_at(ident))
            if limit is not None and len(out) == limit:
                break
    return out


class TestResolveIndex:
    @settings(max_examples=80, deadline=None)
    @given(bits=BITS, data=st.data())
    def test_matches_naive_resolution(self, bits, data):
        snap = ring(data, bits)
        size = 1 << bits
        probe = data.draw(st.integers(min_value=-size, max_value=2 * size))
        index = snap.resolve_index(probe)
        assert snap.resolve(probe) is snap.nodes[index]
        assert snap.nodes[index] is naive_resolve(snap, probe, size)

    def test_identifiers_property_is_ring_order(self):
        snap = make_snapshot(5, [29, 4, 13, 0])
        assert list(snap.identifiers) == [0, 4, 13, 29]


class TestNodesInSegment:
    @settings(max_examples=80, deadline=None)
    @given(bits=BITS, data=st.data())
    def test_matches_naive_walk(self, bits, data):
        snap = ring(data, bits)
        size = 1 << bits
        x = data.draw(st.integers(0, size - 1))
        y = data.draw(st.integers(0, size - 1))
        limit = data.draw(st.one_of(st.none(), st.integers(0, 8)))
        assert snap.nodes_in_segment(x, y, limit) == naive_segment(
            snap, x, y, size, limit
        )

    def test_unlimited_scan_stops_after_one_wrap(self):
        """limit=None over an almost-full wrap returns every other member
        exactly once — the scan is bounded by construction, not by limit."""
        snap = make_snapshot(5, [0, 4, 8, 13, 18, 21, 26, 29])
        members = snap.nodes_in_segment(4, 3, limit=None)
        assert [node.ident for node in members] == [8, 13, 18, 21, 26, 29, 0]

    def test_single_node_full_wrap(self):
        snap = make_snapshot(5, [7])
        # (6, 5] walks the whole ring bar 6 and finds the lone member ...
        assert snap.nodes_in_segment(6, 5, limit=None) == [snap.node_at(7)]
        # ... while (7, 6] excludes 7 itself, and a zero span is empty.
        assert snap.nodes_in_segment(7, 6, limit=None) == []
        assert snap.nodes_in_segment(7, 7, limit=None) == []


class TestDerivedSnapshots:
    @settings(max_examples=60, deadline=None)
    @given(bits=BITS, data=st.data())
    def test_with_nodes_equals_fresh_build(self, bits, data):
        size = 1 << bits
        base_idents = data.draw(
            st.sets(st.integers(0, size - 1), min_size=1, max_size=24)
        )
        extra_idents = data.draw(
            st.sets(
                st.integers(0, size - 1).filter(lambda i: i not in base_idents),
                max_size=12,
            )
        )
        base = make_snapshot(bits, sorted(base_idents))
        grown = base.with_nodes(Node(ident=i, capacity=3) for i in extra_idents)
        fresh = make_snapshot(bits, sorted(base_idents | extra_idents))
        assert list(grown.identifiers) == list(fresh.identifiers)

    @settings(max_examples=60, deadline=None)
    @given(bits=BITS, data=st.data())
    def test_without_equals_fresh_build(self, bits, data):
        size = 1 << bits
        idents = data.draw(st.sets(st.integers(0, size - 1), min_size=2, max_size=24))
        doomed = data.draw(
            st.sets(st.sampled_from(sorted(idents)), max_size=len(idents) - 1)
        )
        snap = make_snapshot(bits, sorted(idents))
        shrunk = snap.without(doomed)
        fresh = make_snapshot(bits, sorted(idents - doomed))
        assert list(shrunk.identifiers) == list(fresh.identifiers)

    def test_with_nodes_rejects_duplicates_anywhere(self):
        snap = make_snapshot(5, [4, 9])
        with pytest.raises(ValueError, match="duplicate"):
            snap.with_nodes([Node(ident=9, capacity=3)])
        with pytest.raises(ValueError, match="duplicate"):
            snap.with_nodes([Node(ident=2, capacity=3), Node(ident=2, capacity=3)])
        with pytest.raises(ValueError, match="outside"):
            snap.with_nodes([Node(ident=99, capacity=3)])

    def test_from_sorted_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one node"):
            RingSnapshot._from_sorted(IdentifierSpace(5), [])
