"""Plain Koorde baseline: de Bruijn pointers and digit-injection lookup."""

from __future__ import annotations

import math
from random import Random

import pytest

from repro.overlay.koorde import KoordeOverlay
from tests.conftest import make_snapshot, random_snapshot


class TestNeighbors:
    def test_left_shift_identifiers(self):
        snap = make_snapshot(6, [5, 36, 50], capacity=4)
        overlay = KoordeOverlay(snap, degree=2)
        # 2 * 36 mod 64 = 8 and 9
        assert overlay.neighbor_identifiers(snap.node_at(36)) == [8, 9]

    def test_neighbors_cluster_on_ring(self):
        """The defining contrast with CAM-Koorde: Koorde's de Bruijn
        identifiers are consecutive (differ only in low bits)."""
        snap = make_snapshot(19, [1000, 5000], capacity=4)
        overlay = KoordeOverlay(snap, degree=8)
        idents = sorted(overlay.neighbor_identifiers(snap.node_at(1000)))
        assert idents[-1] - idents[0] == 7  # 8 consecutive identifiers

    def test_ring_links_included(self):
        snap = random_snapshot(10, 40, seed=5)
        overlay = KoordeOverlay(snap, degree=2)
        for node in snap:
            idents = {n.ident for n in overlay.neighbors(node)}
            assert snap.predecessor(node).ident in idents
            assert snap.successor(node).ident in idents

    def test_validation(self):
        snap = make_snapshot(6, [0], capacity=4)
        with pytest.raises(ValueError):
            KoordeOverlay(snap, degree=1)


class TestLookup:
    def test_every_key_every_start(self):
        snap = make_snapshot(7, [0, 5, 17, 40, 41, 90, 100, 127], capacity=2)
        for degree in (2, 4, 8):
            overlay = KoordeOverlay(snap, degree=degree)
            for start in snap:
                for key in range(128):
                    result = overlay.lookup(start, key)
                    assert result.responsible.ident == snap.resolve(key).ident

    def test_non_power_of_two_lookup_rejected(self):
        snap = make_snapshot(7, [0, 5, 17], capacity=2)
        overlay = KoordeOverlay(snap, degree=3)
        # key 6 is not answerable from node 0's local ring links, so the
        # lookup must actually route — which degree 3 cannot do.
        with pytest.raises(ValueError, match="power-of-two"):
            overlay.lookup(snap.node_at(0), 6)

    def test_single_node(self):
        snap = make_snapshot(6, [9], capacity=4)
        overlay = KoordeOverlay(snap, degree=2)
        assert overlay.lookup(snap.node_at(9), 3).responsible.ident == 9

    def test_hops_scale_with_degree(self):
        """Higher de Bruijn degree means fewer digit injections."""
        rng = Random(13)
        snap = random_snapshot(19, 3000, seed=13)
        means = {}
        for degree in (2, 16):
            overlay = KoordeOverlay(snap, degree=degree)
            hops = []
            for _ in range(200):
                start = snap.random_node(rng)
                key = rng.randrange(2**19)
                hops.append(overlay.lookup(start, key).hops)
            means[degree] = sum(hops) / len(hops)
        assert means[16] < means[2]
        assert means[2] <= 2.5 * math.log2(3000)
