"""The paper's worked examples, encoded exactly.

Figures 1-5 of the paper are small hand-traceable topologies.  These
tests pin our implementation to them:

* Figure 2 — CAM-Chord neighbors of x (N=32, c_x=3, 8 nodes);
* Section 3.2 example — the lookup for x+25 routed via x+18 to x+26;
* Figure 3 — the implicit CAM-Chord multicast tree rooted at x;
* Figure 4 — CAM-Koorde neighbor groups of node 36 (N=64, c=10);
* Figure 5 — the implicit CAM-Koorde flood tree rooted at 36.
"""

from __future__ import annotations

import pytest

from repro.multicast.cam_chord import cam_chord_multicast, select_children
from repro.multicast.cam_koorde import cam_koorde_multicast
from repro.overlay.cam_chord import CamChordOverlay, level_and_sequence
from repro.overlay.cam_koorde import CamKoordeOverlay, cam_koorde_neighbor_groups


class TestFigure2Neighbors:
    """Neighbors of x with N = [0..31] and c_x = 3 (x taken as 0)."""

    def test_resolved_neighbor_set(self, figure2_snapshot):
        overlay = CamChordOverlay(figure2_snapshot)
        x = figure2_snapshot.node_at(0)
        neighbors = {n.ident for n in overlay.neighbors(x)}
        assert neighbors == {4, 8, 13, 18, 29}

    def test_neighbor_identifier_aliases(self, figure2_snapshot):
        """x_{0,1}, x_{0,2} and x_{1,1} all resolve to node x+4."""
        overlay = CamChordOverlay(figure2_snapshot)
        x = figure2_snapshot.node_at(0)
        snap = figure2_snapshot
        assert snap.resolve(overlay.neighbor_identifier(x, 0, 1)).ident == 4
        assert snap.resolve(overlay.neighbor_identifier(x, 0, 2)).ident == 4
        assert snap.resolve(overlay.neighbor_identifier(x, 1, 1)).ident == 4
        assert snap.resolve(overlay.neighbor_identifier(x, 1, 2)).ident == 8
        assert snap.resolve(overlay.neighbor_identifier(x, 2, 1)).ident == 13
        assert snap.resolve(overlay.neighbor_identifier(x, 2, 2)).ident == 18
        assert snap.resolve(overlay.neighbor_identifier(x, 3, 1)).ident == 29

    def test_neighbor_identifiers_match_formula(self, figure2_snapshot):
        overlay = CamChordOverlay(figure2_snapshot)
        x = figure2_snapshot.node_at(0)
        # j * 3**i for j in {1,2}, i in {0,1,2} plus 27 (level 3, j=1).
        assert sorted(overlay.neighbor_identifiers(x)) == [1, 2, 3, 6, 9, 18, 27]


class TestSection32LookupExample:
    """x looks up identifier x+25: forwarded to x+18, answered x+26."""

    def test_lookup_route(self, figure2_snapshot):
        overlay = CamChordOverlay(figure2_snapshot)
        x = figure2_snapshot.node_at(0)
        result = overlay.lookup(x, 25)
        assert result.responsible.ident == 26
        assert [n.ident for n in result.path] == [0, 18, 26]
        assert result.hops == 1  # one forward (to x+18), answered there

    def test_level_and_sequence_of_example(self):
        # "The level and the sequence number of identifier x+25 are both
        # 2 with respect to x" (c_x = 3).
        assert level_and_sequence(25, 3) == (2, 2)
        # "The level and the sequence number of identifier x+25 are 1
        # and 2 with respect to x+18" (distance 7).
        assert level_and_sequence(7, 3) == (1, 2)


class TestFigure3MulticastTree:
    """The implicit tree rooted at x (Figure 3)."""

    def test_exact_tree(self, figure2_snapshot):
        overlay = CamChordOverlay(figure2_snapshot)
        x = figure2_snapshot.node_at(0)
        result = cam_chord_multicast(overlay, x)
        children: dict[int, set[int]] = {}
        for child, parent in result.parent.items():
            if parent is not None:
                children.setdefault(parent, set()).add(child)
        assert children[0] == {4, 18, 29}
        assert children[4] == {8, 13}
        assert children[18] == {21, 26}
        assert set(children) == {0, 4, 18}  # everyone else is a leaf

    def test_root_child_regions(self, figure2_snapshot):
        """x forwards to x+29 with (x+29, x+31], to x+18 with
        (x+18, x+26], and to x+4 with (x+4, x+17]."""
        overlay = CamChordOverlay(figure2_snapshot)
        x = figure2_snapshot.node_at(0)
        selections = select_children(overlay, x, 31)
        as_pairs = [(child.ident, limit) for child, limit in selections]
        assert as_pairs == [(29, 31), (18, 26), (4, 17)]

    def test_exactly_once(self, figure2_snapshot):
        overlay = CamChordOverlay(figure2_snapshot)
        x = figure2_snapshot.node_at(0)
        result = cam_chord_multicast(overlay, x)
        result.verify_exactly_once({n.ident for n in figure2_snapshot})

    def test_depths(self, figure2_snapshot):
        overlay = CamChordOverlay(figure2_snapshot)
        result = cam_chord_multicast(overlay, figure2_snapshot.node_at(0))
        assert result.depth[0] == 0
        assert result.depth[4] == result.depth[18] == result.depth[29] == 1
        assert (
            result.depth[8]
            == result.depth[13]
            == result.depth[21]
            == result.depth[26]
            == 2
        )


class TestFigure4NeighborGroups:
    """CAM-Koorde neighbors of node 36 (100100), capacity 10, N=64."""

    def test_identifier_groups(self):
        groups = cam_koorde_neighbor_groups(36, 10, 6)
        assert set(groups.basic_shift) == {18, 50}
        assert set(groups.second) == {9, 25, 41, 57}
        assert set(groups.third) == {4, 12}

    def test_resolved_neighbors(self, figure4_snapshot):
        overlay = CamKoordeOverlay(figure4_snapshot)
        node36 = figure4_snapshot.node_at(36)
        neighbors = {n.ident for n in overlay.neighbors(node36)}
        # basic: pred 35, succ 37, 18, 50; second: 9,25,41,57; third: 4,12
        assert neighbors == {35, 37, 18, 50, 9, 25, 41, 57, 4, 12}

    def test_capacity_equals_neighbor_count(self, figure4_snapshot):
        overlay = CamKoordeOverlay(figure4_snapshot)
        node36 = figure4_snapshot.node_at(36)
        assert len(overlay.neighbors(node36)) == node36.capacity

    def test_minimum_capacity_enforced(self):
        with pytest.raises(ValueError, match="capacity >= 4"):
            cam_koorde_neighbor_groups(36, 3, 6)

    def test_capacity_exactly_four_has_only_basic(self):
        groups = cam_koorde_neighbor_groups(36, 4, 6)
        assert groups.second == ()
        assert groups.third == ()

    def test_small_extra_capacities(self):
        # c=5: r=1, s=0 -> t=0, third group {x/2} duplicates basic.
        groups5 = cam_koorde_neighbor_groups(36, 5, 6)
        assert groups5.second == ()
        assert groups5.third == (18,)
        # c=6: r=2, s=1 -> t=0, third shift s'=2.
        groups6 = cam_koorde_neighbor_groups(36, 6, 6)
        assert groups6.second == ()
        assert groups6.third == (9, 25)
        # c=8: r=4, s=2 -> t=4 second-group entries, none left for third.
        groups8 = cam_koorde_neighbor_groups(36, 8, 6)
        assert groups8.second == (9, 25, 41, 57)
        assert groups8.third == ()


class TestFigure5FloodTree:
    """The implicit flood tree rooted at node 36 (all capacities 10)."""

    def test_first_hop_is_all_neighbors(self, figure4_snapshot):
        overlay = CamKoordeOverlay(figure4_snapshot)
        result = cam_koorde_multicast(overlay, figure4_snapshot.node_at(36))
        depth1 = {ident for ident, d in result.depth.items() if d == 1}
        assert depth1 == {9, 12, 18, 25, 35, 37, 41, 50, 57, 4}

    def test_remaining_nodes_reached_in_two_hops(self, figure4_snapshot):
        overlay = CamKoordeOverlay(figure4_snapshot)
        result = cam_koorde_multicast(overlay, figure4_snapshot.node_at(36))
        depth2 = {ident for ident, d in result.depth.items() if d == 2}
        assert depth2 == {1, 21, 30, 46, 61}
        assert result.max_path_length() == 2

    def test_exactly_once(self, figure4_snapshot):
        overlay = CamKoordeOverlay(figure4_snapshot)
        result = cam_koorde_multicast(overlay, figure4_snapshot.node_at(36))
        result.verify_exactly_once({n.ident for n in figure4_snapshot})
