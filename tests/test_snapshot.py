"""Tests for the membership snapshot (resolution, neighbors, churn ops)."""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idspace.ring import IdentifierSpace
from repro.overlay.base import Node, RingSnapshot, build_snapshot
from tests.conftest import make_snapshot


class TestNode:
    def test_validation(self):
        with pytest.raises(ValueError):
            Node(ident=-1, capacity=3)
        with pytest.raises(ValueError):
            Node(ident=0, capacity=0)
        with pytest.raises(ValueError):
            Node(ident=0, capacity=1, bandwidth_kbps=-5)

    def test_repr_compact(self):
        assert repr(Node(ident=7, capacity=3)) == "Node(7, c=3)"


class TestRingSnapshot:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RingSnapshot(IdentifierSpace(5), [])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_snapshot(5, [3, 3])

    def test_rejects_out_of_space(self):
        with pytest.raises(ValueError, match="outside"):
            make_snapshot(5, [40])

    def test_resolution_basics(self, figure2_snapshot):
        snap = figure2_snapshot
        # x-hat: the node itself when it exists ...
        assert snap.resolve(4).ident == 4
        # ... otherwise the successor of the identifier.
        assert snap.resolve(5).ident == 8
        assert snap.resolve(27).ident == 29
        # wraparound past the top of the space
        assert snap.resolve(30).ident == 0
        assert snap.resolve(31).ident == 0

    def test_successor_predecessor(self, figure2_snapshot):
        snap = figure2_snapshot
        node0 = snap.node_at(0)
        assert snap.successor(node0).ident == 4
        assert snap.predecessor(node0).ident == 29
        node29 = snap.node_at(29)
        assert snap.successor(node29).ident == 0
        assert snap.predecessor(node29).ident == 26

    def test_single_node_ring(self):
        snap = make_snapshot(5, [7])
        node = snap.node_at(7)
        assert snap.successor(node).ident == 7
        assert snap.predecessor(node).ident == 7
        assert snap.resolve(0).ident == 7

    def test_node_at_missing(self, figure2_snapshot):
        with pytest.raises(KeyError):
            figure2_snapshot.node_at(5)

    def test_contains_and_iter(self, figure2_snapshot):
        assert 13 in figure2_snapshot
        assert 14 not in figure2_snapshot
        assert len(list(figure2_snapshot)) == len(figure2_snapshot) == 8

    def test_without(self, figure2_snapshot):
        smaller = figure2_snapshot.without([4, 13])
        assert len(smaller) == 6
        assert 4 not in smaller
        assert smaller.resolve(4).ident == 8

    def test_with_nodes(self, figure2_snapshot):
        bigger = figure2_snapshot.with_nodes([Node(ident=15, capacity=3)])
        assert len(bigger) == 9
        assert bigger.resolve(14).ident == 15

    def test_random_node_uniformish(self, figure2_snapshot):
        rng = Random(0)
        picks = {figure2_snapshot.random_node(rng).ident for _ in range(200)}
        assert picks == {0, 4, 8, 13, 18, 21, 26, 29}


class TestBuildSnapshot:
    def test_sizes_and_determinism(self):
        space = IdentifierSpace(12)
        snap1 = build_snapshot(space, [3] * 100, rng=Random(5))
        snap2 = build_snapshot(space, [3] * 100, rng=Random(5))
        assert [n.ident for n in snap1] == [n.ident for n in snap2]
        assert len(snap1) == 100

    def test_bandwidths_attached(self):
        space = IdentifierSpace(12)
        snap = build_snapshot(space, [3, 4], bandwidths=[500.0, 600.0])
        assert sorted(n.bandwidth_kbps for n in snap) == [500.0, 600.0]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            build_snapshot(IdentifierSpace(12), [3, 4], bandwidths=[1.0])

    def test_dense_ring(self):
        space = IdentifierSpace(5)
        snap = build_snapshot(space, [2] * 32, rng=Random(0))
        assert len(snap) == 32
        assert sorted(n.ident for n in snap) == list(range(32))

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            build_snapshot(IdentifierSpace(3), [2] * 9)


@settings(max_examples=50)
@given(st.sets(st.integers(min_value=0, max_value=255), min_size=1, max_size=40))
def test_resolve_matches_brute_force(idents):
    snap = make_snapshot(8, sorted(idents), capacity=4)
    ordered = sorted(idents)
    for key in range(256):
        expected = next((i for i in ordered if i >= key), ordered[0])
        assert snap.resolve(key).ident == expected


@settings(max_examples=50)
@given(st.sets(st.integers(min_value=0, max_value=255), min_size=2, max_size=40))
def test_successor_predecessor_inverse(idents):
    snap = make_snapshot(8, sorted(idents), capacity=4)
    for node in snap:
        assert snap.predecessor(snap.successor(node)).ident == node.ident
        assert snap.successor(snap.predecessor(node)).ident == node.ident
