"""Tests for proximity neighbor selection (Section 5.2)."""

from __future__ import annotations

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.proximity import (
    pns_cam_chord_multicast,
    select_children_pns,
    tree_delay_statistics,
)
from repro.overlay.cam_chord import CamChordOverlay
from repro.sim.latency import GeographicLatency
from tests.conftest import make_snapshot, random_snapshot


def geo_delay(seed: int = 0):
    geo = GeographicLatency(jitter=0.0, placement_seed=seed)
    return lambda a, b: geo.delay(a, b, Random(0))


class TestSelectChildrenPns:
    def test_children_within_region_and_distinct(self):
        snap = random_snapshot(12, 150, seed=1)
        overlay = CamChordOverlay(snap)
        delay = geo_delay()
        node = snap.nodes[0]
        limit = overlay.space.sub(node.ident, 1)
        children = select_children_pns(overlay, node, limit, delay)
        idents = [child.ident for child, _ in children]
        assert len(idents) == len(set(idents))
        assert len(idents) <= node.capacity
        for child, sublimit in children:
            assert overlay.space.in_segment(child.ident, node.ident, limit)
            # region end never precedes the child
            assert overlay.space.segment_size(child.ident, sublimit) >= 0

    def test_empty_region(self):
        snap = random_snapshot(12, 10, seed=2)
        overlay = CamChordOverlay(snap)
        node = snap.nodes[0]
        assert select_children_pns(overlay, node, node.ident, geo_delay()) == []


class TestPnsMulticast:
    def test_exactly_once_random_topologies(self):
        for seed in range(5):
            snap = random_snapshot(12, 200, seed=seed)
            overlay = CamChordOverlay(snap)
            source = snap.random_node(Random(seed))
            tree = pns_cam_chord_multicast(overlay, source, geo_delay(seed))
            tree.verify_exactly_once({n.ident for n in snap})

    def test_capacity_bound_holds(self):
        snap = random_snapshot(12, 300, seed=7)
        overlay = CamChordOverlay(snap)
        tree = pns_cam_chord_multicast(overlay, snap.nodes[0], geo_delay())
        caps = {n.ident: n.capacity for n in snap}
        for ident, count in tree.children_counts().items():
            assert count <= caps[ident]

    def test_pns_not_slower_than_default(self):
        """On a geographic topology, least-delay choice should not lose
        to the default (averaged over several sources)."""
        snap = random_snapshot(13, 600, seed=3, capacity_range=(6, 12))
        overlay = CamChordOverlay(snap)
        delay = geo_delay(3)
        rng = Random(0)
        default_total = 0.0
        pns_total = 0.0
        for _ in range(3):
            source = snap.random_node(rng)
            d_mean, _ = tree_delay_statistics(
                cam_chord_multicast(overlay, source), delay
            )
            p_mean, _ = tree_delay_statistics(
                pns_cam_chord_multicast(overlay, source, delay), delay
            )
            default_total += d_mean
            pns_total += p_mean
        assert pns_total < default_total


class TestTreeDelayStatistics:
    def test_chain_sums(self):
        from repro.multicast.delivery import MulticastResult

        tree = MulticastResult(source_ident=0)
        tree.record_delivery(1, 0)
        tree.record_delivery(2, 1)
        mean, worst = tree_delay_statistics(tree, lambda a, b: 1.5)
        assert worst == 3.0
        assert mean == (1.5 + 3.0) / 2

    def test_source_only(self):
        from repro.multicast.delivery import MulticastResult

        tree = MulticastResult(source_ident=0)
        mean, worst = tree_delay_statistics(tree, lambda a, b: 1.0)
        assert mean == 0.0
        assert worst == 0.0


@settings(max_examples=40, deadline=None)
@given(
    idents=st.sets(st.integers(min_value=0, max_value=1023), min_size=2, max_size=60),
    caps=st.lists(st.integers(min_value=2, max_value=16), min_size=1, max_size=6),
    source_index=st.integers(min_value=0),
    placement=st.integers(min_value=0, max_value=5),
)
def test_pns_exactly_once_property(idents, caps, source_index, placement):
    ordered = sorted(idents)
    capacities = [max(2, caps[i % len(caps)]) for i in range(len(ordered))]
    snap = make_snapshot(10, ordered, capacity=capacities)
    overlay = CamChordOverlay(snap)
    source = snap.nodes[source_index % len(snap.nodes)]
    tree = pns_cam_chord_multicast(overlay, source, geo_delay(placement))
    tree.verify_exactly_once(set(ordered))
