"""The paper's headline throughput guarantee, as a property test.

For a CAM system with ``c_x = floor(B_x / p)`` (no clamping active),
every internal node allocates ``B_x / d_x >= B_x / c_x >= p`` per
child link — so the sustainable session throughput can never fall
below the configured per-link rate, no matter how the tree came out,
who the source is, or how capacities are distributed.  This is the
property that capacity-obliviousness loses (Figure 6).
"""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.throughput import sustainable_throughput
from repro.multicast.session import MulticastGroup, SystemKind


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    per_link=st.sampled_from([25.0, 50.0, 100.0]),
    size=st.integers(min_value=10, max_value=300),
    kind=st.sampled_from([SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE]),
)
def test_cam_throughput_never_below_p(seed, per_link, size, kind):
    rng = Random(seed)
    # bandwidths >= 400 and p <= 100 keep the min-capacity clamp inactive
    bandwidths = [rng.uniform(400, 1000) for _ in range(size)]
    group = MulticastGroup.build(
        kind, bandwidths, per_link_kbps=per_link, space_bits=12, seed=seed
    )
    source = group.random_member(rng)
    tree = group.multicast_from(source)
    assert sustainable_throughput(tree, group.snapshot) >= per_link


def test_clamped_capacity_can_break_the_guarantee():
    """Documented limit: if the overlay's minimum capacity forces a node
    above ``floor(B_x / p)``, its links get less than ``p`` — the clamp
    trades the guarantee for connectivity."""
    # two slow nodes (100 kbps) among fast ones, p = 100: CAM-Koorde
    # clamps them to capacity 4, so their links carry only ~25 kbps.
    rng = Random(3)
    bandwidths = [100.0, 100.0] + [rng.uniform(800, 1000) for _ in range(60)]
    group = MulticastGroup.build(
        SystemKind.CAM_KOORDE, bandwidths, per_link_kbps=100, space_bits=12, seed=3
    )
    # multicast *from* a clamped node: a flood source always serves all
    # its neighbors, so its 100 kbps spread over 4 links is the bottleneck
    slow = next(n for n in group.snapshot if n.bandwidth_kbps == 100.0)
    tree = group.multicast_from(slow)
    assert sustainable_throughput(tree, group.snapshot) < 100.0


@pytest.mark.parametrize("kind", [SystemKind.CHORD, SystemKind.KOORDE])
def test_oblivious_baseline_breaks_the_guarantee(kind):
    """The contrast the paper draws: with a uniform fanout the slowest
    node's links drop below the rate a CAM system would sustain."""
    rng = Random(4)
    bandwidths = [rng.uniform(400, 1000) for _ in range(400)]
    group = MulticastGroup.build(
        kind, bandwidths, per_link_kbps=100, space_bits=12,
        uniform_fanout=8, seed=4,
    )
    tree = group.multicast_from(group.random_member(rng))
    # some ~400 kbps node serves ~8 children: ~50 kbps links
    assert sustainable_throughput(tree, group.snapshot) < 100.0
