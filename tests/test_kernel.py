"""Kernel/legacy equivalence: the flat-array trees ARE the object trees.

The flat-array kernel (:mod:`repro.multicast.kernel`) must reproduce
the ``record_delivery``-built reference recorders *edge for edge* —
same parents, same depths, same children counts, and the same delivery
order (the reference dicts' insertion order), because downstream
consumers iterate the views and their output depends on that order.
Property-tested here for all four registry systems over random
memberships, capacities and sources.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.metrics.tree_stats import summarize_tree
from repro.multicast.cam_chord import reference_multicast
from repro.multicast.cam_koorde import flood_multicast
from repro.multicast.kernel import FlatTree, flood_tree, region_split_tree
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.koorde import KoordeOverlay
from repro.systems import all_descriptors
from tests.conftest import make_snapshot

memberships = st.sets(st.integers(min_value=0, max_value=1023), min_size=1, max_size=80)


def cycle_capacities(caps: list[int], count: int, floor: int) -> list[int]:
    return [max(floor, caps[i % len(caps)]) for i in range(count)]


def assert_same_tree(flat: FlatTree, reference) -> None:
    """Edge-for-edge, order-for-order equality of the two data planes."""
    assert isinstance(flat, FlatTree)
    assert flat.source_ident == reference.source_ident
    assert flat.messages_sent == reference.messages_sent
    assert flat.receiver_count == reference.receiver_count
    # dict equality AND insertion (delivery) order
    assert flat.parent == reference.parent
    assert list(flat.parent) == list(reference.parent)
    assert flat.depth == reference.depth
    assert list(flat.depth) == list(reference.depth)
    flat_children = flat.children_counts()
    ref_children = reference.children_counts()
    assert flat_children == ref_children
    assert list(flat_children) == list(ref_children)
    assert flat.path_length_histogram() == reference.path_length_histogram()
    assert flat.average_path_length() == reference.average_path_length()
    assert flat.max_path_length() == reference.max_path_length()
    assert sorted(flat.internal_nodes()) == sorted(reference.internal_nodes())
    # the fused one-pass summary equals the dict-walking one exactly
    assert summarize_tree(flat) == summarize_tree(reference)


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    caps=st.lists(st.integers(min_value=2, max_value=30), min_size=1, max_size=8),
    source_index=st.integers(min_value=0),
)
def test_cam_chord_kernel_matches_reference(idents, caps, source_index):
    ordered = sorted(idents)
    capacities = cycle_capacities(caps, len(ordered), floor=2)
    snap = make_snapshot(10, ordered, capacity=capacities)
    overlay = CamChordOverlay(snap)
    source = snap.nodes[source_index % len(snap.nodes)]
    assert_same_tree(
        region_split_tree(overlay, source), reference_multicast(overlay, source)
    )


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    base=st.integers(min_value=2, max_value=16),
    source_index=st.integers(min_value=0),
)
def test_chord_kernel_matches_reference(idents, base, source_index):
    """The Figure 6 "Chord" baseline: uniform fanout, same splitter."""
    ordered = sorted(idents)
    snap = make_snapshot(10, ordered, capacity=2)
    overlay = ChordOverlay(snap, base=base)
    source = snap.nodes[source_index % len(snap.nodes)]
    assert_same_tree(
        region_split_tree(overlay, source), reference_multicast(overlay, source)
    )


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    caps=st.lists(st.integers(min_value=4, max_value=30), min_size=1, max_size=8),
    source_index=st.integers(min_value=0),
)
def test_cam_koorde_kernel_matches_reference(idents, caps, source_index):
    ordered = sorted(idents)
    capacities = cycle_capacities(caps, len(ordered), floor=4)
    snap = make_snapshot(10, ordered, capacity=capacities)
    overlay = CamKoordeOverlay(snap)
    source = snap.nodes[source_index % len(snap.nodes)]
    assert_same_tree(flood_tree(overlay, source), flood_multicast(overlay, source))


@settings(max_examples=60, deadline=None)
@given(
    idents=memberships,
    degree=st.sampled_from([2, 3, 4, 8, 16]),
    source_index=st.integers(min_value=0),
)
def test_koorde_kernel_matches_reference(idents, degree, source_index):
    ordered = sorted(idents)
    snap = make_snapshot(10, ordered, capacity=2)
    overlay = KoordeOverlay(snap, degree=degree)
    source = snap.nodes[source_index % len(snap.nodes)]
    assert_same_tree(flood_tree(overlay, source), flood_multicast(overlay, source))


def test_all_sources_match_on_all_registry_systems():
    """Every source over every registry system, one deterministic ring."""
    idents = [3, 17, 40, 99, 123, 256, 300, 512, 700, 801, 900, 1011]
    snap = make_snapshot(10, idents, capacity=[4, 5, 4, 5, 6, 7, 8, 4, 5, 5, 6, 4])
    for descriptor in all_descriptors():
        overlay = descriptor.build_overlay(snap, uniform_fanout=4)
        for source in snap.nodes:
            flat = descriptor.run_multicast(overlay, source)
            assert isinstance(flat, FlatTree), descriptor.name
            if isinstance(overlay, (CamKoordeOverlay, KoordeOverlay)):
                reference = flood_multicast(overlay, source)
            else:
                reference = reference_multicast(overlay, source)
            assert_same_tree(flat, reference)


def test_slot_tables_memoize_across_sources():
    """A second tree over the same overlay resolves (almost) nothing:
    the flood CSR is complete after the first build, and the splitter's
    slot tables answer every revisited (node, slot) from memory."""
    idents = list(range(0, 1024, 9))
    snap = make_snapshot(10, idents, capacity=4)

    overlay = CamKoordeOverlay(snap)
    flood_tree(overlay, snap.nodes[0])
    before = perf.snapshot()
    flood_tree(overlay, snap.nodes[1])
    delta = perf.since(before)
    assert delta.kernel_resolves == 0  # CSR built once, ever

    chord = CamChordOverlay(snap)
    region_split_tree(chord, snap.nodes[0])
    before = perf.snapshot()
    repeat = region_split_tree(chord, snap.nodes[0])
    delta = perf.since(before)
    assert delta.kernel_resolves == 0  # identical tree: pure table hits
    assert delta.kernel_resolves_saved > 0
    assert repeat.receiver_count == len(idents)


def test_kernel_path_to_source_and_delivery_queries():
    idents = [1, 50, 200, 400, 600, 800, 1000]
    snap = make_snapshot(10, idents, capacity=3)
    overlay = CamChordOverlay(snap)
    flat = region_split_tree(overlay, snap.nodes[0])
    reference = reference_multicast(overlay, snap.nodes[0])
    for ident in idents:
        assert flat.was_delivered(ident)
        assert flat.path_to_source(ident) == reference.path_to_source(ident)
    assert not flat.was_delivered(7)  # never a member
    flat.verify_exactly_once(set(idents))
