"""Unit tests for the peer internals (no full cluster required)."""

from __future__ import annotations


from repro.idspace.ring import IdentifierSpace
from repro.protocol.base_peer import BasePeer
from repro.protocol.cam_chord_peer import CamChordPeer
from repro.protocol.cam_koorde_peer import CamKoordePeer
from repro.protocol.config import ProtocolConfig
from repro.sim.engine import Simulator
from repro.sim.network import Network

SPACE = IdentifierSpace(8)  # ring of 256


def make_peer(ident: int, capacity: int = 5, peer_class=CamChordPeer) -> BasePeer:
    sim = Simulator()
    network = Network(sim)
    return peer_class(ident, capacity, network, SPACE, config=ProtocolConfig())


class TestLocalNextHop:
    def test_single_node_claims_everything(self):
        peer = make_peer(10)
        done, ident = peer.local_next_hop(200, exclude=set())
        assert done and ident == 10

    def test_key_in_own_segment(self):
        peer = make_peer(100)
        peer.predecessor = 50
        peer.successors = [150]
        done, ident = peer.local_next_hop(80, exclude=set())
        assert done and ident == 100

    def test_key_in_successor_segment(self):
        peer = make_peer(100)
        peer.predecessor = 50
        peer.successors = [150]
        done, ident = peer.local_next_hop(140, exclude=set())
        assert done and ident == 150

    def test_forwards_to_closest_preceding_link(self):
        peer = make_peer(0)
        peer.predecessor = 200
        peer.successors = [30]
        peer.neighbor_table = {(1, 1): 90, (2, 1): 160}
        done, ident = peer.local_next_hop(170, exclude=set())
        assert not done
        assert ident == 160  # closest link preceding the key

    def test_exclusion_skips_failed_hop(self):
        peer = make_peer(0)
        peer.predecessor = 200
        peer.successors = [30]
        peer.neighbor_table = {(1, 1): 90, (2, 1): 160}
        done, ident = peer.local_next_hop(170, exclude={160})
        assert not done
        assert ident == 90

    def test_all_links_excluded_falls_back(self):
        peer = make_peer(0)
        peer.predecessor = 200
        peer.successors = [30]
        done, ident = peer.local_next_hop(170, exclude={30, 200})
        assert done  # degraded answer rather than an infinite loop


class TestRoutingLinks:
    def test_links_deduplicated_and_self_free(self):
        peer = make_peer(10)
        peer.predecessor = 5
        peer.successors = [20, 30, 10]
        peer.neighbor_table = {(0, 1): 20, (1, 1): 77}
        links = peer.routing_links()
        assert links == {5, 20, 30, 77}

    def test_purge_link_clears_everything(self):
        peer = make_peer(10)
        peer.predecessor = 77
        peer.successors = [20, 77, 30]
        peer.neighbor_table = {(0, 1): 77, (1, 1): 90}
        peer._purge_link(77)
        assert peer.predecessor is None
        assert peer.successors == [20, 30]
        assert peer.neighbor_table == {(1, 1): 90}


class TestSlotSpecs:
    def test_cam_chord_slots_match_overlay_arithmetic(self):
        peer = make_peer(3, capacity=3)
        slots = dict(((lvl, seq), ident) for (lvl, seq), ident in peer.slot_specs())
        # x + j*3^i within one turn of the 256-ring
        assert slots[(0, 1)] == 4
        assert slots[(0, 2)] == 5
        assert slots[(1, 1)] == 6
        assert slots[(4, 2)] == (3 + 2 * 81) % 256
        assert all(0 <= v < 256 for v in slots.values())

    def test_cam_koorde_slots_are_group_identifiers(self):
        peer = make_peer(36, capacity=10, peer_class=CamKoordePeer)
        idents = [ident for _, ident in peer.slot_specs()]
        assert len(idents) == 8  # capacity - 2 (pred/succ are implicit)

    def test_uniform_capacity_is_live_chord(self):
        """A CamChordPeer with capacity 2 keeps exactly the classic
        Chord finger identifiers — the live baseline needs no separate
        class."""
        peer = make_peer(0, capacity=2)
        idents = sorted(ident for _, ident in peer.slot_specs())
        assert idents == [2**i for i in range(8)]


class TestJoinGuards:
    def test_join_while_alive_resolves_true_without_side_effects(self):
        peer = make_peer(10)
        peer.create()
        outcome = peer.join(99)
        assert outcome.done and outcome.value is True

    def test_double_join_in_flight_rejected(self):
        sim = Simulator()
        network = Network(sim)
        a = CamChordPeer(10, 5, network, SPACE)
        bootstrap = CamChordPeer(200, 5, network, SPACE)
        bootstrap.create()
        first = a.join(200)
        second = a.join(200)  # while the first is still in flight
        assert second.done and second.value is False
        sim.run(until=30)
        assert first.done and first.value is True
        assert a.alive

    def test_crash_idempotent(self):
        peer = make_peer(10)
        peer.create()
        peer.crash()
        peer.crash()  # no error
        assert not peer.alive

    def test_leave_before_join_is_noop(self):
        peer = make_peer(10)
        peer.leave()  # not alive: nothing to do
        assert not peer.alive


class TestFloodLinks:
    def test_cam_koorde_flood_links_exclude_self(self):
        peer = make_peer(36, capacity=6, peer_class=CamKoordePeer)
        peer.predecessor = 30
        peer.successors = [40]
        peer.neighbor_table = {("debruijn", 0): 18, ("debruijn", 1): 36}
        links = peer.flood_links()
        assert links == {30, 40, 18}
