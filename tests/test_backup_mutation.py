"""Mutation tests: prove the delivery-gap oracle detects stale backups.

A failover campaign that always passes could be vacuous.  Here the
mutant is not a broken peer but a **stale backup plan**: built against
the *pre-fault* membership epoch (``stale_backup=True``), it does not
know members that joined during the fault window and still trusts
parents that died — so orphans it cannot reattach must surface as
delivery-gap violations.  The oracle must catch it, the shrinker must
minimize the scenario to at most three fault events (empirically a
single ``join`` — the exact stale-epoch story), the minimized repro
must replay byte-identically through ``python -m repro.faults replay
--failover``, and the comparison campaign must aggregate serial ==
``--jobs 2``.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    generate_plan,
    run_comparison_campaign,
    run_plan,
    save_plan,
    shrink_plan,
)
from repro.faults.__main__ import main as faults_main
from tests.conftest import assert_plan_deterministic


@pytest.fixture(scope="module")
def failing_plan():
    """The first generated plan the stale backup fails on — and that a
    fresh backup passes, pinning the failure on staleness alone."""
    for system in ("cam-chord", "cam-koorde"):
        for index in range(6):
            plan = generate_plan(system, index, campaign_seed=0)
            stale = run_plan(plan, mode="failover", stale_backup=True)
            if stale.passed:
                continue
            fresh = run_plan(plan, mode="failover")
            if fresh.passed:
                return plan, stale
    pytest.fail(
        "stale backups survived 12 generated plans — the delivery-gap "
        "oracle is toothless"
    )


@pytest.fixture(scope="module")
def minimized_scenario(failing_plan):
    plan, _stale = failing_plan
    return shrink_plan(
        plan, runner=lambda p: run_plan(p, mode="failover", stale_backup=True)
    )


def test_stale_backup_caught_by_delivery_gap_oracle(failing_plan):
    _plan, stale = failing_plan
    oracles = {violation.oracle for violation in stale.violations}
    assert "delivery-gap" in oracles, (
        f"expected the delivery-gap oracle to fire, got {oracles}"
    )
    detail = next(v for v in stale.violations if v.oracle == "delivery-gap")
    assert detail.members, "a delivery-gap violation must name the members hit"
    assert stale.mode == "failover"


def test_stale_backup_shrinks_to_minimal_scenario(minimized_scenario):
    minimized, final = minimized_scenario
    assert len(minimized.events) <= 3
    assert minimized.multicasts == 1
    assert any(v.oracle == "delivery-gap" for v in final.violations)

    # the minimized repro replays deterministically on the stale path
    replayed = assert_plan_deterministic(
        minimized, mode="failover", stale_backup=True
    )
    assert replayed.violations == final.violations


def test_replay_cli_failover_round_trip(minimized_scenario, tmp_path, capsys):
    """``replay --failover --stale-backup`` exits 1 with byte-identical
    output twice; the fresh backup passes the very same scenario."""
    minimized, final = minimized_scenario
    path = tmp_path / "minimal-failover.json"
    save_plan(
        minimized,
        str(path),
        extra={"violations": [str(v) for v in final.violations]},
    )
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["meta"]["violations"]

    argv = ["replay", str(path), "--failover", "--stale-backup"]
    exit_first = faults_main(argv)
    out_first = capsys.readouterr().out
    exit_second = faults_main(argv)
    out_second = capsys.readouterr().out
    assert exit_first == exit_second == 1
    assert out_first == out_second
    assert "delivery-gap" in out_first

    # a fresh (current-epoch) backup covers the same scenario
    exit_fresh = faults_main(["replay", str(path), "--failover"])
    out_fresh = capsys.readouterr().out
    assert exit_fresh == 0
    assert "ok" in out_fresh


def test_comparison_campaign_serial_matches_parallel():
    """Serial and ``--jobs 2`` comparison campaigns aggregate
    byte-identically — the same ordered-map determinism contract as the
    plain campaign."""
    plans = [generate_plan("cam-chord", index, campaign_seed=0) for index in range(2)]
    serial = run_comparison_campaign(plans, jobs=1)
    parallel = run_comparison_campaign(plans, jobs=2)
    assert serial.summary() == parallel.summary()
    assert serial.paired_gaps() == parallel.paired_gaps()
    for left, right in zip(serial.comparisons, parallel.comparisons):
        for a, b in ((left.repair, right.repair), (left.failover, right.failover)):
            assert a.violations == b.violations
            assert a.member_gaps == b.member_gaps
            assert a.recovered == b.recovered
            assert a.repair_wait == b.repair_wait
    # the headline the extO experiment reads: failover strictly faster
    medians = serial.gap_medians()
    assert medians is not None
    repair_median, failover_median = medians
    assert failover_median < repair_median
