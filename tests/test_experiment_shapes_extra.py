"""Tiny-scale shape checks for the experiment modules not already
covered by tests/test_experiments.py (their full-size assertions live
in benchmarks/)."""

from __future__ import annotations

from repro.experiments import (
    ext_geography,
    ext_lookup,
    ext_proximity,
    ext_timed,
    fig10_pathdist_cam_koorde,
)
from repro.experiments.common import ExperimentScale

TINY = ExperimentScale("tiny", 400, 2, 20, space_bits=12)


def mean_hops(series) -> float:
    total = sum(x * y for x, y in series.points)
    count = sum(y for _, y in series.points)
    return total / count


class TestFig10Tiny:
    def test_distributions_shift_left(self):
        result = fig10_pathdist_cam_koorde.run(TINY)
        means = {s.label: mean_hops(s) for s in result.series}
        assert means["4"] > means["[4..20]"] > means["[4..200]"]


class TestExtLookupTiny:
    def test_hops_grow_sublinearly(self):
        result = ext_lookup.run(TINY)
        for label in ("cam-chord", "chord"):
            ys = result.get_series(label).ys()
            assert ys[-1] >= ys[0]
            assert ys[-1] < 5 * max(ys[0], 1.0)


class TestExtProximityTiny:
    def test_pns_reduces_mean_delay(self):
        result = ext_proximity.run(TINY)
        default = result.get_series("default (mean, max, hops)").points
        pns = result.get_series("pns (mean, max, hops)").points
        default_means = [y for x, y in default if x == int(x)]
        pns_means = [y for x, y in pns if x == int(x)]
        assert sum(pns_means) < sum(default_means)


class TestExtTimedTiny:
    def test_ratio_in_unit_interval(self):
        result = ext_timed.run(TINY)
        for _, ratio in result.get_series("measured/analytic (long)").points:
            assert 0.5 < ratio <= 1.0001


class TestExtGeographyTiny:
    def test_geographic_layout_helps(self):
        result = ext_geography.run(TINY)
        def mean_delay(label):
            return sum(
                y for x, y in result.get_series(label).points if x == int(x)
            )
        assert mean_delay("geographic layout") < mean_delay("random layout")
