"""Cross-overlay invariants and miscellaneous coverage.

Properties every overlay must share, regardless of its link geometry:
symmetric reachability of the ring, lookup idempotence, neighbor-cache
correctness, and the check_lookup_invariants helper itself.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.overlay.base import LookupResult
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.koorde import KoordeOverlay
from tests.conftest import make_snapshot, random_snapshot


def all_overlays(snap):
    return [
        CamChordOverlay(snap),
        CamKoordeOverlay(snap),
        ChordOverlay(snap, base=4),
        KoordeOverlay(snap, degree=4),
    ]


class TestSharedInvariants:
    def test_lookup_idempotent_from_responsible_node(self):
        snap = random_snapshot(12, 80, seed=1)
        rng = Random(0)
        for overlay in all_overlays(snap):
            for _ in range(30):
                key = rng.randrange(1 << 12)
                responsible = snap.resolve(key)
                result = overlay.lookup(responsible, key)
                assert result.responsible.ident == responsible.ident
                assert result.hops == 0

    def test_neighbors_never_include_self(self):
        snap = random_snapshot(12, 80, seed=2)
        for overlay in all_overlays(snap):
            for node in snap:
                assert node.ident not in {
                    n.ident for n in overlay.neighbors(node)
                }

    def test_neighbor_cache_consistent(self):
        snap = random_snapshot(12, 50, seed=3)
        for overlay in all_overlays(snap):
            node = snap.nodes[0]
            first = overlay.neighbors(node)
            second = overlay.neighbors(node)
            assert first is second  # cached object identity
            assert [n.ident for n in first] == [n.ident for n in second]

    def test_union_of_neighbors_connects_the_ring(self):
        """Every overlay's neighbor relation must reach all members from
        any start (otherwise some multicast could not cover the group)."""
        snap = random_snapshot(11, 60, seed=4)
        for overlay in all_overlays(snap):
            reached = {snap.nodes[0].ident}
            frontier = [snap.nodes[0]]
            while frontier:
                node = frontier.pop()
                for neighbor in overlay.neighbors(node):
                    if neighbor.ident not in reached:
                        reached.add(neighbor.ident)
                        frontier.append(neighbor)
            missing = {n.ident for n in snap} - reached
            # ring links may only appear via neighbors() for the koorde
            # variants; chord fingers include x+1 so coverage is direct
            assert not missing, f"{type(overlay).__name__}: {sorted(missing)[:5]}"

    def test_check_lookup_invariants_raises_on_wrong_answer(self):
        snap = make_snapshot(8, [0, 100, 200], capacity=4)
        overlay = CamChordOverlay(snap)
        bogus = LookupResult(responsible=snap.node_at(0), hops=0, path=[])
        with pytest.raises(AssertionError, match="responsible segment"):
            overlay.check_lookup_invariants(bogus, 150)
        fine = LookupResult(responsible=snap.node_at(200), hops=0, path=[])
        overlay.check_lookup_invariants(fine, 150)  # no raise


class TestNodesInSegment:
    def test_simple_range(self):
        snap = make_snapshot(8, [10, 20, 30, 40], capacity=4)
        idents = [n.ident for n in snap.nodes_in_segment(15, 35)]
        assert idents == [20, 30]

    def test_wrapping_range(self):
        snap = make_snapshot(8, [10, 20, 250], capacity=4)
        idents = [n.ident for n in snap.nodes_in_segment(240, 15)]
        assert idents == [250, 10]

    def test_inclusive_right_exclusive_left(self):
        snap = make_snapshot(8, [10, 20], capacity=4)
        assert [n.ident for n in snap.nodes_in_segment(10, 20)] == [20]

    def test_limit(self):
        snap = make_snapshot(8, list(range(0, 100, 10)), capacity=4)
        assert len(snap.nodes_in_segment(0, 99, limit=3)) == 3

    def test_empty_segment(self):
        snap = make_snapshot(8, [10, 20], capacity=4)
        assert snap.nodes_in_segment(5, 5) == []
