"""Integration tests for the live maintenance protocol."""

from __future__ import annotations

from random import Random

import pytest

from repro.protocol import CamChordPeer, CamKoordePeer, Cluster, ProtocolConfig
from repro.protocol.base_peer import DeliveryMonitor


def make_cluster(peer_class, count, seed=1, bits=12, caps=None, **kwargs):
    rng = Random(seed)
    capacities = caps if caps is not None else [rng.randint(4, 10) for _ in range(count)]
    return Cluster(peer_class, capacities, space_bits=bits, seed=seed, **kwargs)


class TestProtocolConfig:
    def test_defaults_valid(self):
        ProtocolConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("stabilize_interval", 0),
            ("fix_neighbors_interval", -1),
            ("check_predecessor_interval", 0),
            ("successor_list_size", 0),
            ("rpc_timeout", 0),
            ("lookup_max_hops", 0),
            ("lookup_retries", -1),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ProtocolConfig(**{field: value})


class TestBootstrap:
    def test_single_node_ring(self):
        cluster = make_cluster(CamChordPeer, 1)
        cluster.bootstrap()
        (peer,) = cluster.live_peers()
        assert peer.successor == peer.ident
        assert cluster.ring_consistent()

    def test_two_node_ring(self):
        cluster = make_cluster(CamChordPeer, 2)
        cluster.bootstrap()
        a, b = cluster.live_peers()
        assert a.successor == b.ident
        assert b.successor == a.ident
        assert a.predecessor == b.ident
        assert b.predecessor == a.ident

    def test_ring_converges_cam_chord(self):
        cluster = make_cluster(CamChordPeer, 40)
        cluster.bootstrap()
        assert cluster.ring_consistent()
        assert cluster.neighbor_table_accuracy() > 0.9

    def test_ring_converges_cam_koorde(self):
        cluster = make_cluster(CamKoordePeer, 40)
        cluster.bootstrap()
        assert cluster.ring_consistent()
        assert cluster.neighbor_table_accuracy() > 0.9

    def test_cam_koorde_rejects_small_capacity(self):
        with pytest.raises(ValueError, match="capacity >= 4"):
            make_cluster(CamKoordePeer, 3, caps=[3, 5, 6])


class TestStableMulticast:
    def test_cam_chord_full_delivery(self):
        cluster = make_cluster(CamChordPeer, 50, seed=3)
        cluster.bootstrap()
        mid = cluster.multicast_from(cluster.random_live_peer().ident)
        cluster.run(10)
        assert cluster.delivery_ratio(mid) == 1.0
        # the implicit tree respects capacities: depth recorded everywhere
        assert len(cluster.monitor.received[mid]) == 50

    def test_cam_koorde_full_delivery(self):
        cluster = make_cluster(CamKoordePeer, 50, seed=3)
        cluster.bootstrap()
        mid = cluster.multicast_from(cluster.random_live_peer().ident)
        cluster.run(10)
        assert cluster.delivery_ratio(mid) == 1.0

    def test_any_source(self):
        cluster = make_cluster(CamChordPeer, 25, seed=4)
        cluster.bootstrap()
        mids = [cluster.multicast_from(p.ident) for p in cluster.live_peers()[:5]]
        cluster.run(15)
        for mid in mids:
            assert cluster.delivery_ratio(mid) == 1.0

    def test_multicast_from_dead_peer_rejected(self):
        cluster = make_cluster(CamChordPeer, 5, seed=5)
        cluster.bootstrap()
        victim = cluster.live_peers()[0]
        cluster.remove_peer(victim.ident)
        with pytest.raises(RuntimeError):
            cluster.multicast_from(victim.ident)


class TestChurnHandling:
    def test_join_after_bootstrap(self):
        cluster = make_cluster(CamChordPeer, 20, seed=6)
        cluster.bootstrap()
        newcomer = cluster.add_peer(capacity=6)
        cluster.run(60)
        assert newcomer.alive
        assert cluster.ring_consistent()
        assert newcomer.ident in cluster.live_members()

    def test_graceful_leave_repairs_quickly(self):
        cluster = make_cluster(CamChordPeer, 20, seed=7)
        cluster.bootstrap()
        victim = cluster.live_peers()[5]
        cluster.remove_peer(victim.ident, crash=False)
        cluster.run(30)
        assert cluster.ring_consistent()
        assert victim.ident not in cluster.live_members()

    def test_crash_repair(self):
        cluster = make_cluster(CamChordPeer, 30, seed=8)
        cluster.bootstrap()
        victims = [p.ident for p in cluster.live_peers()[::6]]
        for victim in victims:
            cluster.remove_peer(victim, crash=True)
        cluster.run(120)
        assert cluster.ring_consistent()
        assert len(cluster.live_members()) == 30 - len(victims)

    def test_flooding_survives_crashes_better_than_tree(self):
        """The paper's resilience comparison, in miniature: crash 20%
        of members, multicast immediately, flooding delivers more."""
        ratios = {}
        for cls in (CamChordPeer, CamKoordePeer):
            cluster = make_cluster(cls, 40, seed=9)
            cluster.bootstrap()
            live = cluster.live_peers()
            for victim in live[:: 5]:
                cluster.remove_peer(victim.ident, crash=True)
            source = cluster.random_live_peer()
            mid = cluster.multicast_from(source.ident)
            cluster.run(5)
            ratios[cls.__name__] = cluster.delivery_ratio(mid)
        assert ratios["CamKoordePeer"] >= ratios["CamChordPeer"]
        assert ratios["CamKoordePeer"] > 0.95

    def test_message_loss_tolerated_by_flooding(self):
        cluster = make_cluster(CamKoordePeer, 30, seed=10, loss_rate=0.05)
        cluster.bootstrap()
        mid = cluster.multicast_from(cluster.random_live_peer().ident)
        cluster.run(10)
        assert cluster.delivery_ratio(mid) > 0.9


class TestDeliveryMonitor:
    def test_ratio_excludes_departed(self):
        monitor = DeliveryMonitor()
        monitor.message_sent(1, source=10, members={10, 20, 30, 40})
        monitor.delivered(1, 10, 0)  # the source reports its own copy
        monitor.delivered(1, 20, 1)
        # 30 left the group; 40 never got it
        assert monitor.delivery_ratio(1, still_alive={10, 20, 40}) == pytest.approx(
            2 / 3
        )

    def test_duplicate_counting(self):
        monitor = DeliveryMonitor()
        monitor.message_sent(1, source=10, members={10, 20})
        monitor.delivered(1, 20, 1)
        monitor.delivered(1, 20, 2)  # second delivery = duplicate
        monitor.duplicate(1, 20)
        assert monitor.duplicates[1] == 2

    def test_path_lengths_exclude_source(self):
        monitor = DeliveryMonitor()
        monitor.message_sent(5, source=1, members={1, 2, 3})
        monitor.delivered(5, 2, 1)
        monitor.delivered(5, 3, 2)
        assert sorted(monitor.path_lengths(5)) == [1, 2]

    def test_unknown_message_ratio_is_one(self):
        monitor = DeliveryMonitor()
        assert monitor.delivery_ratio(99, still_alive={1}) == 1.0
