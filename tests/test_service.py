"""Tests for the multi-group multicast service."""

from __future__ import annotations

from random import Random

import pytest

from repro.multicast.service import MulticastService
from repro.multicast.session import SystemKind


def populated_service(host_count: int = 60, seed: int = 1) -> MulticastService:
    service = MulticastService(space_bits=16)
    rng = Random(seed)
    for index in range(host_count):
        service.register_host(f"host-{index}", rng.uniform(400, 1000))
    return service


class TestHostManagement:
    def test_register_and_list(self):
        service = MulticastService()
        service.register_host("a", 500)
        assert service.hosts == {"a": 500}

    def test_duplicate_host_rejected(self):
        service = MulticastService()
        service.register_host("a", 500)
        with pytest.raises(ValueError, match="already registered"):
            service.register_host("a", 600)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            MulticastService().register_host("a", 0)


class TestGroups:
    def test_create_and_multicast(self):
        service = populated_service()
        names = [f"host-{i}" for i in range(40)]
        group = service.create_group("video", names, kind=SystemKind.CAM_CHORD)
        assert len(group) == 40
        result = service.multicast("video", "host-3")
        assert result.receiver_count == 40

    def test_host_in_multiple_groups_gets_distinct_identifiers(self):
        service = populated_service()
        service.create_group("g1", [f"host-{i}" for i in range(30)])
        service.create_group("g2", [f"host-{i}" for i in range(30)])
        ident_g1 = service._members["g1"]["host-0"]
        ident_g2 = service._members["g2"]["host-0"]
        assert ident_g1 != ident_g2  # independent hash placement
        assert service.groups_of("host-0") == ["g1", "g2"]

    def test_unknown_member_rejected(self):
        service = populated_service()
        with pytest.raises(KeyError, match="unregistered"):
            service.create_group("g", ["host-0", "ghost"])

    def test_duplicate_group_rejected(self):
        service = populated_service()
        service.create_group("g", ["host-0", "host-1"])
        with pytest.raises(ValueError, match="already exists"):
            service.create_group("g", ["host-2"])

    def test_empty_group_rejected(self):
        service = populated_service()
        with pytest.raises(ValueError, match="at least one"):
            service.create_group("g", [])

    def test_drop_group(self):
        service = populated_service()
        service.create_group("g", ["host-0", "host-1"])
        service.drop_group("g")
        with pytest.raises(KeyError):
            service.group("g")

    def test_drop_unknown_group_raises(self):
        # drop_group used to silently no-op on unknown names while
        # group() raised — both now fail the same way
        service = populated_service()
        with pytest.raises(KeyError, match="no group named 'ghost'"):
            service.drop_group("ghost")

    def test_dropped_group_load_stays_in_ledger(self):
        # host_load_kbits is a historical account of what each uplink
        # carried; tearing a group down does not refund its traffic
        service = populated_service()
        service.create_group("g", [f"host-{i}" for i in range(10)])
        service.multicast("g", "host-0", message_kbits=3.0)
        before = sum(service.host_load_kbits().values())
        assert before == pytest.approx(9 * 3.0)
        service.drop_group("g")
        assert sum(service.host_load_kbits().values()) == pytest.approx(before)

    def test_join_group_rebuilds_and_keeps_identifiers(self):
        service = populated_service()
        service.create_group("g", [f"host-{i}" for i in range(10)])
        before = {
            name: service.member_ident("g", name)
            for name in service.members_of("g")
        }
        service.join_group("g", "host-40")
        assert "host-40" in service.members_of("g")
        # salted per group/host placement: old members keep their rings
        for name, ident in before.items():
            assert service.member_ident("g", name) == ident
        assert service.multicast("g", "host-40").receiver_count == 11

    def test_join_rejects_unregistered_and_duplicate(self):
        service = populated_service()
        service.create_group("g", ["host-0", "host-1"])
        with pytest.raises(KeyError, match="unregistered"):
            service.join_group("g", "ghost")
        with pytest.raises(ValueError, match="already a member"):
            service.join_group("g", "host-0")

    def test_leave_group_rebuilds_remaining(self):
        service = populated_service()
        service.create_group("g", [f"host-{i}" for i in range(6)])
        service.leave_group("g", "host-2")
        assert "host-2" not in service.members_of("g")
        assert service.multicast("g", "host-0").receiver_count == 5
        with pytest.raises(KeyError, match="not a member"):
            service.leave_group("g", "host-2")

    def test_leave_refuses_last_member(self):
        service = populated_service()
        service.create_group("g", ["host-0"])
        with pytest.raises(ValueError, match="last member"):
            service.leave_group("g", "host-0")

    def test_non_member_source_rejected(self):
        service = populated_service()
        service.create_group("g", ["host-0", "host-1"])
        with pytest.raises(KeyError, match="not a member"):
            service.multicast("g", "host-5")

    def test_capacity_follows_host_bandwidth_and_p(self):
        service = MulticastService(space_bits=14)
        service.register_host("slow", 420.0)
        service.register_host("fast", 980.0)
        group = service.create_group(
            "g", ["slow", "fast"], per_link_kbps=100.0
        )
        caps = {n.name: n.capacity for n in group.snapshot}
        assert caps == {"slow": 4, "fast": 9}


class TestCrossGroupAccounting:
    def test_host_load_accumulates_across_groups(self):
        service = populated_service()
        service.create_group("a", [f"host-{i}" for i in range(25)])
        service.create_group("b", [f"host-{i}" for i in range(10, 35)])
        for _ in range(5):
            service.multicast("a", "host-3", message_kbits=2.0)
            service.multicast("b", "host-20", message_kbits=2.0)
        load = service.host_load_kbits()
        # every forwarded kilobit is charged to exactly one host
        # (n-1 deliveries per multicast, 2 kbits each, 5 rounds, 2 groups)
        assert sum(load.values()) == pytest.approx((24 + 24) * 2.0 * 5)
        busiest = service.busiest_hosts(3)
        assert len(busiest) == 3
        assert busiest[0][1] >= busiest[1][1] >= busiest[2][1]

    def test_unused_hosts_carry_nothing(self):
        service = populated_service()
        service.create_group("a", [f"host-{i}" for i in range(10)])
        service.multicast("a", "host-0")
        load = service.host_load_kbits()
        assert load["host-59"] == 0.0

    def test_one_host_in_many_groups_sums_exactly(self):
        # one host forwarding in N groups: its ledger entry must equal
        # the sum over groups of children_counts x message_kbits, to the
        # kilobit — attribution is exact, not approximate
        service = populated_service()
        group_count = 4
        kbits = {"g0": 1.0, "g1": 2.5, "g2": 4.0, "g3": 0.5}
        for index in range(group_count):
            # host-0 sits in every group; the rest of each group differs
            members = ["host-0"] + [
                f"host-{i}" for i in range(1 + index * 12, 13 + index * 12)
            ]
            service.create_group(f"g{index}", members)
        expected: dict[str, float] = {name: 0.0 for name in service.hosts}
        for index in range(group_count):
            group_name = f"g{index}"
            result = service.multicast(
                group_name, "host-0", message_kbits=kbits[group_name]
            )
            members = service._members[group_name]
            ident_to_name = {ident: name for name, ident in members.items()}
            for ident, count in result.children_counts().items():
                expected[ident_to_name[ident]] += count * kbits[group_name]
        load = service.host_load_kbits()
        for name, want in expected.items():
            assert load[name] == pytest.approx(want), name
        # and the host in every group really did forward in several
        assert load["host-0"] > 0.0

    def test_teardown_never_corrupts_other_groups(self):
        # property test: create groups, multicast, drop some groups in
        # varying orders — surviving groups' traffic accounting and the
        # global ledger stay exact throughout
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            drops=st.lists(
                st.integers(min_value=0, max_value=3),
                min_size=0, max_size=4, unique=True,
            ),
            rounds=st.integers(min_value=1, max_value=3),
        )
        def run(drops: list[int], rounds: int) -> None:
            service = populated_service(host_count=40)
            sizes = {}
            for index in range(4):
                members = [f"host-{i}" for i in range(index * 9, index * 9 + 9)]
                service.create_group(f"g{index}", members)
                sizes[f"g{index}"] = len(members)
            total = 0.0
            for _ in range(rounds):
                for index in range(4):
                    service.multicast(f"g{index}", f"host-{index * 9}", 2.0)
                    total += (sizes[f"g{index}"] - 1) * 2.0
            for index in drops:
                service.drop_group(f"g{index}")
            # ledger unchanged by teardown
            assert sum(service.host_load_kbits().values()) == pytest.approx(total)
            # surviving groups still deliver and charge correctly
            for index in range(4):
                if index in drops:
                    continue
                result = service.multicast(f"g{index}", f"host-{index * 9}", 1.0)
                assert result.receiver_count == sizes[f"g{index}"]
                total += (sizes[f"g{index}"] - 1) * 1.0
            assert sum(service.host_load_kbits().values()) == pytest.approx(total)

        run()
