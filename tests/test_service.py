"""Tests for the multi-group multicast service."""

from __future__ import annotations

from random import Random

import pytest

from repro.multicast.service import MulticastService
from repro.multicast.session import SystemKind


def populated_service(host_count: int = 60, seed: int = 1) -> MulticastService:
    service = MulticastService(space_bits=16)
    rng = Random(seed)
    for index in range(host_count):
        service.register_host(f"host-{index}", rng.uniform(400, 1000))
    return service


class TestHostManagement:
    def test_register_and_list(self):
        service = MulticastService()
        service.register_host("a", 500)
        assert service.hosts == {"a": 500}

    def test_duplicate_host_rejected(self):
        service = MulticastService()
        service.register_host("a", 500)
        with pytest.raises(ValueError, match="already registered"):
            service.register_host("a", 600)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            MulticastService().register_host("a", 0)


class TestGroups:
    def test_create_and_multicast(self):
        service = populated_service()
        names = [f"host-{i}" for i in range(40)]
        group = service.create_group("video", names, kind=SystemKind.CAM_CHORD)
        assert len(group) == 40
        result = service.multicast("video", "host-3")
        assert result.receiver_count == 40

    def test_host_in_multiple_groups_gets_distinct_identifiers(self):
        service = populated_service()
        service.create_group("g1", [f"host-{i}" for i in range(30)])
        service.create_group("g2", [f"host-{i}" for i in range(30)])
        ident_g1 = service._members["g1"]["host-0"]
        ident_g2 = service._members["g2"]["host-0"]
        assert ident_g1 != ident_g2  # independent hash placement
        assert service.groups_of("host-0") == ["g1", "g2"]

    def test_unknown_member_rejected(self):
        service = populated_service()
        with pytest.raises(KeyError, match="unregistered"):
            service.create_group("g", ["host-0", "ghost"])

    def test_duplicate_group_rejected(self):
        service = populated_service()
        service.create_group("g", ["host-0", "host-1"])
        with pytest.raises(ValueError, match="already exists"):
            service.create_group("g", ["host-2"])

    def test_empty_group_rejected(self):
        service = populated_service()
        with pytest.raises(ValueError, match="at least one"):
            service.create_group("g", [])

    def test_drop_group(self):
        service = populated_service()
        service.create_group("g", ["host-0", "host-1"])
        service.drop_group("g")
        with pytest.raises(KeyError):
            service.group("g")

    def test_non_member_source_rejected(self):
        service = populated_service()
        service.create_group("g", ["host-0", "host-1"])
        with pytest.raises(KeyError, match="not a member"):
            service.multicast("g", "host-5")

    def test_capacity_follows_host_bandwidth_and_p(self):
        service = MulticastService(space_bits=14)
        service.register_host("slow", 420.0)
        service.register_host("fast", 980.0)
        group = service.create_group(
            "g", ["slow", "fast"], per_link_kbps=100.0
        )
        caps = {n.name: n.capacity for n in group.snapshot}
        assert caps == {"slow": 4, "fast": 9}


class TestCrossGroupAccounting:
    def test_host_load_accumulates_across_groups(self):
        service = populated_service()
        service.create_group("a", [f"host-{i}" for i in range(25)])
        service.create_group("b", [f"host-{i}" for i in range(10, 35)])
        for _ in range(5):
            service.multicast("a", "host-3", message_kbits=2.0)
            service.multicast("b", "host-20", message_kbits=2.0)
        load = service.host_load_kbits()
        # every forwarded kilobit is charged to exactly one host
        # (n-1 deliveries per multicast, 2 kbits each, 5 rounds, 2 groups)
        assert sum(load.values()) == pytest.approx((24 + 24) * 2.0 * 5)
        busiest = service.busiest_hosts(3)
        assert len(busiest) == 3
        assert busiest[0][1] >= busiest[1][1] >= busiest[2][1]

    def test_unused_hosts_carry_nothing(self):
        service = populated_service()
        service.create_group("a", [f"host-{i}" for i in range(10)])
        service.multicast("a", "host-0")
        load = service.host_load_kbits()
        assert load["host-59"] == 0.0
