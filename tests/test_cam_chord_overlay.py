"""CAM-Chord overlay: neighbor arithmetic and lookup correctness."""

from __future__ import annotations

import math
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.cam_chord import (
    CamChordOverlay,
    level_and_sequence,
    neighbor_levels,
)
from tests.conftest import make_snapshot, random_snapshot


class TestLevelAndSequence:
    def test_small_distances(self):
        # distances below the capacity live at level 0 with j = distance
        for d in range(1, 5):
            assert level_and_sequence(d, 5) == (0, d)

    def test_level_boundaries(self):
        assert level_and_sequence(4, 5) == (0, 4)
        assert level_and_sequence(5, 5) == (1, 1)
        assert level_and_sequence(24, 5) == (1, 4)
        assert level_and_sequence(25, 5) == (2, 1)

    def test_matches_float_formula_everywhere(self):
        """The integer arithmetic equals eqns (1)-(2) (floats are only
        trustworthy away from boundaries, so compare via invariants)."""
        for capacity in (2, 3, 7, 10):
            for distance in range(1, 3000):
                level, seq = level_and_sequence(distance, capacity)
                power = capacity**level
                assert power <= distance < power * capacity
                assert seq == distance // power
                assert 1 <= seq <= capacity - 1 or level == 0

    def test_sequence_bounds(self):
        for capacity in (2, 3, 4, 9):
            for distance in range(1, 2000):
                level, seq = level_and_sequence(distance, capacity)
                assert 1 <= seq < capacity

    def test_validation(self):
        with pytest.raises(ValueError):
            level_and_sequence(0, 3)
        with pytest.raises(ValueError):
            level_and_sequence(5, 1)


class TestNeighborLevels:
    def test_classic_chord(self):
        # capacity 2 over 2**19 identifiers: 19 levels, like Chord.
        assert neighbor_levels(2, 19) == 19

    def test_larger_capacity(self):
        assert neighbor_levels(8, 19) == math.ceil(19 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbor_levels(1, 19)


class TestNeighborTable:
    def test_capacity_two_is_classic_chord(self):
        snap = random_snapshot(10, 30, seed=3, capacity_range=(2, 2))
        overlay = CamChordOverlay(snap)
        node = snap.nodes[0]
        idents = sorted(overlay.neighbor_identifiers(node))
        expected = sorted(
            (node.ident + 2**i) % 1024 for i in range(10)
        )
        assert idents == expected

    def test_neighbor_count_scales_with_capacity(self):
        """|table| ~ (c-1) * ceil(log_c N): higher capacity, more ids."""
        snap = make_snapshot(19, [0, 100, 200], capacity=[2, 8, 64])
        overlay = CamChordOverlay(snap)
        counts = {
            n.capacity: len(overlay.neighbor_identifiers(n)) for n in snap
        }
        assert counts[2] == 19
        # capacity 8 over 2**19: six full levels of 7 identifiers plus a
        # truncated top level (only 1*8**6 < 2**19)
        assert counts[8] == 6 * 7 + 1
        # 64**4 > 2**19, so 4 levels but the top level is truncated
        assert counts[64] > counts[8] > counts[2]

    def test_rejects_capacity_below_two(self):
        snap = make_snapshot(8, [0, 10], capacity=1)
        with pytest.raises(ValueError, match="capacity >= 2"):
            CamChordOverlay(snap)

    def test_neighbors_distinct_and_never_self(self):
        snap = random_snapshot(12, 50, seed=9)
        overlay = CamChordOverlay(snap)
        for node in snap:
            neighbors = overlay.neighbors(node)
            idents = [n.ident for n in neighbors]
            assert len(idents) == len(set(idents))
            assert node.ident not in idents


class TestLookup:
    def test_every_key_from_every_start_small(self):
        snap = make_snapshot(7, [0, 5, 17, 40, 41, 90, 100, 127], capacity=3)
        overlay = CamChordOverlay(snap)
        for start in snap:
            for key in range(128):
                result = overlay.lookup(start, key)
                assert result.responsible.ident == snap.resolve(key).ident
                overlay.check_lookup_invariants(result, key)

    def test_single_node(self):
        snap = make_snapshot(7, [9], capacity=3)
        overlay = CamChordOverlay(snap)
        result = overlay.lookup(snap.node_at(9), 100)
        assert result.responsible.ident == 9
        assert result.hops == 0

    def test_hop_count_scaling(self):
        """Theorem 2: expected lookup length is O(log n / log c)."""
        rng = Random(4)
        snap = random_snapshot(19, 3000, seed=4, capacity_range=(8, 8))
        overlay = CamChordOverlay(snap)
        hops = []
        for _ in range(300):
            start = snap.random_node(rng)
            key = rng.randrange(2**19)
            hops.append(overlay.lookup(start, key).hops)
        mean = sum(hops) / len(hops)
        bound = 3 * math.log(3000) / math.log(8)  # generous constant
        assert mean <= bound

    def test_path_is_monotone_toward_key(self):
        snap = random_snapshot(14, 200, seed=6)
        overlay = CamChordOverlay(snap)
        rng = Random(1)
        for _ in range(50):
            start = snap.random_node(rng)
            key = rng.randrange(2**14)
            result = overlay.lookup(start, key)
            # The responsible node may sit just past the key, so check
            # monotonicity over the forwarding hops only.
            forwarding = result.path[:-1] if len(result.path) > 1 else result.path
            distances = [
                overlay.space.segment_size(node.ident, key) for node in forwarding
            ]
            # clockwise distance to the key strictly shrinks hop by hop
            assert all(a > b for a, b in zip(distances, distances[1:]))


@settings(max_examples=40, deadline=None)
@given(
    idents=st.sets(st.integers(min_value=0, max_value=1023), min_size=2, max_size=60),
    capacity=st.integers(min_value=2, max_value=12),
    key=st.integers(min_value=0, max_value=1023),
    start_index=st.integers(min_value=0),
)
def test_lookup_always_finds_responsible(idents, capacity, key, start_index):
    snap = make_snapshot(10, sorted(idents), capacity=capacity)
    overlay = CamChordOverlay(snap)
    start = snap.nodes[start_index % len(snap.nodes)]
    result = overlay.lookup(start, key)
    assert result.responsible.ident == snap.resolve(key).ident
