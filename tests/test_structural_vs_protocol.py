"""Cross-mode integration: live protocol vs structural snapshot.

On a converged ring with accurate neighbor tables, the live CAM-Chord
peer executes the *same* region-splitting code against the *same*
resolver answers as the structural simulation — so the implicit trees
must coincide exactly (same receivers at the same depths).  This pins
the two halves of the library together: any divergence means either
the protocol's tables or the structural resolver drifted.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.cam_koorde import cam_koorde_multicast
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.protocol import CamChordPeer, CamKoordePeer, Cluster


@pytest.fixture(scope="module")
def chord_cluster() -> Cluster:
    rng = Random(21)
    capacities = [rng.randint(4, 10) for _ in range(40)]
    cluster = Cluster(CamChordPeer, capacities, space_bits=12, seed=21)
    cluster.bootstrap()
    # extra settle so every neighbor-table slot is resolved
    cluster.run(200)
    return cluster


@pytest.fixture(scope="module")
def koorde_cluster() -> Cluster:
    rng = Random(22)
    capacities = [rng.randint(4, 10) for _ in range(40)]
    cluster = Cluster(CamKoordePeer, capacities, space_bits=12, seed=22)
    cluster.bootstrap()
    cluster.run(200)
    return cluster


class TestCamChordTreeEquivalence:
    def test_tables_fully_accurate(self, chord_cluster):
        assert chord_cluster.neighbor_table_accuracy() == 1.0

    def test_same_tree_as_structural(self, chord_cluster):
        cluster = chord_cluster
        snapshot = cluster.live_snapshot()
        overlay = CamChordOverlay(snapshot)
        for source_ident in list(cluster.live_members())[:5]:
            structural = cam_chord_multicast(
                overlay, snapshot.node_at(source_ident)
            )
            mid = cluster.multicast_from(source_ident)
            cluster.run(10)
            live_depths = cluster.monitor.received[mid]
            assert live_depths == structural.depth

    def test_live_capacity_bound(self, chord_cluster):
        cluster = chord_cluster
        snapshot = cluster.live_snapshot()
        overlay = CamChordOverlay(snapshot)
        source = snapshot.nodes[0]
        structural = cam_chord_multicast(overlay, source)
        for ident, count in structural.children_counts().items():
            assert count <= snapshot.node_at(ident).capacity


class TestCamKoordeTreeEquivalence:
    def test_same_receivers_and_depths(self, koorde_cluster):
        """Flooding depends on message timing, so live depths can beat
        the structural BFS by at most... nothing: with uniform latency
        BFS order == arrival order, so depths must match too."""
        cluster = koorde_cluster
        snapshot = cluster.live_snapshot()
        overlay = CamKoordeOverlay(snapshot)
        for source_ident in list(cluster.live_members())[:5]:
            structural = cam_koorde_multicast(
                overlay, snapshot.node_at(source_ident)
            )
            mid = cluster.multicast_from(source_ident)
            cluster.run(10)
            live = cluster.monitor.received[mid]
            assert set(live) == set(structural.depth)
            assert live == structural.depth
