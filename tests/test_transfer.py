"""Tests for the timed packet-level transfer simulation."""

from __future__ import annotations

from random import Random

import pytest

from repro.multicast.delivery import MulticastResult
from repro.sim.transfer import (
    analytic_bottleneck_kbps,
    simulate_tree_transfer,
)
from tests.conftest import make_snapshot


def two_level_tree() -> MulticastResult:
    # 0 -> {10, 20}; 10 -> {30}
    tree = MulticastResult(source_ident=0)
    tree.record_delivery(10, 0)
    tree.record_delivery(20, 0)
    tree.record_delivery(30, 10)
    return tree


class TestSingleHop:
    def test_one_child_times(self):
        snap = make_snapshot(8, [0, 10], capacity=4, bandwidth=[100.0, 100.0])
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        result = simulate_tree_transfer(tree, snap, message_kbits=100, packet_count=4)
        # full uplink to one child: 100 kbits at 100 kbps = 1 s total
        assert result.completion_time[10] == pytest.approx(1.0)
        # first packet (25 kbits) lands after 0.25 s
        assert result.first_packet_time[10] == pytest.approx(0.25)
        assert result.measured_throughput_kbps == pytest.approx(100.0)

    def test_two_children_split_uplink(self):
        snap = make_snapshot(
            8, [0, 10, 20], capacity=4, bandwidth=[100.0, 100.0, 100.0]
        )
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        tree.record_delivery(20, 0)
        result = simulate_tree_transfer(tree, snap, message_kbits=100, packet_count=4)
        # each child gets a 50-kbps share: 2 s for 100 kbits
        assert result.completion_time[10] == pytest.approx(2.0)
        assert result.completion_time[20] == pytest.approx(2.0)
        assert result.measured_throughput_kbps == pytest.approx(50.0)


class TestPipelining:
    def test_relay_overlaps_reception(self):
        """A relay starts forwarding after ONE packet, not the whole
        message: total time is far below sum-of-hops."""
        snap = make_snapshot(
            8, [0, 10, 30], capacity=4, bandwidth=[100.0, 100.0, 100.0]
        )
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        tree.record_delivery(30, 10)
        many = simulate_tree_transfer(tree, snap, message_kbits=100, packet_count=100)
        # store-and-forward of the full message would take 2.0 s; with
        # 100-packet pipelining the second hop trails by one packet slot
        assert many.completion_time[30] == pytest.approx(1.0 + 1.0 / 100, rel=1e-6)
        single = simulate_tree_transfer(tree, snap, message_kbits=100, packet_count=1)
        assert single.completion_time[30] == pytest.approx(2.0)

    def test_slow_relay_throttles_subtree(self):
        snap = make_snapshot(
            8, [0, 10, 30], capacity=4, bandwidth=[1000.0, 50.0, 1000.0]
        )
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        tree.record_delivery(30, 10)
        result = simulate_tree_transfer(tree, snap, message_kbits=100, packet_count=50)
        # node 30 receives at node 10's 50 kbps, not the source's 1000
        assert result.member_throughput_kbps(30) == pytest.approx(50.0, rel=0.05)

    def test_latency_adds_to_startup_not_rate(self):
        snap = make_snapshot(8, [0, 10], capacity=4, bandwidth=[100.0, 100.0])
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        with_lat = simulate_tree_transfer(
            tree, snap, message_kbits=100, packet_count=10,
            hop_latency=lambda a, b: 0.5,
        )
        without = simulate_tree_transfer(
            tree, snap, message_kbits=100, packet_count=10
        )
        assert with_lat.completion_time[10] == pytest.approx(
            without.completion_time[10] + 0.5
        )


class TestAnalyticAgreement:
    def test_long_message_converges_to_bottleneck(self):
        """The headline check: measured rate -> min B_x/d_x as the
        message grows (the Section 6.1 model is the fluid limit)."""
        from repro.multicast.cam_chord import cam_chord_multicast
        from repro.overlay.cam_chord import CamChordOverlay

        rng = Random(5)
        idents = sorted(rng.sample(range(1 << 12), 300))
        caps = [rng.randint(4, 10) for _ in idents]
        bws = [c * 100.0 + rng.uniform(0, 99) for c in caps]
        snap = make_snapshot(12, idents, capacity=caps, bandwidth=bws)
        overlay = CamChordOverlay(snap)
        tree = cam_chord_multicast(overlay, snap.nodes[0])

        analytic = analytic_bottleneck_kbps(tree, snap)
        long_result = simulate_tree_transfer(
            tree, snap, message_kbits=50_000, packet_count=64
        )
        assert long_result.measured_throughput_kbps == pytest.approx(
            analytic, rel=0.15
        )
        # short message: propagation dominates, rate well below analytic
        short_result = simulate_tree_transfer(
            tree, snap, message_kbits=10, packet_count=4
        )
        assert short_result.measured_throughput_kbps < analytic

    def test_measured_never_beats_analytic(self):
        from repro.multicast.cam_chord import cam_chord_multicast
        from repro.overlay.cam_chord import CamChordOverlay

        rng = Random(6)
        idents = sorted(rng.sample(range(1 << 12), 100))
        caps = [rng.randint(2, 8) for _ in idents]
        bws = [rng.uniform(400, 1000) for _ in idents]
        snap = make_snapshot(12, idents, capacity=caps, bandwidth=bws)
        overlay = CamChordOverlay(snap)
        for index in (0, 10, 50):
            tree = cam_chord_multicast(overlay, snap.nodes[index])
            result = simulate_tree_transfer(
                tree, snap, message_kbits=20_000, packet_count=32
            )
            assert (
                result.measured_throughput_kbps
                <= analytic_bottleneck_kbps(tree, snap) * 1.0001
            )


class TestValidation:
    def test_bad_inputs(self):
        snap = make_snapshot(8, [0], capacity=4, bandwidth=100.0)
        tree = MulticastResult(source_ident=0)
        with pytest.raises(ValueError):
            simulate_tree_transfer(tree, snap, message_kbits=0)
        with pytest.raises(ValueError):
            simulate_tree_transfer(tree, snap, message_kbits=10, packet_count=0)

    def test_missing_bandwidth_rejected(self):
        snap = make_snapshot(8, [0, 10], capacity=4)  # no bandwidths
        tree = two_level_tree()
        snap2 = make_snapshot(8, [0, 10, 20, 30], capacity=4)
        with pytest.raises(ValueError, match="bandwidth"):
            simulate_tree_transfer(tree, snap2, message_kbits=10)

    def test_source_only(self):
        snap = make_snapshot(8, [0], capacity=4, bandwidth=500.0)
        tree = MulticastResult(source_ident=0)
        result = simulate_tree_transfer(tree, snap, message_kbits=10)
        assert result.session_completion == 0.0
        assert analytic_bottleneck_kbps(tree, snap) == 500.0


class TestUplinkBudget:
    def test_free_uplink_starts_immediately(self):
        from repro.sim.transfer import UplinkBudget

        budget = UplinkBudget()
        start, done = budget.reserve("h", now=1.0, duration=0.5)
        assert (start, done) == (1.0, 1.5)
        assert budget.deferrals() == 0
        assert budget.free_at("h") == 1.5

    def test_busy_uplink_defers(self):
        from repro.sim.transfer import UplinkBudget

        budget = UplinkBudget()
        budget.reserve("h", now=0.0, duration=2.0)
        start, done = budget.reserve("h", now=1.0, duration=0.5)
        assert (start, done) == (2.0, 2.5)
        assert budget.deferrals("h") == 1
        assert budget.backlog("h", 1.0) == pytest.approx(1.5)

    def test_hosts_are_independent(self):
        from repro.sim.transfer import UplinkBudget

        budget = UplinkBudget()
        budget.reserve("a", now=0.0, duration=5.0)
        start, _ = budget.reserve("b", now=0.0, duration=1.0)
        assert start == 0.0
        assert budget.deferrals() == 0
        assert budget.reservations() == 2

    def test_negative_duration_rejected(self):
        from repro.sim.transfer import UplinkBudget

        budget = UplinkBudget()
        with pytest.raises(ValueError, match=">= 0"):
            budget.reserve("h", now=0.0, duration=-1.0)

    def test_gap_after_idle_does_not_defer(self):
        from repro.sim.transfer import UplinkBudget

        budget = UplinkBudget()
        budget.reserve("h", now=0.0, duration=1.0)
        start, _ = budget.reserve("h", now=3.0, duration=1.0)
        assert start == 3.0  # uplink went idle at 1.0; no deferral
        assert budget.deferrals("h") == 0


class TestBudgetHook:
    def test_no_budget_path_unchanged(self):
        from repro.multicast.cam_chord import cam_chord_multicast
        from repro.overlay.cam_chord import CamChordOverlay

        # the default (budget=None) path must be byte-identical to the
        # historical per-child-share model
        rng = Random(9)
        idents = sorted(rng.sample(range(1 << 12), 60))
        caps = [rng.randint(2, 8) for _ in idents]
        bws = [rng.uniform(400, 1000) for _ in idents]
        snap = make_snapshot(12, idents, capacity=caps, bandwidth=bws)
        overlay = CamChordOverlay(snap)
        tree = cam_chord_multicast(overlay, snap.nodes[0])
        a = simulate_tree_transfer(tree, snap, message_kbits=500, packet_count=8)
        b = simulate_tree_transfer(
            tree, snap, message_kbits=500, packet_count=8, budget=None
        )
        assert a.completion_time == b.completion_time
        assert a.first_packet_time == b.first_packet_time

    def test_shared_budget_serializes_two_trees(self):
        from repro.sim.transfer import UplinkBudget

        # two sends rooted at the same host against one shared budget:
        # the second must queue behind the first's serialization
        snap = make_snapshot(8, [0, 10, 20], capacity=4, bandwidth=100.0)
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        tree.record_delivery(20, 0)
        budget = UplinkBudget()
        first = simulate_tree_transfer(
            tree, snap, message_kbits=100, packet_count=2, budget=budget
        )
        second = simulate_tree_transfer(
            tree, snap, message_kbits=100, packet_count=2, budget=budget
        )
        assert budget.deferrals(0) > 0
        # every receiver in send 2 lands after send 1's uplink is done
        second_receivers = [
            t for ident, t in second.completion_time.items() if ident != 0
        ]
        assert min(second_receivers) > max(first.completion_time.values()) - 1e-9

    def test_start_time_places_send_on_shared_clock(self):
        from repro.sim.transfer import UplinkBudget

        snap = make_snapshot(8, [0, 10], capacity=4, bandwidth=100.0)
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        budget = UplinkBudget()
        result = simulate_tree_transfer(
            tree, snap, message_kbits=100, packet_count=4,
            budget=budget, start_time=5.0,
        )
        # 100 kbits at 100 kbps starting at t=5
        assert result.completion_time[10] == pytest.approx(6.0)
        assert budget.free_at(0) == pytest.approx(6.0)

    def test_host_key_maps_ledger_keys(self):
        from repro.sim.transfer import UplinkBudget

        snap = make_snapshot(8, [0, 10], capacity=4, bandwidth=100.0)
        tree = MulticastResult(source_ident=0)
        tree.record_delivery(10, 0)
        budget = UplinkBudget()
        simulate_tree_transfer(
            tree, snap, message_kbits=10, packet_count=1,
            budget=budget, host_key=lambda ident: f"name-{ident}",
        )
        assert budget.free_at("name-0") > 0.0
        assert budget.free_at(0) == 0.0
