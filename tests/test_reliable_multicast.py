"""Tests for the acknowledged-and-repaired CAM-Chord multicast.

The baseline Section 3.4 routine is fire-and-forget: a stale neighbor
entry silently loses the whole subtree behind it.  The reliable
extension acks every region handoff and, when a child stays silent,
re-resolves the region's owner via a lookup and resends — turning
crash-windows from subtree losses into one extra round trip.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.protocol import CamChordPeer, Cluster, ProtocolConfig


def build(reliable: bool, count: int = 40, seed: int = 51, loss: float = 0.0):
    rng = Random(seed)
    capacities = [rng.randint(4, 10) for _ in range(count)]
    cluster = Cluster(
        CamChordPeer,
        capacities,
        space_bits=13,
        seed=seed,
        loss_rate=loss,
        config=ProtocolConfig(reliable_multicast=reliable),
    )
    cluster.bootstrap()
    return cluster


class TestStableRing:
    def test_reliable_mode_full_delivery_no_duplicates(self):
        cluster = build(reliable=True)
        mid = cluster.multicast_from(cluster.random_live_peer(Random(0)).ident)
        cluster.run(15)
        assert cluster.delivery_ratio(mid) == 1.0
        assert cluster.monitor.duplicates.get(mid, 0) == 0


class TestCrashWindow:
    @pytest.mark.parametrize("reliable", [False, True])
    def test_delivery_after_crashes(self, reliable):
        cluster = build(reliable=reliable, seed=52)
        survivors_needed = cluster.random_live_peer(Random(1)).ident
        victims = [
            ident
            for ident in sorted(cluster.live_members())[::4]
            if ident != survivors_needed
        ]
        for victim in victims:
            cluster.remove_peer(victim, crash=True)
        mid = cluster.multicast_from(survivors_needed)
        # repair needs several timeout+stabilize+lookup rounds per dead
        # link along the deepest repaired path
        cluster.run(90)
        ratio = cluster.delivery_ratio(mid)
        if reliable:
            assert ratio > 0.97
        # record both so the comparison below is meaningful
        type(self).ratios = getattr(type(self), "ratios", {})
        type(self).ratios[reliable] = ratio

    def test_reliable_beats_baseline(self):
        ratios = getattr(type(self), "ratios", {})
        if len(ratios) == 2:
            assert ratios[True] >= ratios[False]


class TestLossyLinks:
    def test_reliable_mode_survives_message_loss(self):
        cluster = build(reliable=True, loss=0.08, seed=53)
        mid = cluster.multicast_from(cluster.random_live_peer(Random(2)).ident)
        cluster.run(20)
        assert cluster.delivery_ratio(mid) > 0.98

    def test_baseline_loses_subtrees_to_message_loss(self):
        cluster = build(reliable=False, loss=0.08, seed=53)
        ratios = []
        for _ in range(3):
            mid = cluster.multicast_from(cluster.random_live_peer(Random(2)).ident)
            cluster.run(20)
            ratios.append(cluster.delivery_ratio(mid))
        assert min(ratios) < 1.0
