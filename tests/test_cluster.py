"""Tests for the cluster driver API."""

from __future__ import annotations

from random import Random

import pytest

from repro.protocol import CamChordPeer, Cluster
from repro.sim.latency import UniformLatency


@pytest.fixture(scope="module")
def cluster() -> Cluster:
    rng = Random(31)
    capacities = [rng.randint(4, 10) for _ in range(25)]
    cluster = Cluster(
        CamChordPeer,
        capacities,
        bandwidths=[600.0] * 25,
        space_bits=12,
        seed=31,
        latency=UniformLatency(0.01, 0.05),
    )
    cluster.bootstrap()
    return cluster


class TestClusterApi:
    def test_live_members_and_peers_agree(self, cluster):
        assert {p.ident for p in cluster.live_peers()} == cluster.live_members()
        assert len(cluster.live_members()) == 25

    def test_live_snapshot_mirrors_peers(self, cluster):
        snapshot = cluster.live_snapshot()
        assert len(snapshot) == len(cluster.live_members())
        for peer in cluster.live_peers():
            node = snapshot.node_at(peer.ident)
            assert node.capacity == peer.capacity
            assert node.bandwidth_kbps == peer.bandwidth_kbps

    def test_random_live_peer_seeded(self, cluster):
        a = cluster.random_live_peer(Random(1)).ident
        b = cluster.random_live_peer(Random(1)).ident
        assert a == b

    def test_add_peer_uses_fresh_identifier(self, cluster):
        before = set(cluster.peers)
        newcomer = cluster.add_peer(capacity=5, bandwidth=700.0)
        assert newcomer.ident not in before
        cluster.run(60)
        assert newcomer.alive

    def test_remove_unknown_peer_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster.remove_peer(-1)

    def test_delivery_ratio_of_fresh_message(self, cluster):
        mid = cluster.multicast_from(cluster.random_live_peer(Random(2)).ident)
        cluster.run(10)
        assert cluster.delivery_ratio(mid) == 1.0


class TestClusterEdgeCases:
    def test_single_member_cluster(self):
        cluster = Cluster(CamChordPeer, [4], space_bits=10, seed=1)
        cluster.bootstrap()
        assert cluster.ring_consistent()
        mid = cluster.multicast_from(cluster.live_peers()[0].ident)
        cluster.run(5)
        assert cluster.delivery_ratio(mid) == 1.0

    def test_all_but_two_crash(self):
        rng = Random(7)
        cluster = Cluster(
            CamChordPeer, [rng.randint(4, 8) for _ in range(12)],
            space_bits=10, seed=7,
        )
        cluster.bootstrap()
        for victim in sorted(cluster.live_members())[:-2]:
            cluster.remove_peer(victim, crash=True)
        cluster.run(120)
        assert len(cluster.live_members()) == 2
        assert cluster.ring_consistent()

    def test_lossy_network_still_converges(self):
        rng = Random(8)
        cluster = Cluster(
            CamChordPeer, [rng.randint(4, 8) for _ in range(15)],
            space_bits=10, seed=8, loss_rate=0.1,
        )
        cluster.bootstrap()
        assert cluster.ring_consistent()
