"""Tests for group generation."""

from __future__ import annotations

import json

import pytest

from repro.capacity.distributions import (
    FixedCapacity,
    HeavyTailCapacity,
    UniformBandwidth,
    UniformCapacity,
)
from repro.workloads import GroupSpec, generate_group


class TestGroupSpec:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError, match="exactly one"):
            GroupSpec(size=10)
        with pytest.raises(ValueError, match="exactly one"):
            GroupSpec(
                size=10,
                capacities=UniformCapacity(4, 10),
                bandwidths=UniformBandwidth(),
                per_link_kbps=100,
            )

    def test_bandwidth_mode_needs_p(self):
        with pytest.raises(ValueError, match="per_link_kbps"):
            GroupSpec(size=10, bandwidths=UniformBandwidth())

    def test_size_validated(self):
        with pytest.raises(ValueError):
            GroupSpec(size=0, capacities=UniformCapacity(4, 10))


class TestGroupSpecJson:
    """The FaultPlan-style JSON value contract on group workloads."""

    SPECS = [
        GroupSpec(size=40, space_bits=14, capacities=UniformCapacity(4, 10)),
        GroupSpec(size=25, capacities=FixedCapacity(6), min_capacity=2),
        GroupSpec(size=30, capacities=HeavyTailCapacity(2, 32, 1.6)),
        GroupSpec(
            size=50,
            bandwidths=UniformBandwidth(400, 1000),
            per_link_kbps=100.0,
            min_capacity=4,
        ),
    ]

    def test_round_trip_equality(self):
        for spec in self.SPECS:
            raw = json.loads(json.dumps(spec.to_json_dict()))
            assert GroupSpec.from_json_dict(raw) == spec

    def test_round_trip_generates_identical_group(self):
        for spec in self.SPECS:
            reloaded = GroupSpec.from_json_dict(
                json.loads(json.dumps(spec.to_json_dict()))
            )
            first = generate_group(spec, seed=7)
            second = generate_group(reloaded, seed=7)
            assert [
                (n.ident, n.capacity, n.bandwidth_kbps) for n in first
            ] == [(n.ident, n.capacity, n.bandwidth_kbps) for n in second]

    def test_unknown_distribution_rejected(self):
        raw = GroupSpec(size=10, capacities=UniformCapacity(4, 10)).to_json_dict()
        raw["capacities"]["kind"] = "CauchyCapacity"
        with pytest.raises(ValueError, match="unknown capacity distribution"):
            GroupSpec.from_json_dict(raw)


class TestGenerateGroup:
    def test_capacity_mode(self):
        spec = GroupSpec(size=200, space_bits=14, capacities=UniformCapacity(4, 10))
        snap = generate_group(spec, seed=1)
        assert len(snap) == 200
        assert all(4 <= n.capacity <= 10 for n in snap)
        assert all(n.bandwidth_kbps == 0.0 for n in snap)

    def test_bandwidth_mode(self):
        spec = GroupSpec(
            size=200,
            space_bits=14,
            bandwidths=UniformBandwidth(400, 1000),
            per_link_kbps=100,
            min_capacity=4,
        )
        snap = generate_group(spec, seed=1)
        for node in snap:
            assert 400 <= node.bandwidth_kbps <= 1000
            assert node.capacity == max(4, int(node.bandwidth_kbps // 100))

    def test_min_capacity_floor(self):
        spec = GroupSpec(
            size=50,
            space_bits=14,
            capacities=UniformCapacity(1, 3),
            min_capacity=4,
        )
        snap = generate_group(spec, seed=2)
        assert all(n.capacity == 4 for n in snap)

    def test_deterministic(self):
        spec = GroupSpec(size=100, space_bits=14, capacities=UniformCapacity(4, 10))
        first = generate_group(spec, seed=9)
        second = generate_group(spec, seed=9)
        assert [(n.ident, n.capacity) for n in first] == [
            (n.ident, n.capacity) for n in second
        ]
        third = generate_group(spec, seed=10)
        assert [n.ident for n in first] != [n.ident for n in third]
