"""Tests for group generation."""

from __future__ import annotations

import json

import pytest

from repro.capacity.distributions import (
    FixedCapacity,
    HeavyTailCapacity,
    UniformBandwidth,
    UniformCapacity,
)
from repro.workloads import GroupSpec, generate_group


class TestGroupSpec:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError, match="exactly one"):
            GroupSpec(size=10)
        with pytest.raises(ValueError, match="exactly one"):
            GroupSpec(
                size=10,
                capacities=UniformCapacity(4, 10),
                bandwidths=UniformBandwidth(),
                per_link_kbps=100,
            )

    def test_bandwidth_mode_needs_p(self):
        with pytest.raises(ValueError, match="per_link_kbps"):
            GroupSpec(size=10, bandwidths=UniformBandwidth())

    def test_size_validated(self):
        with pytest.raises(ValueError):
            GroupSpec(size=0, capacities=UniformCapacity(4, 10))


class TestGroupSpecJson:
    """The FaultPlan-style JSON value contract on group workloads."""

    SPECS = [
        GroupSpec(size=40, space_bits=14, capacities=UniformCapacity(4, 10)),
        GroupSpec(size=25, capacities=FixedCapacity(6), min_capacity=2),
        GroupSpec(size=30, capacities=HeavyTailCapacity(2, 32, 1.6)),
        GroupSpec(
            size=50,
            bandwidths=UniformBandwidth(400, 1000),
            per_link_kbps=100.0,
            min_capacity=4,
        ),
    ]

    def test_round_trip_equality(self):
        for spec in self.SPECS:
            raw = json.loads(json.dumps(spec.to_json_dict()))
            assert GroupSpec.from_json_dict(raw) == spec

    def test_round_trip_generates_identical_group(self):
        for spec in self.SPECS:
            reloaded = GroupSpec.from_json_dict(
                json.loads(json.dumps(spec.to_json_dict()))
            )
            first = generate_group(spec, seed=7)
            second = generate_group(reloaded, seed=7)
            assert [
                (n.ident, n.capacity, n.bandwidth_kbps) for n in first
            ] == [(n.ident, n.capacity, n.bandwidth_kbps) for n in second]

    def test_unknown_distribution_rejected(self):
        raw = GroupSpec(size=10, capacities=UniformCapacity(4, 10)).to_json_dict()
        raw["capacities"]["kind"] = "CauchyCapacity"
        with pytest.raises(ValueError, match="unknown capacity distribution"):
            GroupSpec.from_json_dict(raw)


class TestGenerateGroup:
    def test_capacity_mode(self):
        spec = GroupSpec(size=200, space_bits=14, capacities=UniformCapacity(4, 10))
        snap = generate_group(spec, seed=1)
        assert len(snap) == 200
        assert all(4 <= n.capacity <= 10 for n in snap)
        assert all(n.bandwidth_kbps == 0.0 for n in snap)

    def test_bandwidth_mode(self):
        spec = GroupSpec(
            size=200,
            space_bits=14,
            bandwidths=UniformBandwidth(400, 1000),
            per_link_kbps=100,
            min_capacity=4,
        )
        snap = generate_group(spec, seed=1)
        for node in snap:
            assert 400 <= node.bandwidth_kbps <= 1000
            assert node.capacity == max(4, int(node.bandwidth_kbps // 100))

    def test_min_capacity_floor(self):
        spec = GroupSpec(
            size=50,
            space_bits=14,
            capacities=UniformCapacity(1, 3),
            min_capacity=4,
        )
        snap = generate_group(spec, seed=2)
        assert all(n.capacity == 4 for n in snap)

    def test_deterministic(self):
        spec = GroupSpec(size=100, space_bits=14, capacities=UniformCapacity(4, 10))
        first = generate_group(spec, seed=9)
        second = generate_group(spec, seed=9)
        assert [(n.ident, n.capacity) for n in first] == [
            (n.ident, n.capacity) for n in second
        ]
        third = generate_group(spec, seed=10)
        assert [n.ident for n in first] != [n.ident for n in third]


class TestServiceWorkloadSpec:
    def test_round_trips_through_json(self):
        from repro.workloads import ServiceWorkloadSpec

        spec = ServiceWorkloadSpec(
            groups=20, hosts=80, group_size=6, horizon_s=30.0,
            send_interval_s=4.0, churn_rate=0.05, mean_hold_s=25.0,
            message_kbits=16.0,
        )
        blob = json.dumps(spec.to_json_dict(), sort_keys=True)
        reloaded = ServiceWorkloadSpec.from_json_dict(json.loads(blob))
        assert reloaded == spec
        assert json.dumps(reloaded.to_json_dict(), sort_keys=True) == blob

    def test_validation(self):
        from repro.workloads import ServiceWorkloadSpec

        with pytest.raises(ValueError):
            ServiceWorkloadSpec(groups=0, hosts=10, group_size=4, horizon_s=10.0)
        with pytest.raises(ValueError):
            ServiceWorkloadSpec(groups=2, hosts=3, group_size=4, horizon_s=10.0)
        with pytest.raises(ValueError):
            ServiceWorkloadSpec(groups=2, hosts=10, group_size=4, horizon_s=0.0)


class TestGenerateServiceWorkload:
    def _spec(self, **overrides):
        from repro.workloads import ServiceWorkloadSpec

        base = dict(
            groups=15, hosts=60, group_size=5, horizon_s=25.0,
            send_interval_s=3.0, churn_rate=0.1, mean_hold_s=20.0,
        )
        base.update(overrides)
        return ServiceWorkloadSpec(**base)

    def test_deterministic_per_seed(self):
        from repro.workloads import generate_service_workload

        spec = self._spec()
        assert generate_service_workload(spec, seed=5) == (
            generate_service_workload(spec, seed=5)
        )
        assert generate_service_workload(spec, seed=5) != (
            generate_service_workload(spec, seed=6)
        )

    def test_events_sorted_and_legal(self):
        from repro.workloads import generate_service_workload

        workload = generate_service_workload(self._spec(), seed=2)
        times = [event.time for event in workload.events]
        assert times == sorted(times)
        # walk the membership forward: every event must be legal at its
        # firing time against the group state the generator promised
        members: dict[str, set[str]] = {}
        alive: set[str] = set()
        for event in workload.events:
            if event.action == "create":
                assert event.group not in alive
                alive.add(event.group)
                members[event.group] = set(event.hosts)
                assert len(event.hosts) >= 2
            elif event.action == "join":
                (host,) = event.hosts
                assert event.group in alive and host not in members[event.group]
                members[event.group].add(host)
            elif event.action == "leave":
                (host,) = event.hosts
                assert event.group in alive and host in members[event.group]
                assert len(members[event.group]) > 1
                members[event.group].remove(host)
            elif event.action == "send":
                (host,) = event.hosts
                assert event.group in alive and host in members[event.group]
            elif event.action == "drop":
                assert event.group in alive
                alive.remove(event.group)
            else:  # pragma: no cover
                raise AssertionError(event.action)

    def test_counts_match_spec(self):
        from repro.workloads import generate_service_workload

        workload = generate_service_workload(self._spec(groups=15), seed=0)
        counts = workload.counts()
        assert counts["create"] == 15
        assert counts["send"] > 0
        assert len(workload.hosts) == 60

    def test_no_hold_means_no_drops(self):
        from repro.workloads import generate_service_workload

        workload = generate_service_workload(
            self._spec(mean_hold_s=None, churn_rate=0.0), seed=1
        )
        counts = workload.counts()
        assert "drop" not in counts
        assert "join" not in counts and "leave" not in counts
