"""Tests for the El-Ansary broadcast baseline."""

from __future__ import annotations

import math

from repro.multicast.chord_broadcast import (
    chord_broadcast,
    select_broadcast_children,
)
from repro.overlay.chord import ChordOverlay
from tests.conftest import make_snapshot, random_snapshot


class TestSelectBroadcastChildren:
    def test_children_partition_segment(self):
        snap = random_snapshot(10, 60, seed=1)
        overlay = ChordOverlay(snap, base=2)
        node = snap.nodes[0]
        limit = overlay.space.sub(node.ident, 1)
        children = select_broadcast_children(overlay, node, limit)
        # children are distinct actual fingers inside the segment
        idents = [child.ident for child, _ in children]
        assert len(idents) == len(set(idents))
        # consecutive subsegments tile (first_child, limit]
        for (child, sublimit), (nxt, _) in zip(children, children[1:]):
            assert overlay.space.add(sublimit, 1) == nxt.ident
        assert children[-1][1] == limit

    def test_empty_region(self):
        snap = random_snapshot(10, 10, seed=2)
        overlay = ChordOverlay(snap, base=2)
        node = snap.nodes[0]
        assert select_broadcast_children(overlay, node, node.ident) == []

    def test_first_child_is_successor(self):
        snap = random_snapshot(10, 40, seed=3)
        overlay = ChordOverlay(snap, base=2)
        node = snap.nodes[0]
        limit = overlay.space.sub(node.ident, 1)
        children = select_broadcast_children(overlay, node, limit)
        assert children[0][0].ident == snap.successor(node).ident


class TestChordBroadcast:
    def test_root_degree_matches_distinct_fingers(self):
        """El-Ansary's root forwards to every distinct finger: out-degree
        ~ (base-1) * log_base(n), way above the base."""
        snap = random_snapshot(14, 2000, seed=4)
        overlay = ChordOverlay(snap, base=2)
        source = snap.nodes[0]
        tree = chord_broadcast(overlay, source)
        root_degree = tree.children_counts()[source.ident]
        assert root_degree > math.log2(2000) * 0.6
        distinct_fingers = len(overlay.neighbors(source))
        assert root_degree <= distinct_fingers

    def test_unbalanced_subtrees(self):
        """The paper's Section 3.4 critique: subtree depths under the
        root range from O(1) to O(log n)."""
        snap = random_snapshot(14, 2000, seed=5)
        overlay = ChordOverlay(snap, base=2)
        source = snap.nodes[0]
        tree = chord_broadcast(overlay, source)
        depth_by_root_child: dict[int, int] = {}
        for ident in tree.parent:
            path = tree.path_to_source(ident)
            if len(path) < 2:
                continue
            top = path[-2]  # the root's child this node sits under
            depth = len(path) - 1
            depth_by_root_child[top] = max(depth_by_root_child.get(top, 0), depth)
        depths = sorted(depth_by_root_child.values())
        assert depths[0] <= 2          # some subtree is trivially shallow
        assert depths[-1] >= depths[0] + 3  # and some is much deeper

    def test_small_ring(self):
        snap = make_snapshot(6, [0, 5, 20, 40], capacity=2)
        overlay = ChordOverlay(snap, base=2)
        tree = chord_broadcast(overlay, snap.node_at(5))
        tree.verify_exactly_once({0, 5, 20, 40})

    def test_every_source_covers(self):
        snap = random_snapshot(10, 50, seed=6)
        overlay = ChordOverlay(snap, base=4)
        members = {n.ident for n in snap}
        for source in snap.nodes:
            chord_broadcast(overlay, source).verify_exactly_once(members)


class TestBalancedVsElAnsary:
    def test_same_coverage_different_shape(self):
        from repro.multicast.cam_chord import cam_chord_multicast

        snap = random_snapshot(13, 1500, seed=7)
        overlay = ChordOverlay(snap, base=4)
        source = snap.nodes[0]
        members = {n.ident for n in snap}
        balanced = cam_chord_multicast(overlay, source)
        el_ansary = chord_broadcast(overlay, source)
        balanced.verify_exactly_once(members)
        el_ansary.verify_exactly_once(members)
        assert max(balanced.children_counts().values()) <= 4
        assert max(el_ansary.children_counts().values()) > 4
