"""Tests for the repro.trace subsystem.

Covers the tracer core (cheap-when-disabled, marks, absorption), the
event schema, the exporters, the live-cluster instrumentation, the
causal reconstructor's headline guarantee — every undelivered member
of a lost multicast gets a named lost hop — the serial/parallel trace
equivalence through the experiment runner, and the inspection CLI.
"""

from __future__ import annotations

import json
from random import Random

import pytest

from repro.churn.runner import ChurnExperiment
from repro.churn.runner import main as churn_main
from repro.churn.trace import poisson_trace
from repro.experiments.runner import main as experiments_main
from repro.protocol import CamChordPeer, CamKoordePeer
from repro.protocol.cluster import Cluster
from repro.trace import causal, export, schema
from repro.trace.__main__ import main as trace_main
from repro.trace.registry import ObsDelta, since, snapshot
from repro.trace.tracer import TRACER, TraceEvent, Tracer, resequence


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with a disabled, empty tracer."""
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


class TestTracer:
    def test_disabled_by_default_and_instrumentation_pattern(self):
        tracer = Tracer()
        assert not tracer.enabled
        # the instrumentation pattern: emit is only reached when enabled
        if tracer.enabled:
            tracer.emit(0.0, "net", "send")
        assert len(tracer) == 0

    def test_emit_sequences_and_names(self):
        tracer = Tracer()
        tracer.enable()
        tracer.emit(1.0, "net", "send", src=1, dst=2)
        tracer.emit(2.0, "net", "deliver", src=1, dst=2)
        events = tracer.events()
        assert [event.seq for event in events] == [0, 1]
        assert events[0].name == "net.send"
        assert events[0].data == {"src": 1, "dst": 2}

    def test_emit_allows_header_names_in_data(self):
        # net events carry a `kind` payload field; the positional-only
        # header must not collide with it.
        tracer = Tracer()
        tracer.enable()
        tracer.emit(0.5, "net", "send", kind="ping", time=3, layer="x")
        event = tracer.events()[0]
        assert event.kind == "send" and event.time == 0.5
        assert event.data == {"kind": "ping", "time": 3, "layer": "x"}

    def test_enable_resets_by_default(self):
        tracer = Tracer()
        tracer.enable()
        tracer.emit(0.0, "sim", "spawn")
        tracer.enable()
        assert len(tracer) == 0
        tracer.emit(0.0, "sim", "spawn")
        tracer.enable(reset=False)
        assert len(tracer) == 1

    def test_mark_and_events_since(self):
        tracer = Tracer()
        tracer.enable()
        tracer.emit(0.0, "sim", "spawn", pid=1)
        mark = tracer.mark()
        tracer.emit(1.0, "sim", "exit", pid=1)
        delta = tracer.events_since(mark)
        assert [event.name for event in delta] == ["sim.exit"]

    def test_absorb_resequences(self):
        tracer = Tracer()
        tracer.enable()
        tracer.emit(0.0, "sim", "spawn")
        foreign = [TraceEvent(7, 3.0, "net", "drop", {"reason": "loss"})]
        tracer.absorb(foreign)
        events = tracer.events()
        assert [event.seq for event in events] == [0, 1]
        assert events[1].name == "net.drop"
        assert events[1].data == {"reason": "loss"}

    def test_resequence(self):
        scrambled = [
            TraceEvent(10, 0.0, "sim", "spawn", {}),
            TraceEvent(3, 1.0, "sim", "exit", {}),
        ]
        assert [event.seq for event in resequence(scrambled)] == [0, 1]

    def test_registry_delta_roundtrip(self):
        TRACER.enable()
        before = snapshot()
        TRACER.emit(0.0, "proto", "crash", ident=5)
        delta = since(before)
        assert [event.name for event in delta.events] == ["proto.crash"]
        merged = ObsDelta() + delta
        assert len(merged.events) == 1


class TestSchema:
    def test_wellformed_event_passes(self):
        event = TraceEvent(0, 1.0, "net", "drop",
                           {"src": 1, "dst": 2, "kind": "ping", "reason": "loss"})
        assert schema.validate_event(event) == []

    def test_unknown_name_rejected(self):
        event = TraceEvent(0, 0.0, "net", "teleport", {})
        assert any("unknown" in p for p in schema.validate_event(event))

    def test_missing_and_extra_fields_rejected(self):
        missing = TraceEvent(0, 0.0, "net", "send", {"src": 1})
        assert any("missing" in p for p in schema.validate_event(missing))
        extra = TraceEvent(
            0, 0.0, "proto", "crash", {"ident": 1, "bogus": 2}
        )
        assert any("unexpected" in p for p in schema.validate_event(extra))

    def test_bad_drop_reason_rejected(self):
        event = TraceEvent(0, 0.0, "net", "drop",
                           {"src": 1, "dst": 2, "kind": "m", "reason": "gremlins"})
        assert any("reason" in p for p in schema.validate_event(event))

    def test_sequence_monotonicity_checked(self):
        events = [
            TraceEvent(0, 0.0, "proto", "crash", {"ident": 1}),
            TraceEvent(0, 0.0, "proto", "crash", {"ident": 2}),
        ]
        assert any("increasing" in p for p in schema.validate_events(events))


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        events = (
            TraceEvent(0, 0.25, "net", "send",
                       {"src": 1, "dst": 2, "kind": "ping", "delay": 0.02}),
            TraceEvent(1, 0.27, "net", "deliver",
                       {"src": 1, "dst": 2, "kind": "ping"}),
        )
        path = tmp_path / "trace.jsonl"
        assert export.write_jsonl(events, path) == 2
        assert export.read_jsonl(path) == events

    def test_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            export.read_jsonl(path)

    def test_chrome_trace_structure(self):
        events = [
            TraceEvent(0, 1.5, "mc", "deliver",
                       {"mid": 3, "ident": 7, "depth": 1, "parent": 2}),
        ]
        chrome = export.to_chrome_trace(events)
        instants = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "mc.deliver#3"
        assert instants[0]["ts"] == 1_500_000
        metas = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {
            "sim layer", "net layer", "proto layer", "mc layer"
        }


class TestInstrumentation:
    """The live stack emits schema-valid events; disabled emits nothing."""

    def _small_cluster(self, peer_class=CamChordPeer):
        cluster = Cluster(peer_class, [4] * 8, space_bits=12, seed=2)
        cluster.bootstrap()
        return cluster

    def test_disabled_run_emits_nothing(self):
        self._small_cluster()
        assert len(TRACER) == 0

    def test_enabled_run_is_schema_valid_and_covers_layers(self):
        TRACER.enable()
        cluster = self._small_cluster()
        mid = cluster.multicast_from(cluster.live_peers()[0].ident)
        cluster.run(3.0)
        events = TRACER.events()
        assert schema.validate_events(events) == []
        names = {event.name for event in events}
        assert {"sim.spawn", "sim.sleep", "net.send", "net.deliver",
                "proto.join", "proto.stabilize", "mc.origin",
                "mc.deliver"} <= names
        record = causal.reconstruct(events, mid)
        assert record.delivery_ratio() == 1.0
        assert not record.undelivered

    def test_flood_system_traces_dups(self):
        TRACER.enable()
        cluster = self._small_cluster(CamKoordePeer)
        mid = cluster.multicast_from(cluster.live_peers()[0].ident)
        cluster.run(3.0)
        events = TRACER.events()
        assert schema.validate_events(events) == []
        record = causal.reconstruct(events, mid)
        assert not record.undelivered
        assert record.duplicates  # flooding always re-offers somewhere


class TestCausalLostHops:
    """The headline guarantee: every undelivered member of a lost
    multicast gets a named (sender, receiver, event) lost hop."""

    def _traced_churn_events(self, seed=3):
        TRACER.enable()
        rng = Random(seed)
        capacities = [rng.randint(4, 10) for _ in range(32)]
        trace = poisson_trace(
            60.0, join_rate=0.3, depart_rate=0.3, rng=Random(seed + 1)
        )
        experiment = ChurnExperiment(
            CamChordPeer, capacities, space_bits=16, seed=seed
        )
        experiment.run(trace, system_name="cam-chord")
        return TRACER.events()

    def test_every_undelivered_member_named(self):
        events = self._traced_churn_events()
        assert schema.validate_events(events) == []
        lost = causal.lost_multicasts(events)
        assert lost, "expected churn at this rate to lose at least one multicast"
        named_a_drop = False
        for mid in lost:
            record = causal.reconstruct(events, mid)
            hops = causal.lost_hops(record)
            # the guarantee: one named hop per undelivered member
            assert set(hops) == record.undelivered
            for member, hop in hops.items():
                assert hop.receiver == member or "dropped" in hop.event
                assert hop.sender in record.members
                assert hop.event  # never an empty verdict
                if "dropped:dead" in hop.event:
                    named_a_drop = True
        assert named_a_drop, "expected at least one loss pinned to a dead hop"

    def test_crashed_members_not_counted_as_losses(self):
        events = self._traced_churn_events()
        for mid in causal.multicast_ids(events):
            record = causal.reconstruct(events, mid)
            assert not (record.undelivered & set(record.departed))

    def test_tree_diff_explains_reroutes(self):
        events = self._traced_churn_events()
        lost = causal.lost_multicasts(events)
        record = causal.reconstruct(events, lost[0])
        missing, extra = record.tree_diff()
        # under churn the actual tree deviates from the implicit one
        assert missing or extra


class TestSerialParallelEquivalence:
    def test_runner_trace_identical_across_jobs(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        fanned_path = tmp_path / "fanned.jsonl"
        base = ["fig9", "--scale", "bench", "--trace"]
        assert experiments_main(base + [str(serial_path)]) == 0
        TRACER.disable()
        TRACER.clear()
        assert experiments_main(base + [str(fanned_path), "--jobs", "4"]) == 0
        serial_events = export.read_jsonl(serial_path)
        fanned_events = export.read_jsonl(fanned_path)
        assert serial_events == fanned_events
        assert serial_events, "expected the figure run to emit trace events"
        assert serial_path.read_bytes() == fanned_path.read_bytes()


class TestCli:
    def _write_sample(self, tmp_path):
        TRACER.enable()
        cluster = Cluster(CamChordPeer, [4] * 8, space_bits=12, seed=2)
        cluster.bootstrap()
        mid = cluster.multicast_from(cluster.live_peers()[0].ident)
        cluster.run(3.0)
        path = tmp_path / "run.jsonl"
        export.write_jsonl(TRACER.events(), path)
        return path, mid

    def test_check_ok_and_check_shorthand(self, tmp_path, capsys):
        path, _ = self._write_sample(tmp_path)
        assert trace_main(["check", str(path)]) == 0
        assert trace_main(["--check", str(path)]) == 0
        assert "schema valid" in capsys.readouterr().out

    def test_check_flags_invalid(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "t": 0.0, "layer": "net", "kind": "teleport",
                        "data": {}}) + "\n"
        )
        assert trace_main(["check", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_summarize_tree_lost_and_export(self, tmp_path, capsys):
        path, mid = self._write_sample(tmp_path)
        assert trace_main(["summarize", str(path)]) == 0
        assert "net.send" in capsys.readouterr().out
        assert trace_main(["tree", str(path), str(mid)]) == 0
        assert f"mid={mid}" in capsys.readouterr().out
        assert trace_main(["lost", str(path)]) == 0
        assert "no lost multicasts" in capsys.readouterr().out
        out = tmp_path / "run.chrome.json"
        assert trace_main(["export", str(path), "-o", str(out)]) == 0
        chrome = json.loads(out.read_text())
        assert any(e["ph"] == "i" for e in chrome["traceEvents"])

    def test_churn_cli_writes_trace_and_network_footer(self, tmp_path, capsys):
        path = tmp_path / "churn.jsonl"
        assert churn_main([
            "--system", "cam-chord", "--rate", "0.2", "--duration", "25",
            "--size", "16", "--seed", "1", "--trace", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "# network" in out
        assert "# trace:" in out
        events = export.read_jsonl(path)
        assert schema.validate_events(events) == []
        assert causal.multicast_ids(events)
