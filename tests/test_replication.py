"""Tests for multi-seed experiment replication."""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale, FigureResult, Series
from repro.experiments.replication import ReplicatedResult, replicate

TINY = ExperimentScale("tiny", 100, 1, 10, space_bits=10)


def fake_experiment(scale: ExperimentScale, seed: int) -> FigureResult:
    """Deterministic stand-in: y = x + seed."""
    series = Series(label="line")
    for x in (0.0, 1.0, 2.0):
        series.add(x, x + seed)
    return FigureResult(figure="fake", title="fake", series=[series])


class TestReplicate:
    def test_mean_and_deviation(self):
        result = replicate(fake_experiment, TINY, seeds=[0, 2])
        line = result.get_series("line")
        assert line.xs == [0.0, 1.0, 2.0]
        assert line.means == [1.0, 2.0, 3.0]  # mean of seed 0 and 2
        # sample sd of {x, x+2} is sqrt(2)
        assert all(dev == pytest.approx(2**0.5) for dev in line.deviations)

    def test_single_seed_zero_deviation(self):
        result = replicate(fake_experiment, TINY, seeds=[5])
        line = result.get_series("line")
        assert line.means == [5.0, 6.0, 7.0]
        assert line.deviations == [0.0, 0.0, 0.0]

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(fake_experiment, TINY, seeds=[])

    def test_render_mentions_runs(self):
        result = replicate(fake_experiment, TINY, seeds=[0, 1, 2])
        rendered = result.render()
        assert "3 seeds" in rendered
        assert "±" in rendered

    def test_missing_series_lookup(self):
        result = replicate(fake_experiment, TINY, seeds=[0])
        with pytest.raises(KeyError):
            result.get_series("nope")

    def test_as_series_roundtrip(self):
        result = replicate(fake_experiment, TINY, seeds=[0, 2])
        plain = result.get_series("line").as_series()
        assert plain.points == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]

    def test_real_experiment_replicates(self):
        """End-to-end: a real figure module under replication."""
        from repro.experiments import ext_load

        result = replicate(ext_load.run, TINY, seeds=[0, 1])
        assert isinstance(result, ReplicatedResult)
        flood = result.get_series("flooding")
        assert len(flood.means) == 4
