"""Tests for churn traces and the resilience experiment driver."""

from __future__ import annotations

import math
from random import Random

import pytest

from repro.churn.resilience import ResilienceReport, geometric_mean
from repro.churn.runner import ChurnExperiment
from repro.churn.trace import (
    ChurnKind,
    poisson_trace,
    session_trace,
)
from repro.protocol import CamChordPeer, CamKoordePeer


class TestPoissonTrace:
    def test_rates_approximately_respected(self):
        trace = poisson_trace(1000, join_rate=0.5, depart_rate=0.25, rng=Random(1))
        joins = sum(1 for e in trace if e.kind is ChurnKind.JOIN)
        departs = len(trace) - joins
        assert 400 < joins < 600
        assert 180 < departs < 320

    def test_sorted_by_time(self):
        trace = poisson_trace(100, 1.0, 1.0, rng=Random(2))
        times = [e.time for e in trace]
        assert times == sorted(times)
        assert all(0 <= t < 100 for t in times)

    def test_crash_fraction(self):
        all_crash = poisson_trace(500, 0, 1.0, crash_fraction=1.0, rng=Random(3))
        assert all(e.kind is ChurnKind.CRASH for e in all_crash)
        all_leave = poisson_trace(500, 0, 1.0, crash_fraction=0.0, rng=Random(3))
        assert all(e.kind is ChurnKind.LEAVE for e in all_leave)

    def test_zero_rates(self):
        trace = poisson_trace(100, 0, 0)
        assert len(trace) == 0
        assert trace.rate_per_second() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(-1, 1, 1)
        with pytest.raises(ValueError):
            poisson_trace(10, -1, 1)
        with pytest.raises(ValueError):
            poisson_trace(10, 1, 1, crash_fraction=2.0)

    def test_determinism(self):
        a = poisson_trace(200, 0.3, 0.3, rng=Random(7))
        b = poisson_trace(200, 0.3, 0.3, rng=Random(7))
        assert a.events == b.events


class TestSessionTrace:
    def test_every_join_may_depart_later(self):
        trace = session_trace(300, arrival_rate=0.5, mean_lifetime=30, rng=Random(4))
        joins = sum(1 for e in trace if e.kind is ChurnKind.JOIN)
        departs = len(trace) - joins
        assert joins > 0
        assert departs <= joins  # departures beyond horizon dropped

    def test_short_lifetimes_mean_more_departures(self):
        short = session_trace(300, 0.5, mean_lifetime=5, rng=Random(5))
        long = session_trace(300, 0.5, mean_lifetime=500, rng=Random(5))
        departs_short = sum(1 for e in short if e.kind is not ChurnKind.JOIN)
        departs_long = sum(1 for e in long if e.kind is not ChurnKind.JOIN)
        assert departs_short > departs_long

    def test_validation(self):
        with pytest.raises(ValueError):
            session_trace(100, 1.0, mean_lifetime=0)


class TestResilienceReport:
    def test_aggregates(self):
        report = ResilienceReport(
            system="x",
            churn_rate=0.1,
            delivery_ratios=[1.0, 0.5],
            duplicates_per_message=[4, 6],
            ring_consistency_samples=[True, False],
            path_lengths=[1, 2, 3],
        )
        assert report.mean_delivery_ratio == 0.75
        assert report.min_delivery_ratio == 0.5
        assert report.mean_duplicates == 5
        assert report.ring_consistency_fraction == 0.5
        assert report.mean_path_length == 2.0
        assert "x" in report.summary_row()

    def test_empty_defaults(self):
        # A run that measured nothing has no delivery evidence: NaN, not
        # a fabricated perfect 1.0 (which would inflate aggregates).
        report = ResilienceReport(system="x", churn_rate=0)
        assert math.isnan(report.mean_delivery_ratio)
        assert math.isnan(report.min_delivery_ratio)
        assert report.mean_duplicates == 0.0
        assert report.ring_consistency_fraction == 1.0
        assert report.mean_path_length == 0.0
        # ...and the summary row still renders without raising.
        assert "x" in report.summary_row()

    def test_geometric_mean(self):
        assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestChurnExperiment:
    def test_no_churn_full_delivery(self):
        rng = Random(1)
        caps = [rng.randint(4, 10) for _ in range(25)]
        trace = poisson_trace(40, 0, 0)
        experiment = ChurnExperiment(CamChordPeer, caps, space_bits=12, seed=2)
        report = experiment.run(trace, multicast_interval=10, propagation_window=4)
        assert report.delivery_ratios  # some multicasts happened
        assert report.mean_delivery_ratio == 1.0
        assert report.ring_consistency_fraction == 1.0
        assert report.final_membership == 25

    def test_churn_flooding_beats_tree(self):
        rng = Random(2)
        caps = [rng.randint(4, 10) for _ in range(30)]
        results = {}
        for cls in (CamChordPeer, CamKoordePeer):
            trace = poisson_trace(
                60, join_rate=0.2, depart_rate=0.2, rng=Random(11)
            )
            experiment = ChurnExperiment(cls, caps, space_bits=13, seed=3)
            results[cls.__name__] = experiment.run(
                trace, multicast_interval=10, propagation_window=4
            )
        assert (
            results["CamKoordePeer"].mean_delivery_ratio
            >= results["CamChordPeer"].mean_delivery_ratio
        )
        # flooding pays with duplicate traffic
        assert (
            results["CamKoordePeer"].mean_duplicates
            > results["CamChordPeer"].mean_duplicates
        )

    def test_membership_tracks_churn(self):
        rng = Random(3)
        caps = [rng.randint(4, 10) for _ in range(20)]
        trace = poisson_trace(50, join_rate=0.5, depart_rate=0.0, rng=Random(12))
        experiment = ChurnExperiment(CamChordPeer, caps, space_bits=13, seed=4)
        report = experiment.run(trace, multicast_interval=25, propagation_window=4)
        assert report.final_membership > 20
