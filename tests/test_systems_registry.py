"""The system registry: exhaustiveness, lookup, policies, no stray dispatch."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.capacity.model import (
    CAM_CHORD_MIN_CAPACITY,
    CAM_KOORDE_MIN_CAPACITY,
)
from repro.systems import (
    CAPACITY_DERIVED,
    DEFAULT_UNIFORM_FANOUT,
    UNIFORM,
    SystemDescriptor,
    SystemKind,
    all_descriptors,
    capacity_aware_systems,
    descriptor_for,
    get_system,
    register,
    resolve,
    system_names,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestExhaustiveness:
    def test_every_kind_has_a_descriptor(self):
        for kind in SystemKind:
            descriptor = descriptor_for(kind)
            assert descriptor.kind is kind

    def test_every_descriptor_reachable_by_name(self):
        for descriptor in all_descriptors():
            assert get_system(descriptor.name) is descriptor

    def test_names_are_the_enum_values(self):
        assert set(system_names()) == {kind.value for kind in SystemKind}

    def test_registration_order_is_enum_order(self):
        assert [d.kind for d in all_descriptors()] == list(SystemKind)


class TestEnumDelegation:
    """The enum properties are views onto the registry, not copies."""

    def test_capacity_aware_agrees(self):
        for kind in SystemKind:
            assert kind.capacity_aware == descriptor_for(kind).capacity_aware

    def test_min_capacity_agrees(self):
        for kind in SystemKind:
            assert kind.min_capacity == descriptor_for(kind).min_capacity

    def test_paper_floors(self):
        assert SystemKind.CAM_CHORD.min_capacity == CAM_CHORD_MIN_CAPACITY
        assert SystemKind.CAM_KOORDE.min_capacity == CAM_KOORDE_MIN_CAPACITY
        assert SystemKind.CHORD.min_capacity == 1
        assert SystemKind.KOORDE.min_capacity == 1

    def test_capacity_awareness_split(self):
        assert SystemKind.CAM_CHORD.capacity_aware
        assert SystemKind.CAM_KOORDE.capacity_aware
        assert not SystemKind.CHORD.capacity_aware
        assert not SystemKind.KOORDE.capacity_aware
        assert {d.kind for d in capacity_aware_systems()} == {
            SystemKind.CAM_CHORD,
            SystemKind.CAM_KOORDE,
        }


class TestLookup:
    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_system("pastry")
        message = str(excinfo.value)
        assert "pastry" in message
        for name in system_names():
            assert name in message

    def test_resolve_accepts_all_spellings(self):
        descriptor = descriptor_for(SystemKind.CAM_KOORDE)
        assert resolve(SystemKind.CAM_KOORDE) is descriptor
        assert resolve("cam-koorde") is descriptor
        assert resolve(descriptor) is descriptor

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve(42)

    def test_duplicate_registration_rejected(self):
        existing = descriptor_for(SystemKind.CHORD)
        with pytest.raises(ValueError, match="already registered"):
            register(existing)


class TestFanoutPolicies:
    def test_capacity_derived_sweeps_per_link(self):
        per_link, fanout = CAPACITY_DERIVED.group_build_args(40.0, 100.0)
        assert per_link == 40.0
        assert fanout == DEFAULT_UNIFORM_FANOUT
        assert CAPACITY_DERIVED.configured_average_fanout(40.0, 700.0) == 17.5

    def test_uniform_sweeps_fanout(self):
        per_link, fanout = UNIFORM.group_build_args(16.0, 100.0)
        assert per_link == 100.0
        assert fanout == 16
        assert UNIFORM.configured_average_fanout(16.0, 700.0) == 16.0

    def test_live_capacity_policy(self):
        # CAM peers keep their own capacity; uniform baselines pin it
        # to the configured fanout.
        assert CAPACITY_DERIVED.live_capacity(7, 4) == 7
        assert UNIFORM.live_capacity(7, 4) == 4
        cam = descriptor_for(SystemKind.CAM_CHORD)
        chord = descriptor_for(SystemKind.CHORD)
        assert cam.live_capacity(7, 4) == 7
        assert chord.live_capacity(7, 4) == 4

    def test_descriptor_capacity_aware_delegates_to_policy(self):
        for descriptor in all_descriptors():
            assert descriptor.capacity_aware == descriptor.fanout.capacity_aware


class TestLiveWiring:
    def test_live_peer_classes(self):
        from repro.protocol.cam_chord_peer import CamChordPeer
        from repro.protocol.cam_koorde_peer import CamKoordePeer
        from repro.protocol.koorde_peer import KoordePeer

        assert descriptor_for(SystemKind.CAM_CHORD).live_peer_class() is CamChordPeer
        assert descriptor_for(SystemKind.CAM_KOORDE).live_peer_class() is CamKoordePeer
        # live base-k Chord IS a CamChordPeer fleet with pinned capacity
        assert descriptor_for(SystemKind.CHORD).live_peer_class() is CamChordPeer
        assert descriptor_for(SystemKind.KOORDE).live_peer_class() is KoordePeer

    def test_baseline_links(self):
        assert descriptor_for(SystemKind.CAM_CHORD).baseline is SystemKind.CHORD
        assert descriptor_for(SystemKind.CAM_KOORDE).baseline is SystemKind.KOORDE
        assert descriptor_for(SystemKind.CHORD).baseline is None
        assert descriptor_for(SystemKind.KOORDE).baseline is None

    def test_overlay_factories(self):
        from repro.overlay.cam_chord import CamChordOverlay
        from repro.overlay.cam_koorde import CamKoordeOverlay
        from repro.overlay.chord import ChordOverlay
        from repro.overlay.koorde import KoordeOverlay
        from repro.systems import MemberSpec

        spec = MemberSpec.generate(16, space_bits=10, seed=3)
        expected = {
            SystemKind.CAM_CHORD: CamChordOverlay,
            SystemKind.CAM_KOORDE: CamKoordeOverlay,
            SystemKind.CHORD: ChordOverlay,
            SystemKind.KOORDE: KoordeOverlay,
        }
        for descriptor in all_descriptors():
            snapshot = spec.snapshot(descriptor.min_capacity)
            overlay = descriptor.build_overlay(snapshot, uniform_fanout=4)
            assert type(overlay) is expected[descriptor.kind]

    def test_descriptors_are_frozen(self):
        descriptor = descriptor_for(SystemKind.CAM_CHORD)
        with pytest.raises(AttributeError):
            descriptor.min_capacity = 99  # type: ignore[misc]
        assert isinstance(descriptor, SystemDescriptor)


class TestNoStrayDispatch:
    def test_no_systemkind_dispatch_chains_outside_registry(self):
        """Mirror of the CI grep: branching on SystemKind belongs in
        repro/systems/ only — everywhere else goes through a descriptor.

        The pattern is assembled from pieces so the CI grep (which scans
        this file too) cannot match its own needle here.
        """
        needle = re.compile(r"(el)?if [^#]* is " + "System" + r"Kind\.")
        offenders = []
        for path in SRC_ROOT.rglob("*.py"):
            if "systems" in path.relative_to(SRC_ROOT).parts:
                continue
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if needle.search(line):
                    offenders.append(f"{path}:{number}: {line.strip()}")
        assert not offenders, (
            "SystemKind dispatch chains outside repro/systems/:\n"
            + "\n".join(offenders)
        )
