"""Tests for the Section 5.1 tree-building (reverse-path) architecture."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.tree_building import build_shared_tree
from repro.overlay.cam_chord import CamChordOverlay
from tests.conftest import make_snapshot, random_snapshot


class TestConstruction:
    def test_every_member_on_tree(self):
        snap = random_snapshot(12, 200, seed=1)
        overlay = CamChordOverlay(snap)
        tree = build_shared_tree(overlay, group_key=12345)
        assert set(tree.parent) == {n.ident for n in snap}

    def test_root_is_responsible_node(self):
        snap = random_snapshot(12, 50, seed=2)
        overlay = CamChordOverlay(snap)
        key = 999
        tree = build_shared_tree(overlay, group_key=key)
        assert tree.root_ident == snap.resolve(key).ident
        assert tree.parent[tree.root_ident] is None
        assert tree.depth[tree.root_ident] == 0

    def test_acyclic_and_rooted(self):
        snap = random_snapshot(12, 150, seed=3)
        overlay = CamChordOverlay(snap)
        tree = build_shared_tree(overlay, group_key=4242)
        for ident in tree.parent:
            seen = set()
            current: int | None = ident
            while current is not None:
                assert current not in seen  # no cycles
                seen.add(current)
                current = tree.parent[current]
            assert tree.root_ident in seen

    def test_depths_consistent(self):
        snap = random_snapshot(12, 100, seed=4)
        overlay = CamChordOverlay(snap)
        tree = build_shared_tree(overlay, group_key=7)
        for ident, parent in tree.parent.items():
            if parent is not None:
                assert tree.depth[ident] == tree.depth[parent] + 1

    def test_edges_follow_lookup_routes(self):
        """A node's tree parent is its next hop toward the key (reverse
        path forwarding)."""
        snap = make_snapshot(8, [0, 30, 60, 90, 120, 150, 180, 210], capacity=3)
        overlay = CamChordOverlay(snap)
        key = 100
        tree = build_shared_tree(overlay, group_key=key)
        root = snap.resolve(key).ident
        for node in snap:
            if node.ident == root:
                continue
            route = overlay.lookup(node, key).path
            # parent is the next node on this member's (possibly shared)
            # join route — i.e. some node later on the route
            later = {n.ident for n in route[1:]} | {root}
            assert tree.parent[node.ident] in later


class TestSection51Properties:
    def test_majority_are_leaves(self):
        snap = random_snapshot(13, 1000, seed=5, capacity_range=(6, 10))
        overlay = CamChordOverlay(snap)
        tree = build_shared_tree(overlay, group_key=5555)
        counts = tree.children_counts()
        leaves = sum(1 for c in counts.values() if c == 0)
        assert leaves > len(counts) / 2

    def test_capacity_violations_happen(self):
        """The §5.1 disparity: routing convergence near the root gives
        some nodes more children than their capacity allows."""
        snap = random_snapshot(13, 1000, seed=6, capacity_range=(4, 6))
        overlay = CamChordOverlay(snap)
        tree = build_shared_tree(overlay, group_key=31337)
        violations = tree.capacity_violations(snap)
        assert violations  # at least one overloaded node
        counts = tree.children_counts()
        assert max(counts.values()) > 6

    def test_any_source_path_via_root(self):
        snap = random_snapshot(12, 100, seed=7)
        overlay = CamChordOverlay(snap)
        tree = build_shared_tree(overlay, group_key=11)
        a, b = snap.nodes[3].ident, snap.nodes[60].ident
        assert tree.delivery_path_length(a, b) == tree.depth[a] + tree.depth[b]
        with pytest.raises(KeyError):
            tree.delivery_path_length(a, 123456)

    def test_forwarding_load_excludes_leaves(self):
        snap = random_snapshot(12, 300, seed=8)
        overlay = CamChordOverlay(snap)
        tree = build_shared_tree(overlay, group_key=99)
        load = tree.forwarding_load(message_count=10, message_kbits=2.0)
        counts = tree.children_counts()
        for ident, kbits in load.items():
            assert kbits == counts[ident] * 20.0


@settings(max_examples=30, deadline=None)
@given(
    idents=st.sets(st.integers(min_value=0, max_value=1023), min_size=2, max_size=60),
    key=st.integers(min_value=0, max_value=1023),
)
def test_tree_spans_all_members_property(idents, key):
    snap = make_snapshot(10, sorted(idents), capacity=4)
    overlay = CamChordOverlay(snap)
    tree = build_shared_tree(overlay, group_key=key)
    assert set(tree.parent) == set(idents)
    # exactly one root
    roots = [i for i, p in tree.parent.items() if p is None]
    assert roots == [tree.root_ident]
