"""Tests for the declarative scenario compiler and matrix runner.

The load-bearing property is byte-determinism: compiling the same
``(spec, system, seed)`` twice yields identical lowered plans,
memberships and latency specs (hypothesis sweeps random specs), and a
matrix run over worker processes aggregates byte-identically to the
serial run.  The rest covers the JSON value contract (spec and cell
round-trips, single-file replay) and the shrinker hook.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.capacity.distributions import (
    FixedCapacity,
    HeavyTailCapacity,
    UniformCapacity,
)
from repro.scenarios import (
    LIBRARY,
    CompiledCell,
    ScenarioSpec,
    compile_cell,
    compile_matrix,
    get_scenario,
    load_cell,
    load_scenario,
    render_tables,
    run_cell,
    run_matrix,
    save_cell,
    save_scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    ChurnModel,
    FaultAxis,
    LatencySpec,
    TopologyAxis,
    WorkloadAxis,
)
from repro.systems import system_names

# -- strategies ---------------------------------------------------------------

capacity_laws = st.one_of(
    st.builds(FixedCapacity, value=st.integers(min_value=2, max_value=12)),
    st.builds(
        UniformCapacity,
        low=st.integers(min_value=2, max_value=6),
        high=st.integers(min_value=6, max_value=12),
    ),
    st.builds(
        HeavyTailCapacity,
        low=st.integers(min_value=2, max_value=4),
        high=st.integers(min_value=16, max_value=64),
        alpha=st.floats(min_value=1.1, max_value=2.5, allow_nan=False),
    ),
)

churn_models = st.one_of(
    st.just(ChurnModel()),
    st.builds(
        ChurnModel,
        kind=st.just("poisson"),
        join_rate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        depart_rate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        crash_fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    st.builds(
        ChurnModel,
        kind=st.just("diurnal"),
        trough_rate=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
        peak_rate=st.floats(min_value=0.1, max_value=0.6, allow_nan=False),
        period=st.floats(min_value=5.0, max_value=40.0, allow_nan=False),
    ),
    st.builds(
        ChurnModel,
        kind=st.just("session"),
        arrival_rate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        mean_lifetime=st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
    ),
)

scenario_specs = st.builds(
    ScenarioSpec,
    name=st.sampled_from(["alpha", "beta", "gamma"]),
    topology=st.builds(
        TopologyAxis,
        size=st.integers(min_value=6, max_value=24),
        space_bits=st.just(12),
        capacities=capacity_laws,
        placement=st.sampled_from(["uniform", "hilbert"]),
        latency=st.sampled_from(
            [LatencySpec(), LatencySpec(kind="geographic", per_unit=0.1)]
        ),
    ),
    workload=st.builds(
        WorkloadAxis,
        multicasts=st.integers(min_value=1, max_value=3),
        propagation_window=st.just(8.0),
        churn=churn_models,
    ),
    faults=st.one_of(
        st.just(FaultAxis(fault_window=15.0)),
        st.just(FaultAxis(fault_window=15.0, generate_index=1)),
    ),
)


# -- determinism --------------------------------------------------------------


class TestCompileDeterminism:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=scenario_specs,
        system=st.sampled_from(sorted(system_names())),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_compile_twice_is_byte_identical(self, spec, system, seed):
        first = compile_cell(spec, system, seed)
        second = compile_cell(spec, system, seed)
        assert first == second
        assert json.dumps(first.to_json_dict(), sort_keys=True) == json.dumps(
            second.to_json_dict(), sort_keys=True
        )
        # and the cell survives its own JSON round-trip
        reloaded = CompiledCell.from_json_dict(
            json.loads(json.dumps(first.to_json_dict()))
        )
        assert reloaded == first

    def test_rows_share_membership_and_churn(self):
        """Every system in a matrix row sees the same members and chaos."""
        spec = LIBRARY["flash-crowd"]
        cells = [compile_cell(spec, system, 3) for system in system_names()]
        assert len({cell.members for cell in cells}) == 1
        assert len({cell.plan.events for cell in cells}) == 1

    def test_different_seeds_differ(self):
        spec = LIBRARY["flash-crowd"]
        assert compile_cell(spec, "cam-chord", 0) != compile_cell(
            spec, "cam-chord", 1
        )


class TestLibrary:
    def test_five_scenarios(self):
        assert len(scenario_names()) >= 5
        assert set(scenario_names()) >= {
            "flash-crowd",
            "diurnal-churn",
            "regional-partition",
            "heavy-tail-capacities",
            "multi-source-storm",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    def test_specs_round_trip_as_single_files(self, tmp_path):
        for name in scenario_names():
            path = tmp_path / f"{name}.json"
            save_scenario(LIBRARY[name], str(path))
            assert load_scenario(str(path)) == LIBRARY[name]

    def test_regional_partition_is_geographic(self):
        cell = compile_cell(LIBRARY["regional-partition"], "cam-chord", 0)
        assert cell.coordinates is not None
        assert cell.latency.kind == "geographic"
        model = cell.build_latency()
        # pinned coordinates: identifiers were derived from these exact
        # positions, so the model must report them verbatim
        for ident, pair in zip(cell.members.identifiers, cell.coordinates):
            assert model.coordinates(ident) == pair

    def test_heavy_tail_uses_pareto_law(self):
        spec = LIBRARY["heavy-tail-capacities"]
        assert isinstance(spec.topology.capacities, HeavyTailCapacity)


class TestMatrixParallelism:
    def test_serial_equals_jobs2(self):
        """Every library scenario: serial == --jobs 2, byte for byte."""
        cells = compile_matrix(
            [LIBRARY[name] for name in scenario_names()], ["cam-chord"], 0
        )
        serial = run_matrix(cells, jobs=1)
        fanned = run_matrix(cells, jobs=2)
        assert [outcome.row() for outcome in serial] == [
            outcome.row() for outcome in fanned
        ]
        assert render_tables(serial) == render_tables(fanned)

    def test_library_cells_pass_oracles(self):
        """The library pins chaos a healthy protocol must survive."""
        cells = compile_matrix(
            [LIBRARY[name] for name in scenario_names()], ["cam-koorde"], 0
        )
        for outcome in run_matrix(cells):
            assert outcome.passed, (
                f"{outcome.cell.scenario}: {outcome.outcome.violations}"
            )
            assert outcome.mean_delivery() == 1.0


class TestCellExecution:
    def test_cell_save_load_replay(self, tmp_path):
        cell = compile_cell(LIBRARY["multi-source-storm"], "koorde", 0)
        path = tmp_path / "cell.json"
        save_cell(cell, str(path))
        reloaded = load_cell(str(path))
        assert reloaded == cell
        assert run_cell(reloaded).row() == run_cell(cell).row()

    def test_with_plan_truncates_members(self):
        from dataclasses import replace

        cell = compile_cell(LIBRARY["diurnal-churn"], "cam-chord", 0)
        smaller = cell.with_plan(replace(cell.plan, size=6, events=()))
        assert len(smaller.members) == 6
        assert smaller.members.identifiers == cell.members.identifiers[:6]
        assert run_cell(smaller).passed

    def test_generated_fault_axis(self):
        spec = ScenarioSpec(
            name="generated",
            topology=TopologyAxis(size=12),
            faults=FaultAxis(fault_window=15.0, generate_index=0),
        )
        cell = compile_cell(spec, "cam-chord", 0)
        assert cell.plan.events  # the generated family is never empty

    def test_throughput_guard_without_bandwidths(self):
        # a membership with zero bandwidths must degrade to None, not raise
        from dataclasses import replace as dc_replace

        cell = compile_cell(LIBRARY["flash-crowd"], "cam-chord", 0)
        bare = dc_replace(
            cell,
            members=type(cell.members)(
                space_bits=cell.members.space_bits,
                identifiers=cell.members.identifiers,
                capacities=cell.members.capacities,
                bandwidths=(0.0,) * len(cell.members),
            ),
        )
        assert run_cell(bare).throughput_kbps is None


class TestSpecValidation:
    def test_events_and_generate_index_exclusive(self):
        from repro.faults.plan import FaultEvent

        with pytest.raises(ValueError, match="not both"):
            FaultAxis(
                events=(FaultEvent(1.0, "heal"),),
                generate_index=2,
            )

    def test_event_outside_window_rejected(self):
        from repro.faults.plan import FaultEvent

        with pytest.raises(ValueError, match="outside fault window"):
            FaultAxis(fault_window=5.0, events=(FaultEvent(9.0, "heal"),))

    def test_unknown_churn_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown churn kind"):
            ChurnModel(kind="tidal")

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            TopologyAxis(placement="circular")


class TestCli:
    def test_run_and_replay_round_trip(self, tmp_path, capsys):
        from repro.scenarios.__main__ import main

        out_dir = tmp_path / "out"
        code = main(
            [
                "run",
                "--scenario",
                "multi-source-storm",
                "--systems",
                "cam-chord",
                "--seed",
                "0",
                "--out-dir",
                str(out_dir),
                "--quiet",
            ]
        )
        assert code == 0
        rows = json.loads((out_dir / "results.json").read_text())
        assert rows[0]["passed"] is True

        spec_path = tmp_path / "spec.json"
        save_scenario(LIBRARY["multi-source-storm"], str(spec_path))
        code = main(
            ["replay", str(spec_path), "--systems", "cam-chord", "--seed", "0"]
        )
        assert code == 0
        assert "multi-source-storm x cam-chord: ok" in capsys.readouterr().out

    def test_replay_rejects_unrecognized_json(self, tmp_path):
        from repro.scenarios.__main__ import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"nonsense": true}\n')
        with pytest.raises(SystemExit, match="neither a scenario spec"):
            main(["replay", str(bogus)])


class TestMultiGroupPlane:
    def test_groups_knob_round_trips(self):
        spec = ScenarioSpec(
            name="many-rooms",
            topology=TopologyAxis(size=30),
            workload=WorkloadAxis(multicasts=1, groups=4),
        )
        blob = json.dumps(spec.to_json_dict(), sort_keys=True)
        assert '"groups": 4' in blob
        reloaded = ScenarioSpec.from_json_dict(json.loads(blob))
        assert reloaded == spec
        assert reloaded.workload.groups == 4

    def test_default_groups_absent_from_json(self):
        # existing single-group artifacts must stay byte-identical, so
        # the default groups=1 never appears in serialized specs/cells
        for name in scenario_names():
            spec = get_scenario(name)
            assert spec.workload.groups == 1
            assert "groups" not in json.dumps(spec.to_json_dict())
            cell = compile_cell(spec, "cam-chord", 0)
            assert "groups" not in json.dumps(cell.to_json_dict())

    def test_groups_validated(self):
        with pytest.raises(ValueError, match="groups"):
            WorkloadAxis(groups=0)

    def test_plane_row_only_for_multi_group_cells(self):
        single = run_cell(compile_cell(LIBRARY["flash-crowd"], "cam-chord", 0))
        assert single.plane is None
        assert "plane" not in single.row()

    def test_multi_group_cell_runs_plane_phase(self):
        spec = ScenarioSpec(
            name="rooms",
            topology=TopologyAxis(size=24),
            workload=WorkloadAxis(multicasts=1, groups=3),
        )
        cell = compile_cell(spec, "cam-chord", 0)
        assert cell.groups == 3
        outcome = run_cell(cell)
        assert outcome.plane is not None
        assert outcome.plane["groups"] == 3
        assert outcome.plane["deliveries"] > 0
        assert outcome.row()["plane"] == outcome.plane
        # deterministic: same cell, same plane summary
        assert run_cell(cell).plane == outcome.plane
