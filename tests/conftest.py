"""Shared test fixtures and helpers."""

from __future__ import annotations

from random import Random

import pytest

from repro.idspace.ring import IdentifierSpace
from repro.overlay.base import Node, RingSnapshot


def make_snapshot(
    bits: int,
    idents: list[int],
    capacity: int | list[int] = 3,
    bandwidth: float | list[float] = 0.0,
) -> RingSnapshot:
    """Build a snapshot with explicit identifiers (paper examples)."""
    count = len(idents)
    capacities = [capacity] * count if isinstance(capacity, int) else list(capacity)
    bandwidths = (
        [bandwidth] * count if isinstance(bandwidth, (int, float)) else list(bandwidth)
    )
    nodes = [
        Node(ident=ident, capacity=capacities[i], bandwidth_kbps=bandwidths[i])
        for i, ident in enumerate(idents)
    ]
    return RingSnapshot(IdentifierSpace(bits), nodes)


def random_snapshot(
    bits: int,
    count: int,
    seed: int,
    capacity_range: tuple[int, int] = (4, 10),
    bandwidth_range: tuple[float, float] = (400.0, 1000.0),
) -> RingSnapshot:
    """A random snapshot with uniform capacities and bandwidths."""
    rng = Random(seed)
    size = 1 << bits
    idents = rng.sample(range(size), count)
    nodes = [
        Node(
            ident=ident,
            capacity=rng.randint(*capacity_range),
            bandwidth_kbps=rng.uniform(*bandwidth_range),
        )
        for ident in idents
    ]
    return RingSnapshot(IdentifierSpace(bits), nodes)


def assert_plan_deterministic(plan, peer_class=None, **run_kwargs):
    """Run one fault plan twice and demand identical outcomes.

    The seed-determinism contract of :mod:`repro.faults`: every byte of
    a plan's execution derives from the plan's own fields, so two runs
    in one process (sharing the global message-id counter, the tracer
    and any other process state) still produce the same violation set,
    delivery ratios and duplicate counts.  ``run_kwargs`` forward to
    ``run_plan`` (mode/settle/stale_backup — the failover paths hold to
    the same contract).  Returns the first outcome so callers can go on
    to assert about its content.
    """
    from repro.faults import run_plan

    first = run_plan(plan, peer_class=peer_class, **run_kwargs)
    second = run_plan(plan, peer_class=peer_class, **run_kwargs)
    assert first.violations == second.violations
    assert first.delivery_ratios == second.delivery_ratios
    assert first.duplicates_per_message == second.duplicates_per_message
    assert first.final_membership == second.final_membership
    assert first.member_gaps == second.member_gaps
    assert first.recovered == second.recovered
    return first


@pytest.fixture
def figure2_snapshot() -> RingSnapshot:
    """The paper's Figure 2 topology: N=32, eight nodes, capacity 3.

    Node identifiers are expressed relative to x = 0.
    """
    return make_snapshot(5, [0, 4, 8, 13, 18, 21, 26, 29], capacity=3)


@pytest.fixture
def figure4_snapshot() -> RingSnapshot:
    """The paper's Figure 4 topology: N=64, sixteen nodes, capacity 10."""
    idents = [1, 4, 9, 12, 18, 21, 25, 30, 35, 36, 37, 41, 46, 50, 57, 61]
    return make_snapshot(6, idents, capacity=10)
