"""Property tests for the timed transfer model."""

from __future__ import annotations

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.cam_chord import cam_chord_multicast
from repro.overlay.cam_chord import CamChordOverlay
from repro.sim.transfer import analytic_bottleneck_kbps, simulate_tree_transfer
from tests.conftest import make_snapshot


def random_tree(seed: int, count: int):
    rng = Random(seed)
    idents = sorted(rng.sample(range(1 << 11), count))
    caps = [rng.randint(2, 8) for _ in idents]
    bws = [rng.uniform(200, 1200) for _ in idents]
    snap = make_snapshot(11, idents, capacity=caps, bandwidth=bws)
    overlay = CamChordOverlay(snap)
    tree = cam_chord_multicast(overlay, snap.nodes[0])
    return tree, snap


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    count=st.integers(min_value=2, max_value=60),
    kbits=st.floats(min_value=1.0, max_value=1e5),
)
def test_children_finish_after_parents(seed, count, kbits):
    tree, snap = random_tree(seed, count)
    result = simulate_tree_transfer(tree, snap, kbits, packet_count=8)
    for child, parent in tree.parent.items():
        if parent is not None:
            assert result.completion_time[child] > result.completion_time[parent]
            assert result.first_packet_time[child] > result.first_packet_time[parent]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    count=st.integers(min_value=2, max_value=40),
)
def test_more_packets_never_slower(seed, count):
    """Finer pipelining can only reduce (or keep) every completion time."""
    tree, snap = random_tree(seed, count)
    coarse = simulate_tree_transfer(tree, snap, 1000.0, packet_count=1)
    fine = simulate_tree_transfer(tree, snap, 1000.0, packet_count=32)
    for ident in tree.parent:
        assert fine.completion_time[ident] <= coarse.completion_time[ident] + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    count=st.integers(min_value=2, max_value=40),
    kbits=st.floats(min_value=10.0, max_value=1e5),
)
def test_measured_rate_bounded_by_analytic(seed, count, kbits):
    tree, snap = random_tree(seed, count)
    result = simulate_tree_transfer(tree, snap, kbits, packet_count=16)
    assert result.measured_throughput_kbps <= (
        analytic_bottleneck_kbps(tree, snap) * (1 + 1e-9)
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    count=st.integers(min_value=2, max_value=30),
)
def test_completion_scales_linearly_in_message_size(seed, count):
    """Doubling the message at most doubles every completion time (and
    at least increases it): the pipeline has no superlinear effects."""
    tree, snap = random_tree(seed, count)
    small = simulate_tree_transfer(tree, snap, 500.0, packet_count=8)
    large = simulate_tree_transfer(tree, snap, 1000.0, packet_count=8)
    for ident in tree.parent:
        if ident == tree.source_ident:
            continue
        assert small.completion_time[ident] < large.completion_time[ident]
        assert large.completion_time[ident] <= 2 * small.completion_time[ident] + 1e-9
