"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.common import FigureResult, Series
from repro.viz.ascii_chart import render_figure, render_histogram, render_xy


def series(label: str, points: list[tuple[float, float]]) -> Series:
    s = Series(label=label)
    for x, y in points:
        s.add(x, y)
    return s


class TestRenderXy:
    def test_empty(self):
        assert "(no data)" in render_xy([Series(label="s")], title="t")

    def test_glyphs_and_legend(self):
        chart = render_xy(
            [series("alpha", [(0, 0), (10, 10)]), series("beta", [(5, 5)])],
            width=20,
            height=8,
        )
        assert "o = alpha" in chart
        assert "x = beta" in chart
        assert "o" in chart.splitlines()[0] + chart  # glyphs plotted

    def test_extremes_on_grid_corners(self):
        chart = render_xy([series("s", [(0, 0), (100, 50)])], width=21, height=6)
        lines = chart.splitlines()
        plot_rows = [l for l in lines if "|" in l]
        # max y in the top plot row, min y in the bottom one
        assert "o" in plot_rows[0]
        assert "o" in plot_rows[-1]
        top = plot_rows[0]
        bottom = plot_rows[-1]
        assert top.rindex("o") > bottom.index("o")

    def test_single_point(self):
        chart = render_xy([series("s", [(3, 7)])])
        assert "o" in chart

    def test_logy(self):
        chart = render_xy(
            [series("s", [(0, 1), (1, 10), (2, 100)])], height=9, logy=True
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        columns = [l.index("o") for l in lines if "o" in l]
        rows = [i for i, l in enumerate(lines) if "o" in l]
        # log scale spaces the decades evenly
        assert len(rows) == 3
        assert rows[1] - rows[0] == rows[2] - rows[1]

    def test_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_xy([series("s", [(0, 0)])], logy=True)

    def test_deterministic(self):
        data = [series("a", [(0, 1), (5, 2)]), series("b", [(2, 9)])]
        assert render_xy(data) == render_xy(data)


class TestRenderHistogram:
    def test_bars_scale_to_peak(self):
        chart = render_histogram(
            series("h", [(0, 10), (1, 20), (2, 5)]), width=20, title="hist"
        )
        lines = chart.splitlines()
        assert lines[0] == "hist"
        bar_lengths = [line.count("#") for line in lines[1:]]
        assert bar_lengths[1] == 20  # the peak fills the width
        assert bar_lengths[0] == 10
        assert bar_lengths[2] == 5

    def test_empty(self):
        assert "(no data)" in render_histogram(Series(label="h"))


class TestRenderFigure:
    def test_includes_title_and_notes(self):
        figure = FigureResult(
            figure="figX",
            title="demo",
            series=[series("s", [(0, 1), (1, 2)])],
            notes=["watch the slope"],
        )
        chart = render_figure(figure)
        assert "figX: demo" in chart
        assert "note: watch the slope" in chart
