"""Tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.sim.engine import Future, FutureError, Simulator


class TestScheduling:
    def test_time_advances_to_event(self):
        sim = Simulator()
        fired = []
        sim.call_later(5.0, lambda: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == [5.0]
        assert sim.now == 10.0

    def test_ordering_by_time_then_fifo(self):
        sim = Simulator()
        order = []
        sim.call_later(2.0, lambda: order.append("b"))
        sim.call_later(1.0, lambda: order.append("a"))
        sim.call_later(2.0, lambda: order.append("c"))  # same time as b
        sim.run(until=5.0)
        assert order == ["a", "b", "c"]

    def test_run_does_not_execute_future_events(self):
        sim = Simulator()
        fired = []
        sim.call_later(5.0, lambda: fired.append(1))
        sim.run(until=4.9)
        assert fired == []
        sim.run(until=5.0)
        assert fired == [1]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.call_later(1.0, lambda: fired.append(1))
        handle.cancel()
        assert handle.cancelled
        sim.run(until=2.0)
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().call_later(-1, lambda: None)

    def test_call_at_past_rejected(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.call_at(4.0, lambda: None)

    def test_run_until_idle(self):
        sim = Simulator()
        fired = []

        def chain(n: int) -> None:
            fired.append(n)
            if n < 5:
                sim.call_later(1.0, lambda: chain(n + 1))

        sim.call_later(0.0, lambda: chain(0))
        sim.run_until_idle()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.events_processed == 6

    def test_run_until_idle_budget(self):
        sim = Simulator()

        def forever() -> None:
            sim.call_later(1.0, forever)

        sim.call_later(0.0, forever)
        with pytest.raises(RuntimeError, match="did not go idle"):
            sim.run_until_idle(max_events=100)


class TestFuture:
    def test_resolve_and_value(self):
        future = Future()
        assert not future.done
        with pytest.raises(RuntimeError):
            _ = future.value
        future.resolve(42)
        assert future.done
        assert future.value == 42

    def test_fail(self):
        future = Future()
        future.fail("boom")
        assert future.done and future.failed
        with pytest.raises(FutureError, match="boom"):
            _ = future.value

    def test_double_settle_rejected(self):
        future = Future()
        future.resolve(1)
        with pytest.raises(RuntimeError):
            future.resolve(2)

    def test_callback_after_settle_fires_immediately(self):
        future = Future()
        future.resolve("x")
        seen = []
        future.add_callback(lambda f: seen.append(f.value))
        assert seen == ["x"]


class TestProcesses:
    def test_sleep_yields(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(("start", sim.now))
            yield 3.0
            log.append(("mid", sim.now))
            yield 2.0
            log.append(("end", sim.now))

        sim.spawn(proc())
        sim.run_until_idle()
        assert log == [("start", 0.0), ("mid", 3.0), ("end", 5.0)]

    def test_wait_on_future(self):
        sim = Simulator()
        future = Future()
        got = []

        def waiter():
            value = yield future
            got.append((value, sim.now))

        sim.spawn(waiter())
        sim.call_later(7.0, lambda: future.resolve("ready"))
        sim.run_until_idle()
        assert got == [("ready", 7.0)]

    def test_failed_future_raises_in_process(self):
        sim = Simulator()
        future = Future()
        caught = []

        def waiter():
            try:
                yield future
            except FutureError as exc:
                caught.append(str(exc))

        sim.spawn(waiter())
        sim.call_later(1.0, lambda: future.fail("nope"))
        sim.run_until_idle()
        assert caught == ["nope"]

    def test_unhandled_failure_fails_completion(self):
        sim = Simulator()
        future = Future()

        def waiter():
            yield future

        handle = sim.spawn(waiter())
        sim.call_later(1.0, lambda: future.fail("dead"))
        sim.run_until_idle()
        assert handle.completion.failed

    def test_completion_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "done"

        handle = sim.spawn(proc())
        sim.run_until_idle()
        assert handle.completion.value == "done"
        assert not handle.alive

    def test_kill(self):
        sim = Simulator()
        ticks = []

        def proc():
            while True:
                ticks.append(sim.now)
                yield 1.0

        handle = sim.spawn(proc())
        sim.run(until=3.5)
        handle.kill()
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0, 3.0]
        assert not handle.alive

    def test_bad_yield_type(self):
        sim = Simulator()

        def proc():
            yield "not a delay"

        sim.spawn(proc())
        with pytest.raises(TypeError, match="yield a delay"):
            sim.run_until_idle()

    def test_every(self):
        sim = Simulator()
        ticks = []
        handle = sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        handle.kill()
        sim.run(until=20.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_every_validates_interval(self):
        with pytest.raises(ValueError):
            Simulator().every(0, lambda: None)

    def test_determinism(self):
        def run_once() -> list[tuple[str, float]]:
            sim = Simulator()
            log = []

            def proc(name: str, period: float):
                while sim.now < 10:
                    log.append((name, sim.now))
                    yield period

            sim.spawn(proc("a", 1.5))
            sim.spawn(proc("b", 2.0))
            sim.run(until=10.0)
            return log

        assert run_once() == run_once()
