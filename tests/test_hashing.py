"""Tests for the member-to-identifier mapping."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idspace.hashing import (
    assign_identifiers,
    hash_to_identifier,
    spread_identifiers,
)
from repro.idspace.ring import IdentifierSpace


class TestHashToIdentifier:
    def test_deterministic(self):
        space = IdentifierSpace(19)
        assert hash_to_identifier("host-1", space) == hash_to_identifier(
            "host-1", space
        )

    def test_in_range(self):
        space = IdentifierSpace(19)
        for i in range(100):
            assert space.contains(hash_to_identifier(f"host-{i}", space))

    def test_salt_changes_result(self):
        space = IdentifierSpace(19)
        plain = hash_to_identifier("host-1", space)
        salted = hash_to_identifier("host-1", space, salt=1)
        assert plain != salted  # SHA-1 collision here would be news


class TestAssignIdentifiers:
    def test_distinct_even_in_tiny_space(self):
        space = IdentifierSpace(4)  # N = 16: collisions guaranteed
        mapping = assign_identifiers([f"m{i}" for i in range(16)], space)
        assert len(set(mapping.values())) == 16

    def test_rejects_overfull_group(self):
        space = IdentifierSpace(3)
        with pytest.raises(ValueError, match="cannot map"):
            assign_identifiers([f"m{i}" for i in range(9)], space)

    def test_rejects_duplicate_names(self):
        space = IdentifierSpace(8)
        with pytest.raises(ValueError, match="duplicate"):
            assign_identifiers(["a", "a"], space)

    def test_deterministic_mapping(self):
        space = IdentifierSpace(10)
        names = [f"host-{i}" for i in range(50)]
        assert assign_identifiers(names, space) == assign_identifiers(names, space)

    def test_empty_group(self):
        assert assign_identifiers([], IdentifierSpace(8)) == {}


class TestSpreadIdentifiers:
    def test_exact_count_and_distinct(self):
        space = IdentifierSpace(10)
        for count in (0, 1, 7, 100, 1024):
            spread = spread_identifiers(count, space)
            assert len(spread) == count
            assert len(set(spread)) == count

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            spread_identifiers(17, IdentifierSpace(4))

    def test_roughly_even_spacing(self):
        space = IdentifierSpace(12)
        spread = list(spread_identifiers(8, space))
        gaps = [
            (spread[(i + 1) % 8] - spread[i]) % space.size for i in range(8)
        ]
        assert max(gaps) <= 2 * space.size // 8


@given(st.integers(min_value=1, max_value=200))
def test_assignment_is_injective(count):
    space = IdentifierSpace(16)
    mapping = assign_identifiers([f"h{i}" for i in range(count)], space)
    assert len(set(mapping.values())) == count
