"""Tests for the parallel experiment engine, caches and perf counters.

The headline guarantee is byte-for-byte equivalence: ``--jobs N`` must
produce exactly the serial output, because a sweep-decomposed ``run()``
*is* ``assemble(scale, seed, [run_point(...) for point in sweep])`` and
every point draws from its own RNG stream.
"""

from __future__ import annotations

from random import Random

import pytest

from repro import perf
from repro.capacity.distributions import UniformBandwidth, UniformCapacity
from repro.experiments import registry
from repro.experiments.common import (
    SCALES,
    bandwidth_draws,
    capacity_group,
    clear_caches,
    point_rng,
)
from repro.experiments.parallel import Task, plan_tasks, run_experiments
from repro.experiments.runner import main
from repro.multicast.session import SystemKind

QUICK = SCALES["quick"]


class TestPointRng:
    def test_deterministic_and_independent(self):
        a = point_rng(0, "fig9", "cam-chord", 4)
        b = point_rng(0, "fig9", "cam-chord", 4)
        c = point_rng(0, "fig9", "cam-chord", 5)
        draws_a = [a.random() for _ in range(5)]
        assert draws_a == [b.random() for _ in range(5)]
        assert draws_a != [c.random() for _ in range(5)]

    def test_seed_separates_streams(self):
        assert point_rng(0, "x").random() != point_rng(1, "x").random()


class TestPlanTasks:
    def test_sweepable_fans_into_points(self):
        module = registry.load("fig7")
        assert registry.is_sweepable(module)
        tasks = plan_tasks(["fig7"], QUICK, seeds=[0, 1])
        points = len(module.sweep(QUICK))
        assert len(tasks) == 2 * points
        assert Task("fig7", 1, points - 1) in tasks

    def test_monolithic_stays_whole(self):
        monolithic = [
            name
            for name in registry.REGISTRY
            if not registry.is_sweepable(registry.load(name))
        ]
        assert monolithic, "expected at least one monolithic experiment"
        name = monolithic[0]
        tasks = plan_tasks([name], QUICK, seeds=[0])
        assert tasks == [Task(name, 0, None)]


class TestParallelEquivalence:
    """jobs > 1 output must equal the serial output byte for byte."""

    def test_extc_parallel_matches_serial(self):
        serial = run_experiments(["extC"], QUICK, seeds=[0], jobs=1)
        fanned = run_experiments(["extC"], QUICK, seeds=[0], jobs=4)
        assert serial[0].result.render() == fanned[0].result.render()

    def test_fig7_cli_parallel_matches_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        fanned_dir = tmp_path / "fanned"
        assert main(["fig7", "--scale", "quick", "--out", str(serial_dir)]) == 0
        assert (
            main(["fig7", "--scale", "quick", "--jobs", "4", "--out", str(fanned_dir)])
            == 0
        )
        serial_bytes = (serial_dir / "fig7.txt").read_bytes()
        fanned_bytes = (fanned_dir / "fig7.txt").read_bytes()
        assert serial_bytes == fanned_bytes

    def test_replication_seeds_fan_out(self):
        serial = run_experiments(["extC"], QUICK, seeds=[0, 1], jobs=1)
        fanned = run_experiments(["extC"], QUICK, seeds=[0, 1], jobs=2)
        assert [run.seed for run in serial] == [0, 1]
        for one, other in zip(serial, fanned):
            assert one.result.render() == other.result.render()

    def test_run_matches_engine_serial_path(self):
        """module.run() and the task-decomposed path agree exactly."""
        direct = registry.load("extC").run(QUICK, 0)
        engine = run_experiments(["extC"], QUICK, seeds=[0], jobs=1)[0].result
        assert direct.render() == engine.render()


class TestCaches:
    @pytest.fixture(autouse=True)
    def fresh(self):
        clear_caches()
        yield
        clear_caches()

    def test_bandwidth_draws_memoized(self):
        law = UniformBandwidth()
        before = perf.snapshot()
        first = bandwidth_draws(law, 500, seed=3)
        second = bandwidth_draws(law, 500, seed=3)
        delta = perf.since(before)
        assert first is second
        assert (delta.draw_cache_misses, delta.draw_cache_hits) == (1, 1)
        assert bandwidth_draws(law, 500, seed=4) is not first

    def test_capacity_group_memoized_and_rebuild_identical(self):
        tiny = SCALES["bench"]
        law = UniformCapacity(4, 10)
        group = capacity_group(SystemKind.CAM_CHORD, tiny, law, seed=0)
        assert capacity_group(SystemKind.CAM_CHORD, tiny, law, seed=0) is group
        clear_caches()
        rebuilt = capacity_group(SystemKind.CAM_CHORD, tiny, law, seed=0)
        assert rebuilt is not group
        assert list(rebuilt.snapshot.identifiers) == list(group.snapshot.identifiers)
        source = group.random_member(Random(1))
        resent = rebuilt.snapshot.node_at(source.ident)
        assert (
            group.multicast_from(source).messages_sent
            == rebuilt.multicast_from(resent).messages_sent
        )

    def test_snapshot_shared_across_kinds_with_same_floor(self):
        tiny = SCALES["bench"]
        law = UniformCapacity(4, 10)
        assert SystemKind.CHORD.min_capacity == SystemKind.KOORDE.min_capacity
        chord = capacity_group(SystemKind.CHORD, tiny, law, seed=0)
        koorde = capacity_group(SystemKind.KOORDE, tiny, law, seed=0)
        assert chord is not koorde
        assert chord.snapshot is koorde.snapshot


class TestPerfCounters:
    def test_add_sub_roundtrip(self):
        a = perf.PerfCounters(resolves=3, deliveries=10)
        b = perf.PerfCounters(resolves=1, deliveries=4, multicast_trees=1)
        total = a + b
        assert total.resolves == 4 and total.deliveries == 14
        assert (total - b) == a

    def test_counters_move_during_multicast(self):
        clear_caches()
        tiny = SCALES["bench"]
        group = capacity_group(
            SystemKind.CAM_CHORD, tiny, UniformCapacity(4, 10), seed=0
        )
        before = perf.snapshot()
        group.multicast_from(group.random_member(Random(0)))
        delta = perf.since(before)
        assert delta.multicast_trees == 1
        assert delta.kernel_trees == 1
        assert delta.deliveries == len(group.snapshot) - 1
        # The kernel resolves into its memoized slot tables, never
        # through the scalar resolve_index path.
        assert delta.resolves == 0
        assert delta.kernel_resolves > 0
        assert "trees=1" in delta.summary()


class TestRunnerCli:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(registry.REGISTRY)
        assert any(line.startswith("fig6 ") for line in lines)
        assert any(line.startswith("extI ") for line in lines)

    def test_footer_reports_totals(self, capsys):
        assert main(["extC", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "# extC done: work=" in out
        assert "# total: 1 experiment(s) x 1 seed(s)" in out
        assert "(jobs=1)" in out

    def test_jobs_rejects_zero(self, capsys):
        with pytest.raises(SystemExit):
            main(["extC", "--jobs", "0"])

    def test_footer_counts_identical_across_repeat_invocations(self, capsys):
        """Regression: the perf counters are process-global, so a second
        main() call in the same interpreter used to start mid-count.
        The footer must attribute identical per-figure counts whether
        or not earlier figures ran in this process."""
        clear_caches()
        assert main(["extC", "--scale", "quick"]) == 0
        first = capsys.readouterr().out
        clear_caches()
        assert main(["extC", "--scale", "quick"]) == 0
        second = capsys.readouterr().out
        footer = lambda out: next(  # noqa: E731
            line for line in out.splitlines() if line.startswith("# extC done:")
        )
        first_line, second_line = footer(first), footer(second)
        # strip wall time (machine noise); the counter block must match
        assert first_line.split("s ", 1)[1] == second_line.split("s ", 1)[1]

    def test_profile_flag_prints_cumulative_table(self, capsys):
        clear_caches()
        assert main(["extC", "--scale", "quick", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "# profile[extC]: top 20 by cumulative time" in out
        assert "cumulative" in out  # pstats column header
        assert "# extC done: work=" in out  # normal output still present

    def test_profile_forces_serial(self, capsys):
        clear_caches()
        assert main(["extC", "--scale", "quick", "--profile", "--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "# --profile forces --jobs 1" in out
        assert "(jobs=1)" in out


class TestPerfScoped:
    def test_scoped_measures_only_its_block(self):
        clear_caches()
        tiny = SCALES["bench"]
        group = capacity_group(
            SystemKind.CAM_CHORD, tiny, UniformCapacity(4, 10), seed=0
        )
        group.multicast_from(group.random_member(Random(0)))  # outside work
        with perf.scoped() as scope:
            group.multicast_from(group.random_member(Random(1)))
        assert scope.delta.multicast_trees == 1
        assert scope.delta.deliveries == len(group.snapshot) - 1
