"""Integration tests for the live plain-Koorde baseline peer."""

from __future__ import annotations

from random import Random

import pytest

from repro.protocol import Cluster, KoordePeer


def make_cluster(count: int, degree: int = 4, seed: int = 1, bits: int = 12) -> Cluster:
    return Cluster(KoordePeer, [degree] * count, space_bits=bits, seed=seed)


class TestBootstrap:
    def test_ring_converges(self):
        cluster = make_cluster(30)
        cluster.bootstrap()
        assert cluster.ring_consistent()

    def test_window_points_at_consecutive_members(self):
        cluster = make_cluster(30, degree=4, seed=2)
        cluster.bootstrap()
        cluster.run(120)  # window refresh is one slot per fix interval
        snapshot = cluster.live_snapshot()
        checked = 0
        for peer in cluster.live_peers():
            anchor_ident = (peer.degree * peer.ident) % cluster.space.size
            expected_anchor = snapshot.resolve(anchor_ident)
            believed = peer.neighbor_table.get(("debruijn", 0))
            if expected_anchor.ident == peer.ident:
                assert believed is None
                continue
            assert believed == expected_anchor.ident
            # followers are the anchor's ring successors, in order
            cursor = expected_anchor
            for index in range(1, peer.degree):
                cursor = snapshot.successor(cursor)
                if cursor.ident in (peer.ident, expected_anchor.ident):
                    break
                entry = peer.neighbor_table.get(("debruijn", index))
                if entry is not None:
                    assert entry == cursor.ident
            checked += 1
        assert checked > 20

    def test_degree_validated(self):
        with pytest.raises(ValueError):
            make_cluster(3, degree=0)


class TestFloodMulticast:
    def test_full_delivery_on_stable_ring(self):
        cluster = make_cluster(40, degree=4, seed=3)
        cluster.bootstrap()
        cluster.run(120)
        mid = cluster.multicast_from(cluster.random_live_peer(Random(0)).ident)
        cluster.run(10)
        assert cluster.delivery_ratio(mid) == 1.0

    def test_survives_crashes_like_a_flood(self):
        cluster = make_cluster(40, degree=4, seed=4)
        cluster.bootstrap()
        cluster.run(120)
        for victim in sorted(cluster.live_members())[::6]:
            cluster.remove_peer(victim, crash=True)
        mid = cluster.multicast_from(cluster.random_live_peer(Random(1)).ident)
        cluster.run(10)
        # flooding redundancy: ring + de Bruijn window keeps most of
        # the group reachable even before tables repair
        assert cluster.delivery_ratio(mid) > 0.9

    def test_uniform_fanout_regardless_of_bandwidth(self):
        """The baseline property: link budget is the degree, not B_x."""
        cluster = Cluster(
            KoordePeer,
            [4] * 20,
            bandwidths=[100.0 + 50 * i for i in range(20)],
            space_bits=12,
            seed=5,
        )
        cluster.bootstrap()
        cluster.run(120)
        for peer in cluster.live_peers():
            assert len(peer.flood_links()) <= peer.degree + 2
