#!/usr/bin/env python3
"""Resilience demo: multicasting while members come and go.

Runs the *live* maintenance protocol (join / stabilize / neighbor
repair over a simulated lossy network) for both CAM systems, crashes a
slice of the group mid-session, and shows what a multicast delivers
before the tables have healed — the trade the paper describes: the
CAM-Chord implicit tree has one path per member (fast, lean, but a
stale table entry loses a whole subtree), while CAM-Koorde flooding
rides redundant paths (lossless under churn, at the cost of duplicate
traffic).

Run:  python examples/dynamic_membership.py      (~30 s)
"""

from random import Random

from repro.protocol import Cluster

MEMBERS = 80
CRASH_FRACTION = 0.15


def run_system(name: str, system: str) -> None:
    rng = Random(17)
    capacities = [rng.randint(4, 10) for _ in range(MEMBERS)]
    cluster = Cluster(system, capacities, space_bits=14, seed=17)

    print(f"--- {name} ---")
    cluster.bootstrap()
    print(f"bootstrapped {len(cluster.live_members())} members, "
          f"ring consistent: {cluster.ring_consistent()}")

    # A multicast on the stable ring: full delivery.
    mid = cluster.multicast_from(cluster.random_live_peer().ident)
    cluster.run(10)
    print(f"stable-ring multicast : delivery {cluster.delivery_ratio(mid):.3f}, "
          f"duplicates {cluster.monitor.duplicates[mid]}")

    # Crash a slice of the group and multicast immediately.
    victims = sorted(cluster.live_members())[:: int(1 / CRASH_FRACTION)]
    for victim in victims:
        cluster.remove_peer(victim, crash=True)
    mid = cluster.multicast_from(cluster.random_live_peer().ident)
    cluster.run(5)
    print(f"right after {len(victims)} crashes: delivery "
          f"{cluster.delivery_ratio(mid):.3f}, "
          f"duplicates {cluster.monitor.duplicates[mid]}")

    # Let the maintenance protocol heal, then multicast again.
    cluster.run(120)
    mid = cluster.multicast_from(cluster.random_live_peer().ident)
    cluster.run(5)
    print(f"after healing         : delivery {cluster.delivery_ratio(mid):.3f}, "
          f"ring consistent: {cluster.ring_consistent()}")

    # New members keep joining a healed ring without drama.
    for _ in range(5):
        cluster.add_peer(capacity=rng.randint(4, 10))
    cluster.run(60)
    print(f"after 5 joins         : {len(cluster.live_members())} members, "
          f"ring consistent: {cluster.ring_consistent()}\n")


def main() -> None:
    run_system("CAM-Chord (implicit trees)", "cam-chord")
    run_system("CAM-Koorde (flooding)", "cam-koorde")
    print(
        "Flooding keeps delivering through the crash window; the tree "
        "loses the subtrees behind stale entries until stabilization "
        "and neighbor repair catch up.  Both rings self-heal."
    )


if __name__ == "__main__":
    main()
