#!/usr/bin/env python3
"""Tuning a live-video multicast session (the Figure 8 trade-off).

Scenario: a large group wants to watch a live stream encoded at one of
several bitrates.  The operator controls a single knob, the per-link
rate ``p``: capacities ``c_x = floor(B_x / p)`` rise as ``p`` falls,
making trees shallower (lower latency) but each link thinner (lower
sustainable bitrate).  Act one sweeps ``p`` analytically and picks the
lowest-latency system/configuration that sustains a 64 kbps stream.
Act two then *runs* the chosen configuration on the event-driven
service plane: the source streams a run of video segments on the
simulated clock, a viewer joins and another leaves mid-stream, and the
plane's quiesce audit proves every frozen member received every
segment exactly once before the goodput table is printed.

Run:  python examples/video_streaming.py
"""

from random import Random

from repro import MulticastGroup, SystemKind, sustainable_throughput
from repro.multicast.plane import ServicePlane

GROUP_SIZE = 10_000
TARGET_KBPS = 64.0
SWEEP = (20.0, 40.0, 64.0, 90.0, 120.0)

# act two: a smaller audience keeps the timed replay quick while still
# exercising a real multi-level tree
STREAM_VIEWERS = 2_000
SEGMENT_KBITS = 128.0  # 2 s of video at the 64 kbps target
SEGMENTS = 8


def measure(kind: SystemKind, per_link: float, bandwidths) -> tuple[float, float]:
    """(sustainable kbps, average path length) for one configuration."""
    group = MulticastGroup.build(kind, bandwidths, per_link_kbps=per_link, seed=7)
    rng = Random(1)
    rates, paths = [], []
    for _ in range(2):
        tree = group.multicast_from(group.random_member(rng))
        rates.append(sustainable_throughput(tree, group.snapshot))
        paths.append(tree.average_path_length())
    return min(rates), sum(paths) / len(paths)


def stream(system: str, per_link: float) -> None:
    """Act two: play the chosen configuration on the service plane."""
    rng = Random(42)
    plane = ServicePlane(space_bits=18)
    names = [f"viewer-{i}" for i in range(STREAM_VIEWERS + 1)]
    for name in names:
        plane.register_host(name, rng.uniform(400, 1000))
    audience = names[:STREAM_VIEWERS]  # the last name joins mid-stream
    plane.create_group("stream", audience, kind=system, per_link_kbps=per_link)

    source = audience[0]
    for segment in range(SEGMENTS):
        plane.send_later(segment * 2.0, "stream", source, SEGMENT_KBITS)
    # churn mid-stream: one viewer tunes in, another tunes out, both
    # while earlier segments are still being forwarded
    plane.simulator.call_later(3.0, lambda: plane.join("stream", names[-1]))
    plane.simulator.call_later(5.0, lambda: plane.leave("stream", audience[1]))

    plane.drain()
    plane.verify_quiesced()
    print(f"\nStreamed {SEGMENTS} segments of {SEGMENT_KBITS:g} kbits to "
          f"{STREAM_VIEWERS} viewers ({names[-1]} joined at t=3, "
          f"{audience[1]} left at t=5) — audits clean.\n")
    print(plane.report().render())


def main() -> None:
    rng = Random(99)
    bandwidths = [rng.uniform(400, 1000) for _ in range(GROUP_SIZE)]

    print(f"{'system':11s} {'p kbps':>7s} {'bitrate kbps':>13s} {'avg hops':>9s}")
    best: tuple[float, str, float] | None = None
    for kind in (SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE):
        for per_link in SWEEP:
            bitrate, hops = measure(kind, per_link, bandwidths)
            marker = ""
            if bitrate >= TARGET_KBPS:
                marker = " <- sustains target"
                if best is None or hops < best[0]:
                    best = (hops, kind.value, per_link)
            print(f"{kind.value:11s} {per_link:7.0f} {bitrate:13.1f} {hops:9.2f}{marker}")

    assert best is not None, "no configuration sustains the target bitrate"
    hops, system, per_link = best
    print(
        f"\nPick: {system} with p = {per_link:g} kbps — sustains "
        f"{TARGET_KBPS:g} kbps at {hops:.2f} hops average latency."
    )
    print(
        "Note the trade-off: smaller p raises every node's fanout "
        "(lower latency) but leaves less bandwidth per child link."
    )

    stream(system, per_link)


if __name__ == "__main__":
    main()
