#!/usr/bin/env python3
"""Tuning a live-video multicast session (the Figure 8 trade-off).

Scenario: a 10,000-member group wants to watch a live stream encoded
at one of several bitrates.  The operator controls a single knob, the
per-link rate ``p``: capacities ``c_x = floor(B_x / p)`` rise as ``p``
falls, making trees shallower (lower latency) but each link thinner
(lower sustainable bitrate).  The example sweeps ``p``, prints the
achievable (bitrate, latency) pairs for CAM-Chord and CAM-Koorde, and
picks the lowest-latency system/configuration for a 64 kbps stream.

Run:  python examples/video_streaming.py
"""

from random import Random

from repro import MulticastGroup, SystemKind, sustainable_throughput

GROUP_SIZE = 10_000
TARGET_KBPS = 64.0
SWEEP = (20.0, 40.0, 64.0, 90.0, 120.0)


def measure(kind: SystemKind, per_link: float, bandwidths) -> tuple[float, float]:
    """(sustainable kbps, average path length) for one configuration."""
    group = MulticastGroup.build(kind, bandwidths, per_link_kbps=per_link, seed=7)
    rng = Random(1)
    rates, paths = [], []
    for _ in range(2):
        tree = group.multicast_from(group.random_member(rng))
        rates.append(sustainable_throughput(tree, group.snapshot))
        paths.append(tree.average_path_length())
    return min(rates), sum(paths) / len(paths)


def main() -> None:
    rng = Random(99)
    bandwidths = [rng.uniform(400, 1000) for _ in range(GROUP_SIZE)]

    print(f"{'system':11s} {'p kbps':>7s} {'bitrate kbps':>13s} {'avg hops':>9s}")
    best: tuple[float, str, float] | None = None
    for kind in (SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE):
        for per_link in SWEEP:
            bitrate, hops = measure(kind, per_link, bandwidths)
            marker = ""
            if bitrate >= TARGET_KBPS:
                marker = " <- sustains target"
                if best is None or hops < best[0]:
                    best = (hops, kind.value, per_link)
            print(f"{kind.value:11s} {per_link:7.0f} {bitrate:13.1f} {hops:9.2f}{marker}")

    assert best is not None, "no configuration sustains the target bitrate"
    hops, system, per_link = best
    print(
        f"\nPick: {system} with p = {per_link:g} kbps — sustains "
        f"{TARGET_KBPS:g} kbps at {hops:.2f} hops average latency."
    )
    print(
        "Note the trade-off: smaller p raises every node's fanout "
        "(lower latency) but leaves less bandwidth per child link."
    )


if __name__ == "__main__":
    main()
