#!/usr/bin/env python3
"""Quickstart: capacity-aware multicast in a dozen lines.

Builds a 5,000-member CAM-Chord group whose member capacities derive
from their upload bandwidths (``c_x = floor(B_x / p)``), multicasts one
message from a random member, and prints what the implicit tree looked
like — everyone reached exactly once, nobody over their capacity, and
the bottleneck link still at the configured per-link rate.

Run:  python examples/quickstart.py
"""

from random import Random

from repro import MulticastGroup, SystemKind, summarize_tree, sustainable_throughput

GROUP_SIZE = 5_000
PER_LINK_KBPS = 100.0  # the paper's parameter p

def main() -> None:
    rng = Random(42)
    bandwidths = [rng.uniform(400, 1000) for _ in range(GROUP_SIZE)]

    group = MulticastGroup.build(
        SystemKind.CAM_CHORD,
        bandwidths,
        per_link_kbps=PER_LINK_KBPS,
        seed=42,
    )

    source = group.random_member(rng)
    tree = group.multicast_from(source)

    # Exactly-once delivery is an invariant, not a hope — verify it.
    tree.verify_exactly_once({node.ident for node in group.snapshot})

    stats = summarize_tree(tree)
    throughput = sustainable_throughput(tree, group.snapshot)
    print(f"group size            : {len(group)}")
    print(f"source identifier     : {source.ident}")
    print(f"members reached       : {stats.receivers} (exactly once)")
    print(f"average path length   : {stats.average_path_length:.2f} hops")
    print(f"tree depth            : {stats.max_path_length} hops")
    print(f"avg children (non-leaf): {stats.average_children:.2f}")
    print(f"max children          : {stats.max_children} (never above capacity)")
    print(f"sustainable throughput: {throughput:.1f} kbps (configured p = {PER_LINK_KBPS:g})")

    # Any member can multicast — each source gets its own implicit tree.
    other = group.random_member(rng)
    other_tree = group.multicast_from(other)
    print(
        f"second source {other.ident}: depth {other_tree.max_path_length()}, "
        f"avg path {other_tree.average_path_length():.2f} hops"
    )


if __name__ == "__main__":
    main()
