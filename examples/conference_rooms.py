#!/usr/bin/env python3
"""A conferencing platform: many rooms, one host population.

The paper's architecture gives every multicast group its own dedicated
overlay (Section 2).  A host in three meetings sits on three rings —
under three unrelated identifiers — and its uplink serves all of them.
This example runs a platform with 300 hosts and four concurrent rooms
of different sizes and media rates, sends a burst of audio/video
events in each, and shows the per-host aggregate forwarding load the
platform would provision for.

Run:  python examples/conference_rooms.py
"""

from random import Random

from repro.multicast.service import MulticastService
from repro.multicast.session import SystemKind

HOSTS = 300

ROOMS = (
    # name, members, system, per-link kbps (media rate)
    ("all-hands", 250, SystemKind.CAM_CHORD, 80.0),
    ("team-standup", 40, SystemKind.CAM_CHORD, 120.0),
    ("design-review", 25, SystemKind.CAM_KOORDE, 120.0),
    ("pair-session", 6, SystemKind.CAM_CHORD, 200.0),
)


def main() -> None:
    rng = Random(23)
    service = MulticastService(space_bits=18)
    for index in range(HOSTS):
        service.register_host(f"host-{index}", rng.uniform(400, 1000))

    host_names = [f"host-{i}" for i in range(HOSTS)]
    for name, size, kind, rate in ROOMS:
        members = rng.sample(host_names, size)
        group = service.create_group(name, members, kind=kind, per_link_kbps=rate)
        print(f"room {name:13s} {size:4d} members  {kind.value:10s} p={rate:g} kbps "
              f"(overlay of {len(group)} nodes)")

    # every room chatters: speakers rotate, each event is 4 kbits
    for name, size, _, _ in ROOMS:
        members = list(service._members[name])
        for _ in range(size // 2):
            result = service.multicast(name, rng.choice(members), message_kbits=4.0)
            assert result.receiver_count == size  # exactly-once per room

    load = service.host_load_kbits()
    carried = [v for v in load.values() if v > 0]
    print(f"\nhosts carrying traffic : {len(carried)} / {HOSTS}")
    print(f"mean load (active)     : {sum(carried)/len(carried):8.1f} kbits")
    print("busiest hosts          :")
    for host, kbits in service.busiest_hosts(5):
        rooms = ", ".join(service.groups_of(host))
        print(f"   {host:10s} {kbits:8.1f} kbits  (rooms: {rooms})")

    print(
        "\nEach room's traffic stays inside its own overlay; a host's "
        "total load is just the sum of its per-room shares, each bounded "
        "by that room's capacity rule c = floor(B/p)."
    )


if __name__ == "__main__":
    main()
