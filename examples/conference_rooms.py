#!/usr/bin/env python3
"""A conferencing platform: many rooms, one host population, one clock.

The paper's architecture gives every multicast group its own dedicated
overlay (Section 2).  A host in three meetings sits on three rings —
under three unrelated identifiers — but it owns exactly one uplink,
and that uplink serves all of them.  This example runs the
event-driven service plane: 300 hosts, four concurrent rooms of
different sizes and media rates, audio/video events interleaving on a
single simulated clock, a latecomer joining and an early leaver
departing *while* traffic is in flight.  At quiesce the plane audits
every room (completeness against frozen send-time membership, zero
sequence gaps, zero duplicates) and prints the per-room goodput and
backpressure table the platform would provision from.

Run:  python examples/conference_rooms.py
"""

from random import Random

from repro.multicast.plane import ServicePlane
from repro.multicast.session import SystemKind

HOSTS = 300

ROOMS = (
    # name, members, system, per-link kbps (media rate)
    ("all-hands", 250, SystemKind.CAM_CHORD, 80.0),
    ("team-standup", 40, SystemKind.CAM_CHORD, 120.0),
    ("design-review", 25, SystemKind.CAM_KOORDE, 120.0),
    ("pair-session", 6, SystemKind.CAM_CHORD, 200.0),
)


def main() -> None:
    rng = Random(23)
    plane = ServicePlane(space_bits=18)
    for index in range(HOSTS):
        plane.register_host(f"host-{index}", rng.uniform(400, 1000))

    host_names = [f"host-{i}" for i in range(HOSTS)]
    memberships: dict[str, list[str]] = {}
    for name, size, kind, rate in ROOMS:
        members = rng.sample(host_names, size)
        memberships[name] = members
        plane.create_group(name, members, kind=kind, per_link_kbps=rate)
        print(f"room {name:13s} {size:4d} members  {kind.value:10s} "
              f"p={rate:g} kbps")

    # every room chatters on the shared clock: speakers rotate, each
    # event is 4 kbits, and the rooms' sends interleave rather than
    # running one room to completion at a time
    for name, size, _, _ in ROOMS:
        # the standup's first member will leave mid-run, so it never
        # takes a speaking turn (membership freezes at fire time)
        speakers = memberships[name][1:] if name == "team-standup" else (
            memberships[name]
        )
        for turn in range(size // 2):
            speaker = rng.choice(speakers)
            plane.send_later(turn * 0.2, name, speaker, message_kbits=4.0)

    # mid-meeting membership: a latecomer joins the all-hands and an
    # early leaver drops out of the standup while events are in flight
    joiner = next(h for h in host_names if h not in memberships["all-hands"])
    plane.simulator.call_later(2.0, lambda: plane.join("all-hands", joiner))
    leaver = memberships["team-standup"][0]
    plane.simulator.call_later(1.5, lambda: plane.leave("team-standup", leaver))

    plane.drain()
    plane.verify_quiesced()  # every oracle, every room
    print(f"\n{joiner} joined all-hands at t=2.0; "
          f"{leaver} left team-standup at t=1.5 — all audits clean.\n")
    print(plane.report().render())

    load = plane.service.host_load_kbits()
    carried = [v for v in load.values() if v > 0]
    print(f"\nhosts carrying traffic : {len(carried)} / {HOSTS}")
    print(f"mean load (active)     : {sum(carried)/len(carried):8.1f} kbits")
    print("busiest hosts          :")
    for host, kbits in plane.service.busiest_hosts(5):
        rooms = ", ".join(plane.service.groups_of(host))
        print(f"   {host:10s} {kbits:8.1f} kbits  (rooms: {rooms})")

    print(
        "\nEach room's traffic stays inside its own overlay, but the "
        "deferral column shows the shared-uplink coupling: a host "
        "forwarding for two rooms serializes them on one link, and the "
        "plane reports that backpressure per room."
    )


if __name__ == "__main__":
    main()
