#!/usr/bin/env python3
"""Any-source multicast for a distributed game (Section 5.1 in action).

Scenario: 3,000 players exchange game events; *every* player is a
source.  A single shared multicast tree would route all traffic through
the same internal nodes (leaves — the majority — forward nothing,
internal nodes forward everything).  The flooding architecture gives
each source its own implicit tree, so forwarding work spreads across
the whole group.

The example pushes 200 events from 200 random sources through both
architectures and prints the per-node forwarding-load statistics.

Run:  python examples/multiplayer_game.py
"""

from random import Random

from repro import MulticastGroup, SystemKind
from repro.metrics.load import flooding_load, single_tree_load

PLAYERS = 3_000
EVENTS = 200
EVENT_KBITS = 4.0  # a small state-update packet


def describe(label: str, load) -> None:
    print(f"{label:12s} mean={load.mean:8.1f} kbits  max/mean={load.max_over_mean:6.2f}  "
          f"cov={load.coefficient_of_variation:5.2f}  idle={load.idle_fraction:5.1%}")


def main() -> None:
    rng = Random(5)
    bandwidths = [rng.uniform(400, 1000) for _ in range(PLAYERS)]
    group = MulticastGroup.build(
        SystemKind.CAM_CHORD, bandwidths, per_link_kbps=100, seed=5
    )

    sources = [group.random_member(rng) for _ in range(EVENTS)]
    trees = [group.multicast_from(source) for source in sources]
    for tree in trees:
        tree.verify_exactly_once({n.ident for n in group.snapshot})

    print(f"{PLAYERS} players, {EVENTS} events of {EVENT_KBITS:g} kbits each\n")
    flood = flooding_load(trees, message_kbits=EVENT_KBITS)
    shared = single_tree_load(trees[0], message_count=EVENTS, message_kbits=EVENT_KBITS)
    describe("flooding", flood)
    describe("single-tree", shared)

    print(
        "\nSame total forwarding work, very different distribution: the "
        "shared tree idles most players and concentrates the relaying on "
        "a few internal nodes, while per-source implicit trees keep "
        "everyone's share near the mean (Section 5.1)."
    )

    # Latency check: any-source means every player enjoys its own
    # shallow tree rather than a detour through a fixed root.
    depths = [tree.average_path_length() for tree in trees]
    print(
        f"\nper-event average path length: min={min(depths):.2f} "
        f"mean={sum(depths)/len(depths):.2f} max={max(depths):.2f} hops"
    )


if __name__ == "__main__":
    main()
