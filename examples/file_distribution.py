#!/usr/bin/env python3
"""Distributing a large file: timed pipelining over the implicit tree.

Scenario: push a 25 MB (200,000 kbit) software update from one seed
host to a 2,000-member swarm.  The packet-level simulation times every
member's download over the CAM-Chord implicit tree, showing

* the session converging to the analytic bottleneck (Section 6.1's
  model, which Figure 6 relies on),
* per-member start-up delay (how long until the first byte) growing
  with tree depth while the *rate* does not — the point of per-packet
  pipelining (Section 4.3),
* the p knob trading distribution time against stream start-up.

Run:  python examples/file_distribution.py
"""

from random import Random

from repro import MulticastGroup, SystemKind
from repro.sim.transfer import analytic_bottleneck_kbps, simulate_tree_transfer

SWARM = 2_000
FILE_KBITS = 200_000.0  # 25 MB


def main() -> None:
    rng = Random(11)
    bandwidths = [rng.uniform(400, 1000) for _ in range(SWARM)]

    print(f"{'p kbps':>7s} {'analytic kbps':>14s} {'measured kbps':>14s} "
          f"{'session s':>10s} {'max startup s':>14s}")
    for per_link in (40.0, 80.0, 120.0):
        group = MulticastGroup.build(
            SystemKind.CAM_CHORD, bandwidths, per_link_kbps=per_link, seed=11
        )
        source = group.random_member(Random(3))
        tree = group.multicast_from(source)
        analytic = analytic_bottleneck_kbps(tree, group.snapshot)
        transfer = simulate_tree_transfer(
            tree, group.snapshot, FILE_KBITS, packet_count=64
        )
        max_startup = max(
            transfer.startup_delay(ident) for ident in tree.parent
        )
        print(
            f"{per_link:7.0f} {analytic:14.1f} "
            f"{transfer.measured_throughput_kbps:14.1f} "
            f"{transfer.session_completion:10.1f} {max_startup:14.2f}"
        )

    print(
        "\nThe measured swarm rate tracks the analytic bottleneck "
        "(validating the Figure 6 model); raising p buys a faster "
        "distribution at the cost of deeper trees and longer start-up."
    )


if __name__ == "__main__":
    main()
