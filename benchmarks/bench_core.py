"""Core-figure timing harness: append a BENCH_core.json trajectory entry.

Runs the structural figures (the harness hot paths: snapshot builds,
tree extraction, lookups) several times each at the bench scale and
records the **median cold** wall time per figure — caches cleared
before every repetition — plus one **warm** re-run that shows what the
keyed snapshot/group cache saves.  Entries append to a trajectory, so
successive PRs can prove (or disprove) their speedups against the
committed baseline::

    PYTHONPATH=src python -m benchmarks.bench_core            # append entry
    PYTHONPATH=src python -m benchmarks.bench_core --dry-run  # print only
    PYTHONPATH=src python -m benchmarks.bench_core --quick    # CI perf smoke

``--quick`` is the CI regression gate: it times only the two most
kernel-sensitive figures (fig6, fig8), compares their cold medians
against the latest committed ``BENCH_core.json`` entry, writes a small
result JSON (uploaded as a CI artifact) and fails the process when a
figure is more than ``--tolerance`` (default 1.3×) slower than the
committed baseline *and* the slowdown exceeds an absolute noise floor
(:data:`NOISE_FLOOR_S` — fast figures jitter past any ratio from
scheduler noise alone).  Quick mode never appends to the trajectory.

The figure *values* are asserted elsewhere (pytest benchmarks and
tier-1 tests); this file measures time only.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from dataclasses import asdict
from datetime import datetime, timezone
from pathlib import Path

from repro import perf
from repro.experiments import registry
from repro.experiments.common import clear_caches, resolve_scale
from repro.trace.tracer import TRACER

#: the structural figures that exercise the core hot paths
CORE_FIGURES = (
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "extC", "extL", "extN",
)

#: the most kernel-sensitive figures, gated by the CI perf smoke
#: (extN gates the event-driven service plane's sustained throughput)
QUICK_FIGURES = ("fig6", "fig8", "extL", "extN")

#: a figure only counts as regressed when it is BOTH over the ratio
#: tolerance AND this much slower in absolute terms — sub-100ms
#: figures (extL at bench scale) jitter past 1.3x from scheduler noise
#: alone, and a regression that small is not actionable anyway
NOISE_FLOOR_S = 0.25

#: decades the trajectory's scale-sweep section records (subprocess-
#: isolated, so each decade's peak RSS is exact)
SCALE_SWEEP_DECADES = (1_000, 10_000)

#: fault plans per system in the repair-vs-failover comparison section
#: (seed-deterministic, so successive entries compare the same plans)
FAILOVER_PLANS_PER_SYSTEM = 4

#: representative figure for the tracing-overhead measurement
TRACING_FIGURE = "fig9"

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def time_figure(name: str, scale, seed: int = 0) -> float:
    """One cold wall-clock run of a figure (caches dropped first)."""
    run = registry.load(name).run
    clear_caches()
    started = time.perf_counter()
    run(scale, seed)
    return time.perf_counter() - started


def warm_figure(name: str, scale, seed: int = 0) -> float:
    """One warm re-run: caches still hold the figure's groups."""
    run = registry.load(name).run
    started = time.perf_counter()
    run(scale, seed)
    return time.perf_counter() - started


def measure_tracing(scale, repeats: int, seed: int = 0) -> dict:
    """Disabled vs enabled tracing cost on one representative figure.

    Every hot path carries a permanent ``if TRACER.enabled`` guard;
    ``disabled_median_s`` measures what that guard costs when tracing
    is off (the number that must stay within noise of the pre-tracing
    baseline), ``enabled_median_s`` what buffering events costs when
    it is on.
    """
    disabled = [time_figure(TRACING_FIGURE, scale, seed) for _ in range(repeats)]
    enabled: list[float] = []
    try:
        for _ in range(repeats):
            TRACER.enable()  # reset: don't let buffers accumulate
            enabled.append(time_figure(TRACING_FIGURE, scale, seed))
        events = len(TRACER)
    finally:
        TRACER.disable()
        TRACER.clear()
    disabled_median = statistics.median(disabled)
    enabled_median = statistics.median(enabled)
    print(
        f"tracing[{TRACING_FIGURE}] disabled median {disabled_median:7.3f}s  "
        f"enabled {enabled_median:7.3f}s  ({events} events/run)"
    )
    return {
        "figure": TRACING_FIGURE,
        "disabled_median_s": round(disabled_median, 4),
        "enabled_median_s": round(enabled_median, 4),
        "events_per_run": events,
    }


def measure_systems(scale, seed: int = 0) -> dict:
    """Registry-driven per-system timings: overlay build + one multicast.

    Iterates the :mod:`repro.systems` registry, so a fifth registered
    system shows up in the trajectory without touching this file.  Each
    system is built at its paper-typical knob (per-link rate 100 kbps
    for the capacity-aware systems, fanout 16 for the uniform
    baselines), translated through its fanout policy.
    """
    from random import Random

    from repro.multicast.session import MulticastGroup
    from repro.systems import all_descriptors

    rng = Random(seed)
    bandwidths = [rng.uniform(400.0, 1000.0) for _ in range(scale.group_size)]
    systems: dict[str, dict[str, float]] = {}
    for system in all_descriptors():
        knob = 100.0 if system.capacity_aware else 16.0
        per_link, uniform_fanout = system.fanout.group_build_args(knob, 100.0)
        started = time.perf_counter()
        group = MulticastGroup.build(
            system,
            bandwidths,
            per_link_kbps=per_link,
            space_bits=scale.space_bits,
            uniform_fanout=uniform_fanout,
            seed=seed,
        )
        build_s = time.perf_counter() - started
        started = time.perf_counter()
        result = group.multicast_from(group.snapshot.nodes[0])
        multicast_s = time.perf_counter() - started
        systems[system.name] = {
            "build_s": round(build_s, 4),
            "multicast_s": round(multicast_s, 4),
            "receivers": result.receiver_count,
        }
        print(
            f"system {system.name:10s} build {build_s:7.3f}s  "
            f"multicast {multicast_s:7.3f}s  ({result.receiver_count} receivers)"
        )
    return systems


def measure_scenarios(seed: int = 0) -> dict:
    """Per-scenario cell timings on the flagship system.

    Each library scenario compiles and runs one cam-chord cell (the
    full live quiesce-then-check phase plus the static measurement), so
    the trajectory tracks what a scenario-matrix cell costs and which
    scenario dominates the extM / CI smoke wall time.
    """
    from repro.scenarios import LIBRARY, compile_cell, run_cell, scenario_names

    scenarios: dict[str, dict] = {}
    for name in scenario_names():
        started = time.perf_counter()
        cell = compile_cell(LIBRARY[name], "cam-chord", seed)
        compile_s = time.perf_counter() - started
        started = time.perf_counter()
        outcome = run_cell(cell)
        run_s = time.perf_counter() - started
        scenarios[name] = {
            "compile_s": round(compile_s, 4),
            "run_s": round(run_s, 4),
            "events": len(cell.plan.events),
            "passed": outcome.passed,
        }
        print(
            f"scenario {name:22s} compile {compile_s:7.3f}s  "
            f"run {run_s:7.3f}s  [{'ok' if outcome.passed else 'FAIL'}]"
        )
    return scenarios


def measure_service(scale, seed: int = 0, profile: Path | None = None) -> dict:
    """Sustained service-plane throughput at the heaviest extN cell.

    Runs the largest (group count, churn) point of the extN sweep once
    and records **both** delivery rates: ``deliveries_per_sec`` (and
    its explicit alias ``deliveries_per_sec_sim``) is deliveries per
    *simulated* second — the number a deployment provisions against —
    while ``deliveries_per_sec_wall`` is deliveries per *wall-clock*
    second of plane execution, the rate the epoch-cached schedule path
    accelerates.  ``sched_cache`` carries the cell's cache attribution.
    The quiesce oracles run inside ``execute_point``, so a recorded
    number is always an audited one.

    With ``profile`` set, the same cell runs once more under cProfile
    (separately, so profiler overhead never poisons the recorded
    timings) and the top-20 cumulative functions land at that path.
    """
    from repro.experiments.ext_service import (
        CHURN_RATES,
        GROUP_COUNTS,
        execute_point,
    )

    groups = max(GROUP_COUNTS[scale.name])
    churn = max(CHURN_RATES[scale.name])
    started = time.perf_counter()
    row, timings = execute_point(scale, seed, (groups, churn))
    wall = time.perf_counter() - started
    entry = {
        "groups": groups,
        "churn": churn,
        "peak_concurrent": row["peak_concurrent"],
        "deliveries": row["deliveries"],
        "deliveries_per_sec": round(row["deliveries_per_sec"], 4),
        "deliveries_per_sec_sim": round(row["deliveries_per_sec"], 4),
        "deliveries_per_sec_wall": round(
            timings["deliveries_per_sec_wall"], 1
        ),
        "plane_wall_s": round(timings["plane_wall_s"], 4),
        "sched_cache": row["sched_cache"],
        "deferrals": row["deferrals"],
        "max_queue_depth": row["max_queue_depth"],
        "wall_s": round(wall, 4),
    }
    cache = row["sched_cache"]
    print(
        f"service groups={groups} churn={churn:g}: "
        f"{row['deliveries_per_sec']:.1f} deliveries/s sim, "
        f"{timings['deliveries_per_sec_wall']:.0f}/s wall, "
        f"{row['deferrals']} deferrals, wall {wall:7.3f}s, "
        f"cache {cache['hits']}h/{cache['misses']}m"
    )
    if profile is not None:
        _profile_service(scale, seed, (groups, churn), profile)
    return entry


def _profile_service(scale, seed: int, point, out_path: Path) -> None:
    """cProfile one extN cell and write the top-20 cumulative report."""
    import cProfile
    import io
    import pstats

    from repro.experiments.ext_service import execute_point

    profiler = cProfile.Profile()
    profiler.enable()
    execute_point(scale, seed, point)
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(
        20
    )
    out_path.write_text(stream.getvalue())
    print(f"service profile (top-20 cumulative) -> {out_path}")


def measure_failover(seed: int = 0) -> dict:
    """Repair vs precomputed-backup failover gap medians (PR 10).

    Runs a small seed-deterministic comparison campaign — every plan
    down both resilience paths, quiesced at the same instant — and
    records the paired affected-member gap percentiles.  The gaps are
    *simulated* seconds (deterministic given seed and plans), so the
    trajectory tracks the resilience semantics, while ``wall_s`` tracks
    what the comparison costs to run.  The headline invariant the quick
    gate holds: zero oracle failures on either path, and the failover
    median strictly below the repair median.
    """
    from repro.churn.resilience import percentile
    from repro.faults import generate_campaign, run_comparison_campaign
    from repro.systems import system_names

    plans = generate_campaign(system_names(), FAILOVER_PLANS_PER_SYSTEM, seed)
    started = time.perf_counter()
    result = run_comparison_campaign(plans, jobs=1)
    wall = time.perf_counter() - started
    pairs = result.paired_gaps()
    repair_gaps = [repair for repair, _failover in pairs]
    failover_gaps = [failover for _repair, failover in pairs]
    entry = {
        "plans_per_system": FAILOVER_PLANS_PER_SYSTEM,
        "plans": result.plans_run,
        "failures": len(result.failures),
        "affected_members": len(pairs),
        # None (not NaN) when no plan orphaned anyone: NaN is not JSON
        "repair_gap_p50": round(percentile(repair_gaps, 0.50), 4) if pairs else None,
        "repair_gap_p99": round(percentile(repair_gaps, 0.99), 4) if pairs else None,
        "failover_gap_p50": (
            round(percentile(failover_gaps, 0.50), 4) if pairs else None
        ),
        "failover_gap_p99": (
            round(percentile(failover_gaps, 0.99), 4) if pairs else None
        ),
        "wall_s": round(wall, 4),
    }
    print(
        f"failover {result.plans_run} plans, {len(result.failures)} failing, "
        f"{len(pairs)} affected members, gap p50 "
        f"repair={entry['repair_gap_p50']}s "
        f"failover={entry['failover_gap_p50']}s, wall {wall:7.3f}s"
    )
    return entry


def measure_scale_sweep(seed: int = 0) -> list[dict]:
    """Per-decade build/multicast/metrics time + exact peak RSS.

    Delegates to the extL harness's subprocess isolation; each entry
    carries per-system stage timings and that decade's ``peak_rss_mb``.
    """
    from repro.experiments.ext_scale import measure_decades_isolated

    results = measure_decades_isolated(SCALE_SWEEP_DECADES, seed)
    for entry in results:
        rss = entry["peak_rss_mb"]
        print(
            f"scale_sweep n={entry['n']}: peak RSS "
            f"{rss if rss is not None else 'n/a'}MB"
        )
    return results


def measure(scale, repeats: int, seed: int = 0, profile: Path | None = None) -> dict:
    """Median cold + warm seconds per core figure, with perf totals.

    Each figure's entry carries its *own* counter delta (the perf
    counters are process-global and monotone; without per-figure
    scoping the totals would attribute every figure's work to the
    batch as a whole).
    """
    figures: dict[str, dict[str, float]] = {}
    before = perf.snapshot()
    for name in CORE_FIGURES:
        with perf.scoped() as scope:
            colds = [time_figure(name, scale, seed) for _ in range(repeats)]
            warm = warm_figure(name, scale, seed)
        delta = scope.delta
        figures[name] = {
            "cold_median_s": round(statistics.median(colds), 4),
            "warm_s": round(warm, 4),
            "perf": {
                "resolves": delta.resolves,
                "kernel_resolves": delta.kernel_resolves,
                "kernel_resolves_saved": delta.kernel_resolves_saved,
                "deliveries": delta.deliveries,
            },
        }
        print(
            f"{name:6s} cold median {statistics.median(colds):7.3f}s  "
            f"warm {warm:7.3f}s  ({repeats} repeats)"
        )
    counters = perf.since(before)
    tracing = measure_tracing(scale, repeats, seed)
    systems = measure_systems(scale, seed)
    scenarios = measure_scenarios(seed)
    service = measure_service(scale, seed, profile=profile)
    failover = measure_failover(seed)
    scale_sweep = measure_scale_sweep(seed)
    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": scale.name,
        "group_size": scale.group_size,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "figures": figures,
        "tracing": tracing,
        "systems": systems,
        "scenarios": scenarios,
        "service": service,
        "failover": failover,
        "scale_sweep": scale_sweep,
        "perf": asdict(counters),
        "peak_rss_mb": perf.peak_rss_mb(),
    }


def quick_check(
    scale,
    repeats: int,
    seed: int,
    trajectory_path: Path,
    result_path: Path,
    tolerance: float,
    dps_floor: float = 0.77,
    profile: Path | None = None,
) -> int:
    """The CI perf smoke: gate fig6/fig8 cold medians on the committed
    baseline.  Returns a process exit code (1 = regression)."""
    trajectory = json.loads(trajectory_path.read_text())
    baseline = trajectory["entries"][-1]
    if baseline["scale"] != scale.name:
        raise SystemExit(
            f"--quick compares against the committed entry (scale "
            f"{baseline['scale']!r}); run with --scale {baseline['scale']}"
        )
    figures: dict[str, dict[str, float]] = {}
    passed = True
    for name in QUICK_FIGURES:
        if name not in baseline["figures"]:
            # the committed entry predates this figure (e.g. extL was
            # added later) — nothing to regress against until the next
            # trajectory append
            print(f"{name:6s} not in committed baseline; skipped")
            continue
        with perf.scoped() as scope:
            colds = [time_figure(name, scale, seed) for _ in range(repeats)]
        median = statistics.median(colds)
        committed = baseline["figures"][name]["cold_median_s"]
        ratio = median / committed
        ok = ratio <= tolerance or (median - committed) <= NOISE_FLOOR_S
        passed = passed and ok
        figures[name] = {
            "cold_median_s": round(median, 4),
            "baseline_cold_median_s": committed,
            "ratio": round(ratio, 3),
            "resolves": scope.delta.resolves,
            "kernel_resolves": scope.delta.kernel_resolves,
            "ok": ok,
        }
        print(
            f"{name:6s} cold median {median:7.3f}s  baseline {committed:7.3f}s  "
            f"ratio {ratio:5.2f}x  [{'ok' if ok else 'REGRESSION'}]"
        )
    service: dict | None = None
    if "service" in baseline:
        # sustained-throughput gate: the heaviest extN cell's wall
        # clock must stay within tolerance of the committed entry
        measured = measure_service(scale, seed, profile=profile)
        committed_wall = baseline["service"]["wall_s"]
        ratio = measured["wall_s"] / committed_wall
        ok = ratio <= tolerance or (
            measured["wall_s"] - committed_wall
        ) <= NOISE_FLOOR_S
        passed = passed and ok
        service = {
            "wall_s": measured["wall_s"],
            "baseline_wall_s": committed_wall,
            "ratio": round(ratio, 3),
            "deliveries_per_sec": measured["deliveries_per_sec"],
            "ok": ok,
        }
        print(
            f"service wall {measured['wall_s']:7.3f}s  baseline "
            f"{committed_wall:7.3f}s  ratio {ratio:5.2f}x  "
            f"[{'ok' if ok else 'REGRESSION'}]"
        )
        baseline_dps = baseline["service"].get("deliveries_per_sec_wall")
        if baseline_dps:
            # delivery-rate floor: wall-clock deliveries/sec must stay
            # at >= dps_floor of the committed rate (the inverse of
            # the <= tolerance wall gates), with the same absolute
            # noise escape — a sub-noise-floor slowdown on a cell this
            # small is scheduler jitter, not a regression
            dps = measured["deliveries_per_sec_wall"]
            dps_ratio = dps / baseline_dps
            slowdown = measured["plane_wall_s"] - baseline["service"].get(
                "plane_wall_s", 0.0
            )
            dps_ok = dps_ratio >= dps_floor or slowdown <= NOISE_FLOOR_S
            passed = passed and dps_ok
            service.update(
                {
                    "deliveries_per_sec_wall": dps,
                    "baseline_deliveries_per_sec_wall": baseline_dps,
                    "dps_ratio": round(dps_ratio, 3),
                    "dps_floor": dps_floor,
                    "dps_ok": dps_ok,
                }
            )
            print(
                f"service wall rate {dps:10.0f}/s  baseline "
                f"{baseline_dps:10.0f}/s  ratio {dps_ratio:5.2f}x  "
                f"(floor {dps_floor:.2f}x)  "
                f"[{'ok' if dps_ok else 'REGRESSION'}]"
            )
        else:
            print(
                "service wall-rate floor skipped: committed baseline "
                "predates deliveries_per_sec_wall"
            )
    failover: dict | None = None
    if "failover" in baseline:
        # resilience gate: the comparison campaign must stay clean on
        # both paths, and the precomputed-backup median gap must sit
        # strictly below the repair median *and* not regress past the
        # committed entry.  The gaps are simulated seconds — fully
        # deterministic given the seed — so any drift here is a
        # semantic change in plans, backups, or timing, never machine
        # noise.
        measured = measure_failover(seed)
        repair_p50 = measured["repair_gap_p50"]
        failover_p50 = measured["failover_gap_p50"]
        committed_p50 = baseline["failover"].get("failover_gap_p50")
        ok = (
            measured["failures"] == 0
            and repair_p50 is not None
            and failover_p50 is not None
            and failover_p50 < repair_p50
        )
        if ok and committed_p50 is not None:
            ok = failover_p50 <= committed_p50 * tolerance
        passed = passed and ok
        failover = {
            **measured,
            "baseline_failover_gap_p50": committed_p50,
            "ok": ok,
        }
        print(
            f"failover gap p50 {failover_p50}s  repair {repair_p50}s  "
            f"baseline {committed_p50}s  "
            f"[{'ok' if ok else 'REGRESSION'}]"
        )
    else:
        print("failover not in committed baseline; skipped")
    result = {
        "scale": scale.name,
        "repeats": repeats,
        "tolerance": tolerance,
        "baseline_recorded_at": baseline["recorded_at"],
        "python": platform.python_version(),
        "machine": platform.machine(),
        "figures": figures,
        "service": service,
        "failover": failover,
        "passed": passed,
    }
    result_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"quick result -> {result_path}  ({'pass' if passed else 'FAIL'})")
    return 0 if passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-core",
        description="Time the core figures and append to BENCH_core.json.",
    )
    parser.add_argument("--scale", default="bench", help="bench | quick | default | paper")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--dry-run", action="store_true", help="measure and print, do not write"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf smoke: time fig6/fig8 only, compare against the latest"
        " committed entry, write --quick-out, exit 1 on regression"
        " (never appends to the trajectory)",
    )
    parser.add_argument(
        "--quick-out",
        type=Path,
        default=Path("bench_quick.json"),
        metavar="PATH",
        help="where --quick writes its result JSON (CI artifact)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.3,
        help="--quick failure threshold: measured/committed cold-median ratio",
    )
    parser.add_argument(
        "--dps-floor",
        type=float,
        default=0.77,
        metavar="RATIO",
        help="--quick service gate: measured/committed wall-clock"
        " deliveries-per-sec must stay at or above this ratio"
        " (mirrors the <= 1.3x wall gates)",
    )
    parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help="also cProfile the service cell and write the top-20"
        " cumulative functions here (CI artifact)",
    )
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    if args.quick:
        return quick_check(
            scale,
            args.repeats,
            args.seed,
            args.out,
            args.quick_out,
            args.tolerance,
            dps_floor=args.dps_floor,
            profile=args.profile,
        )
    entry = measure(
        scale, repeats=args.repeats, seed=args.seed, profile=args.profile
    )

    if args.dry_run:
        print(json.dumps(entry, indent=2))
        return 0

    if args.out.exists():
        trajectory = json.loads(args.out.read_text())
    else:
        trajectory = {"schema": 1, "entries": []}
    trajectory["entries"].append(entry)
    args.out.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended entry {len(trajectory['entries'])} to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
