"""Benchmark configuration.

Each ``test_figXX.py`` regenerates one paper figure (printing the same
rows the paper plots) inside ``pytest-benchmark`` timing, then asserts
the figure's headline *shape*.  The default benchmark scale is small so
the whole suite runs in a few minutes; set ``REPRO_BENCH_SCALE`` to
``quick`` / ``default`` / ``paper`` to rerun at larger sizes (figure
shapes are scale-stable — see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import SCALES, ExperimentScale, clear_caches, resolve_scale

#: tuned so the full benchmark suite completes in minutes
BENCH = SCALES["bench"]


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The active benchmark scale.

    ``resolve_scale`` (rather than a raw ``SCALES[...]`` lookup) turns a
    mistyped ``REPRO_BENCH_SCALE`` into the helpful "unknown scale ...;
    choose from [...]" error instead of a bare ``KeyError``.
    """
    name = os.environ.get("REPRO_BENCH_SCALE")
    if name:
        return resolve_scale(name)
    return BENCH


@pytest.fixture(autouse=True)
def cold_caches():
    """Benchmarks measure cold-path cost: drop memoized groups per test."""
    clear_caches()
    yield


def render(result) -> None:
    """Print a figure's rows into the benchmark log."""
    print()
    print(result.render())
