"""Benchmark configuration.

Each ``test_figXX.py`` regenerates one paper figure (printing the same
rows the paper plots) inside ``pytest-benchmark`` timing, then asserts
the figure's headline *shape*.  The default benchmark scale is small so
the whole suite runs in a few minutes; set ``REPRO_BENCH_SCALE`` to
``quick`` / ``default`` / ``paper`` to rerun at larger sizes (figure
shapes are scale-stable — see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import SCALES, ExperimentScale

#: tuned so the full benchmark suite completes in minutes
BENCH = ExperimentScale("bench", 2_500, 2, 40, space_bits=14)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The active benchmark scale."""
    name = os.environ.get("REPRO_BENCH_SCALE")
    if name:
        return SCALES[name]
    return BENCH


def render(result) -> None:
    """Print a figure's rows into the benchmark log."""
    print()
    print(result.render())
