"""Extension A bench: delivery ratio under churn (live protocol)."""

from __future__ import annotations

from repro.experiments import ext_churn
from benchmarks.conftest import render


def test_ext_churn(benchmark, scale):
    result = benchmark.pedantic(ext_churn.run, args=(scale,), rounds=1, iterations=1)
    render(result)

    chord = dict(result.get_series("cam-chord").points)
    koorde = dict(result.get_series("cam-koorde").points)
    top_rate = max(chord)

    # No churn: both systems deliver everything.
    assert chord[0.0] == 1.0
    assert koorde[0.0] == 1.0
    # Under churn: flooding stays (near) lossless, the tree degrades.
    assert koorde[top_rate] >= chord[top_rate]
    assert koorde[top_rate] > 0.97
    # Flooding pays with duplicate traffic.
    koorde_dups = dict(result.get_series("cam-koorde dups/msg").points)
    chord_dups = dict(result.get_series("cam-chord dups/msg").points)
    assert koorde_dups[top_rate] > 10 * max(chord_dups[top_rate], 1.0)
