"""Extension I bench: FastTrack-style session churn."""

from __future__ import annotations

from repro.experiments import ext_sessions
from benchmarks.conftest import render


def test_ext_sessions(benchmark, scale):
    result = benchmark.pedantic(
        ext_sessions.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    chord = dict(result.get_series("cam-chord").points)
    koorde = dict(result.get_series("cam-koorde").points)
    shortest = min(chord)
    longest = max(chord)

    # long sessions: both systems essentially lossless
    assert chord[longest] > 0.95
    assert koorde[longest] > 0.99
    # short sessions hurt the tree more than the flood
    assert koorde[shortest] >= chord[shortest]
    # delivery degrades as sessions shorten
    assert chord[shortest] < chord[longest]
