"""Extension G bench: Geographic Layout vs PNS vs random (§5.2)."""

from __future__ import annotations

from repro.experiments import ext_geography
from benchmarks.conftest import render


def mean_at(series, offset: float) -> float:
    values = [y for x, y in series.points if abs(x % 1 - offset) < 1e-9]
    return sum(values) / len(values)


def test_ext_geography(benchmark, scale):
    result = benchmark.pedantic(
        ext_geography.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    random_delay = mean_at(result.get_series("random layout"), 0.0)
    pns_delay = mean_at(result.get_series("random + pns"), 0.0)
    geo_delay = mean_at(result.get_series("geographic layout"), 0.0)

    # both §5.2 techniques beat the random baseline on delay ...
    assert pns_delay < random_delay
    assert geo_delay < random_delay
    # ... with hop counts within 15% of the baseline's
    random_hops = mean_at(result.get_series("random layout"), 0.5)
    for label in ("random + pns", "geographic layout"):
        hops = mean_at(result.get_series(label), 0.5)
        assert hops < random_hops * 1.15
