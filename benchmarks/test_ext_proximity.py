"""Extension D bench: proximity neighbor selection (Section 5.2)."""

from __future__ import annotations

from repro.experiments import ext_proximity
from benchmarks.conftest import render


def test_ext_proximity(benchmark, scale):
    result = benchmark.pedantic(
        ext_proximity.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    default = dict(result.get_series("default (mean, max, hops)").points)
    pns = dict(result.get_series("pns (mean, max, hops)").points)
    sources = {int(x) for x in default if x == int(x)}

    mean_default = sum(default[float(k)] for k in sources) / len(sources)
    mean_pns = sum(pns[float(k)] for k in sources) / len(sources)
    # PNS cuts mean delivery delay ...
    assert mean_pns < mean_default
    # ... without inflating hop counts by more than ~15%.
    hops_default = sum(default[k + 0.5] for k in sources) / len(sources)
    hops_pns = sum(pns[k + 0.5] for k in sources) / len(sources)
    assert hops_pns < hops_default * 1.15
