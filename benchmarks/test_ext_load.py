"""Extension B bench: Section 5.1 forwarding-load balance."""

from __future__ import annotations

from repro.experiments import ext_load
from benchmarks.conftest import render


def test_ext_load(benchmark, scale):
    result = benchmark.pedantic(ext_load.run, args=(scale,), rounds=1, iterations=1)
    render(result)

    flood = dict(result.get_series("flooding").points)
    tree = dict(result.get_series("single-tree").points)

    # Same total work (x=0 is mean kbits per node) ...
    assert abs(flood[0] - tree[0]) / tree[0] < 0.05
    # ... but flooding spreads it: smaller peak-to-mean, smaller spread,
    # and far fewer idle members (tree-building idles every leaf, the
    # majority when fanout > 2 — Section 5.1).
    assert flood[1] < tree[1]
    assert flood[2] < tree[2]
    assert flood[3] < 0.2
    assert tree[3] > 0.5
