"""Figure 11 bench: average path length vs average capacity."""

from __future__ import annotations

from repro.experiments import fig11_avg_path_length
from benchmarks.conftest import render


def test_fig11(benchmark, scale):
    result = benchmark.pedantic(
        fig11_avg_path_length.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    chord = dict(result.get_series("cam-chord").points)
    koorde = dict(result.get_series("cam-koorde").points)
    bound = dict(result.get_series("1.5*ln(n)/ln(c)").points)

    # Shape 1: both fall monotonically with capacity.
    for series in (chord, koorde):
        xs = sorted(series)
        ys = [series[x] for x in xs]
        assert all(a >= b - 0.3 for a, b in zip(ys, ys[1:]))  # small wobble ok

    # Shape 2: the 1.5 ln(n)/ln(c) curve upper-bounds both systems
    # (Theorems 4 and 6).  The paper tunes the constant at n = 100,000;
    # small benchmark groups have a constant depth floor the bound does
    # not model, hence the additive slack (negligible at paper scale).
    for x in chord:
        assert chord[x] <= bound[x] * 1.1 + 1.0
        assert koorde[x] <= bound[x] * 1.1 + 1.0

    # Shape 3: the paper's crossover — CAM-Chord shorter for small
    # capacities, CAM-Koorde no worse for large ones.
    assert chord[4.0] < koorde[4.0]
    assert koorde[102.0] <= chord[102.0] * 1.05
