"""Figure 10 bench: CAM-Koorde path-length distributions."""

from __future__ import annotations

from repro.experiments import fig10_pathdist_cam_koorde
from benchmarks.conftest import render
from benchmarks.test_fig09_pathdist import mean_hops


def test_fig10(benchmark, scale):
    result = benchmark.pedantic(
        fig10_pathdist_cam_koorde.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    means = {series.label: mean_hops(series) for series in result.series}
    # Shape: curves shift left with wider capacity ranges, with the
    # largest improvement at the start of the sweep.
    assert means["4"] > means["[4..10]"] > means["[4..40]"] > means["[4..200]"]
    gain_early = means["4"] - means["[4..10]"]
    gain_late = means["[4..40]"] - means["[4..100]"]
    assert gain_early > gain_late
