"""Micro-benchmarks of the core operations (real timing statistics).

Unlike the per-figure benches (which wrap a whole experiment once),
these measure the hot paths repeatedly: building a full implicit
multicast tree and resolving a lookup, for each of the four systems.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.multicast.session import MulticastGroup, SystemKind


def build_group(kind: SystemKind, size: int = 2_000, bits: int = 14):
    rng = Random(1)
    bandwidths = [rng.uniform(400, 1000) for _ in range(size)]
    return MulticastGroup.build(
        kind,
        bandwidths,
        per_link_kbps=100,
        space_bits=bits,
        uniform_fanout=8,
        seed=1,
    )


@pytest.mark.parametrize("kind", list(SystemKind), ids=lambda k: k.value)
def test_multicast_tree_extraction(benchmark, kind):
    group = build_group(kind)
    source = group.random_member(Random(2))

    tree = benchmark(lambda: group.multicast_from(source))
    assert tree.receiver_count == len(group)


@pytest.mark.parametrize("kind", list(SystemKind), ids=lambda k: k.value)
def test_lookup(benchmark, kind):
    group = build_group(kind)
    rng = Random(3)
    starts = [group.random_member(rng) for _ in range(64)]
    keys = [rng.randrange(group.overlay.space.size) for _ in range(64)]
    state = {"i": 0}

    def one_lookup():
        i = state["i"] = (state["i"] + 1) % 64
        return group.lookup(starts[i], keys[i])

    result = benchmark(one_lookup)
    group.overlay.check_lookup_invariants(result, keys[state["i"]])


def test_snapshot_resolution(benchmark):
    group = build_group(SystemKind.CAM_CHORD)
    rng = Random(4)
    keys = [rng.randrange(group.overlay.space.size) for _ in range(1024)]
    state = {"i": 0}

    def one_resolve():
        state["i"] = (state["i"] + 1) % 1024
        return group.snapshot.resolve(keys[state["i"]])

    node = benchmark(one_resolve)
    assert node is not None
