"""Extension F bench: acked repair vs baseline under churn."""

from __future__ import annotations

from repro.experiments import ext_reliability
from benchmarks.conftest import render


def test_ext_reliability(benchmark, scale):
    result = benchmark.pedantic(
        ext_reliability.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    baseline = dict(result.get_series("baseline").points)
    repaired = dict(result.get_series("acked-repair").points)
    top_rate = max(baseline)

    # Both lossless with no churn.
    assert baseline[0.0] == 1.0
    assert repaired[0.0] == 1.0
    # Repair recovers (most of) the churn loss.
    assert repaired[top_rate] >= baseline[top_rate]
    assert repaired[top_rate] > 0.9
    # ... at far below flooding's duplicate cost (extA: ~1000/msg).
    repair_dups = dict(result.get_series("acked-repair dups/msg").points)
    assert repair_dups[top_rate] < 100
