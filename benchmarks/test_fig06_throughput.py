"""Figure 6 bench: throughput vs average number of children."""

from __future__ import annotations

from repro.experiments import fig06_throughput
from benchmarks.conftest import render


def test_fig06(benchmark, scale):
    result = benchmark.pedantic(
        fig06_throughput.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    cam_chord = dict(result.get_series("cam-chord").points)
    cam_koorde = dict(result.get_series("cam-koorde").points)
    chord = dict(result.get_series("chord").points)
    koorde = dict(result.get_series("koorde").points)

    # Shape 1: every curve decays with fanout (more children per node
    # means less bandwidth per child link).
    for series in (cam_chord, chord, koorde):
        xs = sorted(series)
        assert series[xs[0]] > series[xs[-1]]

    # Shape 2: the capacity-aware systems beat their baselines at
    # comparable fanout, by roughly the heterogeneity factor 1.75
    # (paper: 70-80% improvement).
    def interp(series: dict, x: float) -> float:
        xs = sorted(series)
        lo = max((v for v in xs if v <= x), default=xs[0])
        hi = min((v for v in xs if v >= x), default=xs[-1])
        if lo == hi:
            return series[lo]
        t = (x - lo) / (hi - lo)
        return series[lo] * (1 - t) + series[hi] * t

    for fanout in (8.0, 16.0, 32.0):
        chord_ratio = interp(cam_chord, fanout) / interp(chord, fanout)
        koorde_ratio = interp(cam_koorde, fanout) / interp(koorde, fanout)
        assert 1.3 < chord_ratio < 2.6, f"cam-chord/chord @ {fanout}: {chord_ratio}"
        assert 1.2 < koorde_ratio < 3.0, f"cam-koorde/koorde @ {fanout}: {koorde_ratio}"
