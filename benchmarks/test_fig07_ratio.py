"""Figure 7 bench: throughput ratio vs bandwidth heterogeneity."""

from __future__ import annotations

from repro.experiments import fig07_ratio
from benchmarks.conftest import render


def test_fig07(benchmark, scale):
    result = benchmark.pedantic(
        fig07_ratio.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    reference = result.get_series("(a+b)/2a reference").ys()
    for label in ("cam-chord over chord", "cam-koorde over koorde"):
        ratios = result.get_series(label).ys()
        # grows with the bandwidth range ...
        assert ratios[-1] > ratios[0], label
        # ... and tracks (a+b)/2a within a modest margin
        for ratio, ref in zip(ratios, reference):
            assert ref * 0.6 < ratio < ref * 1.45, (label, ratio, ref)
