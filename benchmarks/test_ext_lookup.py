"""Extension C bench: lookup hop scaling (Theorems 1-2, 5)."""

from __future__ import annotations

from repro.experiments import ext_lookup
from benchmarks.conftest import render


def test_ext_lookup(benchmark, scale):
    result = benchmark.pedantic(ext_lookup.run, args=(scale,), rounds=1, iterations=1)
    render(result)

    reference = result.get_series("ln(n)/ln(7) reference")
    for label in ("cam-chord", "cam-koorde", "chord", "koorde"):
        series = result.get_series(label)
        ys = series.ys()
        # hops grow with n ...
        assert ys[-1] > ys[0], label
        # ... sublinearly: 10x the nodes costs far less than 10x hops
        assert ys[-1] < 4 * ys[0], label
    # CAM-Chord's greedy descent stays within a small constant of the
    # ln(n)/ln(mean capacity) theory curve.
    for (_, hops), (_, ref) in zip(
        result.get_series("cam-chord").points, reference.points
    ):
        assert hops < 2.5 * ref
