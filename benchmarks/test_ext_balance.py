"""Extension E bench: balanced splitter vs El-Ansary broadcast."""

from __future__ import annotations

from repro.experiments import ext_balance
from benchmarks.conftest import render


def test_ext_balance(benchmark, scale):
    result = benchmark.pedantic(
        ext_balance.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    balanced = dict(result.get_series("balanced (ours)").points)
    el_ansary = dict(result.get_series("el-ansary").points)
    sources = {int(x) for x in balanced if x == int(x)}

    for k in sources:
        # our splitter caps root and max degree at the uniform fanout
        assert balanced[float(k)] <= ext_balance.FANOUT
        assert balanced[k + 0.2] <= ext_balance.FANOUT
        # El-Ansary's root forwards to every distinct finger: ~(k-1)log_k n
        assert el_ansary[float(k)] > 2 * ext_balance.FANOUT
