"""Figure 9 bench: CAM-Chord path-length distributions."""

from __future__ import annotations

from repro.experiments import fig09_pathdist_cam_chord
from benchmarks.conftest import render


def mean_hops(series) -> float:
    total = sum(x * y for x, y in series.points)
    count = sum(y for _, y in series.points)
    return total / count


def test_fig09(benchmark, scale):
    result = benchmark.pedantic(
        fig09_pathdist_cam_chord.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    # Shape 1: widening the capacity range shifts the distribution left.
    means = {series.label: mean_hops(series) for series in result.series}
    assert means["4"] > means["[4..10]"] > means["[4..40]"] > means["[4..200]"]

    # Shape 2: diminishing returns — the first widening helps much more
    # than a later one of equal proportion.
    gain_early = means["4"] - means["[4..10]"]
    gain_late = means["[4..40]"] - means["[4..100]"]
    assert gain_early > gain_late

    # Shape 3: single peak, no heavy right tail: nothing is reached at
    # more than ~2.5x the mean path length.
    for series in result.series:
        longest = max(x for x, _ in series.points)
        assert longest <= 2.5 * means[series.label] + 2
