"""Figure 8 bench: throughput/latency trade-off and the CAM crossover."""

from __future__ import annotations

from repro.experiments import fig08_tradeoff
from benchmarks.conftest import render


def test_fig08(benchmark, scale):
    result = benchmark.pedantic(
        fig08_tradeoff.run, args=(scale,), rounds=1, iterations=1
    )
    render(result)

    chord = result.get_series("cam-chord").points
    koorde = result.get_series("cam-koorde").points

    # Shape 1: latency rises with throughput for both systems.
    for points in (chord, koorde):
        assert points[-1][1] > points[0][1]

    # Shape 2: at the low-throughput end (large capacities) CAM-Koorde's
    # paths are no longer than CAM-Chord's; at the high-throughput end
    # (small capacities) CAM-Chord wins (the paper's crossover).
    low_chord, low_koorde = chord[0], koorde[0]
    assert low_koorde[1] <= low_chord[1] * 1.1
    high_chord = [y for x, y in chord if x >= 90]
    high_koorde = [y for x, y in koorde if x >= 90]
    assert min(high_koorde) > min(high_chord)
