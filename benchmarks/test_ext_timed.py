"""Extension H bench: timed pipeline vs analytic throughput model."""

from __future__ import annotations

from repro.experiments import ext_timed
from benchmarks.conftest import render


def test_ext_timed(benchmark, scale):
    result = benchmark.pedantic(ext_timed.run, args=(scale,), rounds=1, iterations=1)
    render(result)

    ratios = result.get_series("measured/analytic (long)")
    for per_link, ratio in ratios.points:
        assert 0.8 <= ratio <= 1.0001, (per_link, ratio)
    shorts = dict(result.get_series("measured short-message (kbps)").points)
    analytic = dict(result.get_series("analytic bottleneck (kbps)").points)
    for per_link in analytic:
        assert shorts[per_link] < analytic[per_link]
