"""Workload generation for experiments and examples."""

from repro.workloads.groups import GroupSpec, generate_group

__all__ = ["GroupSpec", "generate_group"]
