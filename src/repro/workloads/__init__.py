"""Workload generation for experiments and examples.

:class:`GroupSpec` and :class:`ServiceWorkloadSpec` are JSON
round-trippable (``to_json_dict`` / ``from_json_dict``), so scenario
specs (:mod:`repro.scenarios`) can embed group and service workloads
the same way fault plans embed their schedules.
"""

from repro.workloads.groups import (
    GroupSpec,
    ServiceEvent,
    ServiceWorkload,
    ServiceWorkloadSpec,
    generate_group,
    generate_service_workload,
)

__all__ = [
    "GroupSpec",
    "ServiceEvent",
    "ServiceWorkload",
    "ServiceWorkloadSpec",
    "generate_group",
    "generate_service_workload",
]
