"""Workload generation for experiments and examples.

:class:`GroupSpec` is JSON round-trippable (``to_json_dict`` /
``from_json_dict``), so scenario specs (:mod:`repro.scenarios`) can
embed group workloads the same way fault plans embed their schedules.
"""

from repro.workloads.groups import GroupSpec, generate_group

__all__ = ["GroupSpec", "generate_group"]
