"""Reproducible generation of multicast groups.

A :class:`GroupSpec` captures everything the paper's Section 6 setup
varies: group size, identifier-space width, and either a capacity
distribution (Figures 9-11 sweep capacity ranges directly) or a
bandwidth distribution plus per-link rate ``p`` (Figures 6-8 derive
capacities as ``floor(B_x / p)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any

from repro.capacity.distributions import (
    BandwidthDistribution,
    CapacityDistribution,
    bandwidth_distribution_from_json,
    capacity_distribution_from_json,
    distribution_to_json,
)
from repro.capacity.model import CapacityModel
from repro.idspace.ring import IdentifierSpace
from repro.overlay.base import RingSnapshot, build_snapshot


@dataclass(frozen=True)
class GroupSpec:
    """Parameters of one generated group.

    Exactly one of ``capacities`` / (``bandwidths`` + ``per_link_kbps``)
    must be provided.  ``min_capacity`` is the overlay-specific floor
    applied after sampling (CAM-Chord: 2, CAM-Koorde: 4).
    """

    size: int
    space_bits: int = 19
    capacities: CapacityDistribution | None = None
    bandwidths: BandwidthDistribution | None = None
    per_link_kbps: float | None = None
    min_capacity: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"group size must be >= 1, got {self.size}")
        capacity_mode = self.capacities is not None
        bandwidth_mode = self.bandwidths is not None
        if capacity_mode == bandwidth_mode:
            raise ValueError(
                "provide exactly one of capacities / bandwidths(+per_link_kbps)"
            )
        if bandwidth_mode and self.per_link_kbps is None:
            raise ValueError("bandwidth mode requires per_link_kbps (the paper's p)")

    # -- JSON ------------------------------------------------------------
    #
    # Scenario specs (repro.scenarios) embed group workloads, so a spec
    # must survive the same JSON round-trip FaultPlan does: dump, load,
    # and the reloaded spec generates the byte-identical group.

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "size": self.size,
            "space_bits": self.space_bits,
            "min_capacity": self.min_capacity,
        }
        if self.capacities is not None:
            out["capacities"] = distribution_to_json(self.capacities)
        else:
            assert self.bandwidths is not None
            out["bandwidths"] = distribution_to_json(self.bandwidths)
            out["per_link_kbps"] = self.per_link_kbps
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "GroupSpec":
        return cls(
            size=int(raw["size"]),
            space_bits=int(raw.get("space_bits", 19)),
            capacities=(
                capacity_distribution_from_json(raw["capacities"])
                if raw.get("capacities") is not None
                else None
            ),
            bandwidths=(
                bandwidth_distribution_from_json(raw["bandwidths"])
                if raw.get("bandwidths") is not None
                else None
            ),
            per_link_kbps=(
                float(raw["per_link_kbps"])
                if raw.get("per_link_kbps") is not None
                else None
            ),
            min_capacity=int(raw.get("min_capacity", 1)),
        )


def generate_group(spec: GroupSpec, seed: int = 0) -> RingSnapshot:
    """Materialize a membership snapshot from a spec, deterministically.

    The same ``(spec, seed)`` pair always produces the identical
    snapshot: identifier placement, bandwidths and capacities all draw
    from one seeded generator.
    """
    rng = Random(seed)
    space = IdentifierSpace(spec.space_bits)
    if spec.capacities is not None:
        capacities = [
            max(spec.min_capacity, spec.capacities.sample(rng))
            for _ in range(spec.size)
        ]
        bandwidths = None
    else:
        assert spec.bandwidths is not None and spec.per_link_kbps is not None
        model = CapacityModel(spec.per_link_kbps, minimum=spec.min_capacity)
        bandwidths = spec.bandwidths.sample_many(spec.size, rng)
        capacities = model.capacities(bandwidths)
    return build_snapshot(space, capacities, bandwidths=bandwidths, rng=rng)
