"""Reproducible generation of multicast groups and service workloads.

A :class:`GroupSpec` captures everything the paper's Section 6 setup
varies: group size, identifier-space width, and either a capacity
distribution (Figures 9-11 sweep capacity ranges directly) or a
bandwidth distribution plus per-link rate ``p`` (Figures 6-8 derive
capacities as ``floor(B_x / p)``).

A :class:`ServiceWorkloadSpec` describes the *service-plane* regime on
top of that: many groups arriving over time with exponential holding
times, per-group send cadences, and poisson member join/leave churn
firing **mid-dissemination**.  :func:`generate_service_workload`
compiles it to a concrete, time-ordered :class:`ServiceEvent` sequence
— the generator tracks each group's membership as it walks forward, so
every event is valid by construction (joins pick non-members, leaves
keep at least two members, sends originate at members) and the same
``(spec, seed)`` pair always yields the identical sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any

from repro.capacity.distributions import (
    BandwidthDistribution,
    CapacityDistribution,
    bandwidth_distribution_from_json,
    capacity_distribution_from_json,
    distribution_to_json,
)
from repro.capacity.model import CapacityModel
from repro.idspace.ring import IdentifierSpace
from repro.overlay.base import RingSnapshot, build_snapshot


@dataclass(frozen=True)
class GroupSpec:
    """Parameters of one generated group.

    Exactly one of ``capacities`` / (``bandwidths`` + ``per_link_kbps``)
    must be provided.  ``min_capacity`` is the overlay-specific floor
    applied after sampling (CAM-Chord: 2, CAM-Koorde: 4).
    """

    size: int
    space_bits: int = 19
    capacities: CapacityDistribution | None = None
    bandwidths: BandwidthDistribution | None = None
    per_link_kbps: float | None = None
    min_capacity: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"group size must be >= 1, got {self.size}")
        capacity_mode = self.capacities is not None
        bandwidth_mode = self.bandwidths is not None
        if capacity_mode == bandwidth_mode:
            raise ValueError(
                "provide exactly one of capacities / bandwidths(+per_link_kbps)"
            )
        if bandwidth_mode and self.per_link_kbps is None:
            raise ValueError("bandwidth mode requires per_link_kbps (the paper's p)")

    # -- JSON ------------------------------------------------------------
    #
    # Scenario specs (repro.scenarios) embed group workloads, so a spec
    # must survive the same JSON round-trip FaultPlan does: dump, load,
    # and the reloaded spec generates the byte-identical group.

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "size": self.size,
            "space_bits": self.space_bits,
            "min_capacity": self.min_capacity,
        }
        if self.capacities is not None:
            out["capacities"] = distribution_to_json(self.capacities)
        else:
            assert self.bandwidths is not None
            out["bandwidths"] = distribution_to_json(self.bandwidths)
            out["per_link_kbps"] = self.per_link_kbps
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "GroupSpec":
        return cls(
            size=int(raw["size"]),
            space_bits=int(raw.get("space_bits", 19)),
            capacities=(
                capacity_distribution_from_json(raw["capacities"])
                if raw.get("capacities") is not None
                else None
            ),
            bandwidths=(
                bandwidth_distribution_from_json(raw["bandwidths"])
                if raw.get("bandwidths") is not None
                else None
            ),
            per_link_kbps=(
                float(raw["per_link_kbps"])
                if raw.get("per_link_kbps") is not None
                else None
            ),
            min_capacity=int(raw.get("min_capacity", 1)),
        )


@dataclass(frozen=True)
class ServiceEvent:
    """One concrete service-plane action, ready to replay.

    ``hosts`` holds the full member list for ``create``, the single
    affected host for ``join`` / ``leave``, the source host for
    ``send``, and is empty for ``drop``.
    """

    time: float
    action: str  # "create" | "drop" | "join" | "leave" | "send"
    group: str
    hosts: tuple[str, ...] = ()
    kind: str = "cam-chord"
    per_link_kbps: float = 100.0
    message_kbits: float = 1.0


@dataclass(frozen=True)
class ServiceWorkload:
    """A compiled service workload: the host population to register
    (name → upload kbps, in registration order) and the time-ordered
    event sequence to replay."""

    hosts: tuple[tuple[str, float], ...]
    events: tuple[ServiceEvent, ...]

    def counts(self) -> dict[str, int]:
        """Events per action — the workload's shape at a glance."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.action] = out.get(event.action, 0) + 1
        return out


@dataclass(frozen=True)
class ServiceWorkloadSpec:
    """Parameters of a multi-group service-plane workload.

    ``groups`` arrive uniformly over the first ``arrival_window``
    fraction of the horizon and live for an exponential holding time
    (mean ``mean_hold_s``; a group whose holding time crosses the
    horizon simply stays open — no drop event).  While alive, a group
    originates sends every ~``send_interval_s`` (exponential) from a
    random current member, and suffers member churn — join or leave,
    equal odds — at ``churn_rate`` events per group-second.  Churn
    fires between sends, i.e. mid-dissemination once replayed onto the
    event-driven plane.
    """

    groups: int
    hosts: int
    group_size: int
    horizon_s: float
    send_interval_s: float = 5.0
    churn_rate: float = 0.0  # member join/leave events per group-second
    mean_hold_s: float | None = None  # None: groups never drop
    arrival_window: float = 0.25  # fraction of the horizon for arrivals
    message_kbits: float = 8.0
    kind: str = "cam-chord"
    per_link_kbps: float = 100.0
    bandwidths: BandwidthDistribution | None = None  # None: uniform 500 kbps
    min_group_size: int = 2

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError(f"need at least one group, got {self.groups}")
        if self.group_size < self.min_group_size:
            raise ValueError(
                f"group_size {self.group_size} below minimum "
                f"{self.min_group_size}"
            )
        if self.hosts < self.group_size:
            raise ValueError(
                f"population of {self.hosts} cannot seat a group of "
                f"{self.group_size}"
            )
        if self.horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon_s}")
        if self.send_interval_s <= 0:
            raise ValueError(
                f"send interval must be positive, got {self.send_interval_s}"
            )
        if self.churn_rate < 0:
            raise ValueError(f"churn rate must be >= 0, got {self.churn_rate}")
        if not 0.0 < self.arrival_window <= 1.0:
            raise ValueError(
                f"arrival window must be in (0, 1], got {self.arrival_window}"
            )

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "groups": self.groups,
            "hosts": self.hosts,
            "group_size": self.group_size,
            "horizon_s": self.horizon_s,
            "send_interval_s": self.send_interval_s,
            "churn_rate": self.churn_rate,
            "mean_hold_s": self.mean_hold_s,
            "arrival_window": self.arrival_window,
            "message_kbits": self.message_kbits,
            "kind": self.kind,
            "per_link_kbps": self.per_link_kbps,
            "min_group_size": self.min_group_size,
        }
        if self.bandwidths is not None:
            out["bandwidths"] = distribution_to_json(self.bandwidths)
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "ServiceWorkloadSpec":
        return cls(
            groups=int(raw["groups"]),
            hosts=int(raw["hosts"]),
            group_size=int(raw["group_size"]),
            horizon_s=float(raw["horizon_s"]),
            send_interval_s=float(raw.get("send_interval_s", 5.0)),
            churn_rate=float(raw.get("churn_rate", 0.0)),
            mean_hold_s=(
                float(raw["mean_hold_s"])
                if raw.get("mean_hold_s") is not None
                else None
            ),
            arrival_window=float(raw.get("arrival_window", 0.25)),
            message_kbits=float(raw.get("message_kbits", 8.0)),
            kind=str(raw.get("kind", "cam-chord")),
            per_link_kbps=float(raw.get("per_link_kbps", 100.0)),
            bandwidths=(
                bandwidth_distribution_from_json(raw["bandwidths"])
                if raw.get("bandwidths") is not None
                else None
            ),
            min_group_size=int(raw.get("min_group_size", 2)),
        )


def generate_service_workload(
    spec: ServiceWorkloadSpec, seed: int = 0
) -> ServiceWorkload:
    """Compile a spec into hosts plus a valid, time-ordered event list.

    Determinism: one seeded generator drives everything, groups are
    generated in index order, and the final merge sorts by
    ``(time, generation index)`` — so the same ``(spec, seed)`` always
    compiles to the byte-identical workload, and replay order on the
    event-driven plane is the generation order for simultaneous events.
    """
    rng = Random(seed)
    host_names = [f"host{i:05d}" for i in range(spec.hosts)]
    if spec.bandwidths is not None:
        rates = spec.bandwidths.sample_many(spec.hosts, rng)
    else:
        rates = [500.0] * spec.hosts
    hosts = tuple(zip(host_names, (float(rate) for rate in rates)))

    indexed: list[tuple[float, int, ServiceEvent]] = []
    counter = 0

    def push(event: ServiceEvent) -> None:
        nonlocal counter
        indexed.append((event.time, counter, event))
        counter += 1

    for index in range(spec.groups):
        group = f"group{index:04d}"
        born = rng.uniform(0.0, spec.horizon_s * spec.arrival_window)
        if spec.mean_hold_s is not None:
            dies: float | None = born + rng.expovariate(1.0 / spec.mean_hold_s)
            if dies >= spec.horizon_s:
                dies = None
        else:
            dies = None
        end = dies if dies is not None else spec.horizon_s
        members = rng.sample(host_names, spec.group_size)
        push(
            ServiceEvent(
                time=born,
                action="create",
                group=group,
                hosts=tuple(members),
                kind=spec.kind,
                per_link_kbps=spec.per_link_kbps,
                message_kbits=spec.message_kbits,
            )
        )
        current = set(members)

        # walk the group's life: merged poisson streams of sends and
        # churn, advancing membership as we go so every event is valid
        next_send = born + rng.expovariate(1.0 / spec.send_interval_s)
        next_churn = (
            born + rng.expovariate(spec.churn_rate)
            if spec.churn_rate > 0
            else float("inf")
        )
        while min(next_send, next_churn) < end:
            if next_send <= next_churn:
                source = rng.choice(sorted(current))
                push(
                    ServiceEvent(
                        time=next_send,
                        action="send",
                        group=group,
                        hosts=(source,),
                        message_kbits=spec.message_kbits,
                    )
                )
                next_send += rng.expovariate(1.0 / spec.send_interval_s)
            else:
                free = sorted(set(host_names) - current)
                joinable = bool(free)
                # equal odds join/leave, degraded to whichever is legal
                wants_join = rng.random() < 0.5
                if (wants_join and joinable) or (
                    len(current) <= spec.min_group_size and joinable
                ):
                    host = free[rng.randrange(len(free))]
                    current.add(host)
                    push(
                        ServiceEvent(
                            time=next_churn,
                            action="join",
                            group=group,
                            hosts=(host,),
                        )
                    )
                elif len(current) > spec.min_group_size:
                    host = rng.choice(sorted(current))
                    current.remove(host)
                    push(
                        ServiceEvent(
                            time=next_churn,
                            action="leave",
                            group=group,
                            hosts=(host,),
                        )
                    )
                next_churn += rng.expovariate(spec.churn_rate)
        if dies is not None:
            push(ServiceEvent(time=dies, action="drop", group=group))

    indexed.sort(key=lambda item: (item[0], item[1]))
    return ServiceWorkload(
        hosts=hosts, events=tuple(event for _, _, event in indexed)
    )


def generate_group(spec: GroupSpec, seed: int = 0) -> RingSnapshot:
    """Materialize a membership snapshot from a spec, deterministically.

    The same ``(spec, seed)`` pair always produces the identical
    snapshot: identifier placement, bandwidths and capacities all draw
    from one seeded generator.
    """
    rng = Random(seed)
    space = IdentifierSpace(spec.space_bits)
    if spec.capacities is not None:
        capacities = [
            max(spec.min_capacity, spec.capacities.sample(rng))
            for _ in range(spec.size)
        ]
        bandwidths = None
    else:
        assert spec.bandwidths is not None and spec.per_link_kbps is not None
        model = CapacityModel(spec.per_link_kbps, minimum=spec.min_capacity)
        bandwidths = spec.bandwidths.sample_many(spec.size, rng)
        capacities = model.capacities(bandwidths)
    return build_snapshot(space, capacities, bandwidths=bandwidths, rng=rng)
