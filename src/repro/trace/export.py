"""Trace exporters: JSONL (canonical) and Chrome/Perfetto trace_event.

JSONL is the round-trippable on-disk form the runner's ``--trace PATH``
writes and every CLI command reads: one ``TraceEvent.to_json_dict``
object per line.  The Chrome form targets ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_: simulated seconds become
microseconds, layers become track names, and the event data rides in
``args`` — drop a converted file into the Perfetto UI and every
multicast, drop and stabilize round lands on a zoomable timeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.trace.tracer import TraceEvent

#: stable track (tid) order for the Chrome export
_LAYER_TRACKS = {"sim": 1, "net": 2, "proto": 3, "mc": 4}


def write_jsonl(events: Iterable[TraceEvent], path: Path | str) -> int:
    """Write events as JSON lines; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_json_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: Path | str) -> tuple[TraceEvent, ...]:
    """Load a JSONL trace file back into events."""
    events: list[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not JSON: {exc}") from None
            events.append(TraceEvent.from_json_dict(raw))
    return tuple(events)


def to_chrome_trace(events: Sequence[TraceEvent]) -> dict:
    """The Chrome ``trace_event`` JSON object for a set of events.

    Every trace event becomes an *instant* event (``ph: "i"``) on its
    layer's track; multicast deliveries additionally get the message id
    appended to the name so Perfetto's search can isolate one
    dissemination.
    """
    trace_events = []
    for event in events:
        name = event.name
        mid = event.data.get("mid")
        if mid is not None:
            name = f"{name}#{mid}"
        trace_events.append(
            {
                "name": name,
                "cat": event.layer,
                "ph": "i",
                "s": "g",  # global scope: visible across the whole row
                "ts": round(event.time * 1_000_000, 3),
                "pid": 1,
                "tid": _LAYER_TRACKS.get(event.layer, 9),
                "args": dict(event.data, seq=event.seq),
            }
        )
    thread_names = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": f"{layer} layer"},
        }
        for layer, tid in _LAYER_TRACKS.items()
    ]
    return {
        "traceEvents": thread_names + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.trace", "clock": "simulated-seconds"},
    }


def write_chrome_trace(events: Sequence[TraceEvent], path: Path | str) -> int:
    """Write the Chrome/Perfetto JSON form; returns events written."""
    Path(path).write_text(json.dumps(to_chrome_trace(events)) + "\n", encoding="utf-8")
    return len(events)
