"""repro.trace — structured tracing & causal observability.

The package has five parts:

* :mod:`repro.trace.tracer` — the process-global event buffer every
  instrumentation point checks (``if TRACER.enabled: TRACER.emit(...)``);
* :mod:`repro.trace.schema` — the event vocabulary and validation;
* :mod:`repro.trace.registry` — perf counters and trace buffers folded
  behind one snapshot/delta API for the parallel experiment engine;
* :mod:`repro.trace.causal` — dissemination-tree reconstruction and
  lost-hop naming;
* :mod:`repro.trace.export` — JSONL and Chrome/Perfetto exporters,
  driven by the ``python -m repro.trace`` CLI.

Enable with ``--trace PATH`` on the experiment runners, or directly::

    from repro.trace import TRACER
    TRACER.enable()
    ...  # run anything
    from repro.trace.export import write_jsonl
    write_jsonl(TRACER.events(), "run.jsonl")
"""

from repro.trace.tracer import TRACER, TraceEvent, Tracer, resequence

__all__ = ["TRACER", "TraceEvent", "Tracer", "resequence"]
