"""Trace inspection CLI.

Usage::

    python -m repro.trace summarize RUN.jsonl       # per-layer/kind counts
    python -m repro.trace tree RUN.jsonl MID        # one multicast's tree
    python -m repro.trace lost RUN.jsonl            # lost hops per multicast
    python -m repro.trace export RUN.jsonl -o OUT   # Chrome/Perfetto form
    python -m repro.trace check RUN.jsonl           # schema validation
    python -m repro.trace --check RUN.jsonl         # ditto (CI shorthand)

``RUN.jsonl`` is what ``python -m repro.experiments ... --trace PATH``
(or ``python -m repro.churn.runner --trace PATH``) wrote.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.trace import causal, export, schema


def _load(path: Path):
    try:
        return export.read_jsonl(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {path}: {exc}")


def cmd_check(path: Path) -> int:
    """Validate a trace file against the event schema."""
    events = _load(path)
    problems = schema.validate_events(events)
    if problems:
        for problem in problems[:20]:
            print(f"INVALID  {problem}")
        if len(problems) > 20:
            print(f"... and {len(problems) - 20} more")
        return 1
    print(f"OK  {len(events)} events, schema valid")
    return 0


def cmd_summarize(path: Path) -> int:
    """Per-layer/kind counts plus a multicast delivery overview."""
    events = _load(path)
    counts = Counter(event.name for event in events)
    span = (events[0].time, events[-1].time) if events else (0.0, 0.0)
    print(f"{len(events)} events over t=[{span[0]:.3f}, {span[1]:.3f}]s")
    for name, count in sorted(counts.items()):
        print(f"  {name:<22s} {count}")
    mids = causal.multicast_ids(events)
    if mids:
        lost = causal.lost_multicasts(events)
        print(f"multicasts: {len(mids)} originated, {len(lost)} lost members")
        for mid in lost[:10]:
            record = causal.reconstruct(events, mid)
            print(
                f"  mid={mid} source={record.source} "
                f"delivery={record.delivery_ratio():.4f} "
                f"undelivered={len(record.undelivered)}"
            )
    return 0


def cmd_tree(path: Path, mid: int) -> int:
    """Print one multicast's actual dissemination tree and its diff."""
    events = _load(path)
    try:
        record = causal.reconstruct(events, mid)
    except KeyError as exc:
        raise SystemExit(str(exc))
    print(
        f"mid={mid} system={record.system} source={record.source} "
        f"t={record.origin_time:.3f} members={len(record.members)} "
        f"delivery={record.delivery_ratio():.4f}"
    )
    children: dict[int, list[int]] = {}
    for parent, child in sorted(record.actual_edges()):
        children.setdefault(parent, []).append(child)

    def walk(ident: int, indent: int) -> None:
        depth = record.deliveries.get(ident, (None, 0, 0.0))[1]
        print(f"{'  ' * indent}{ident} (depth {depth})")
        for child in sorted(children.get(ident, [])):
            walk(child, indent + 1)

    walk(record.source, 0)
    missing, extra = record.tree_diff()
    if missing or extra:
        print(f"implicit-tree diff: {len(missing)} missing, {len(extra)} rerouted")
        for parent, child in sorted(missing)[:10]:
            print(f"  missing  {parent} -> {child}")
        for parent, child in sorted(extra)[:10]:
            print(f"  rerouted {parent} -> {child}")
    for member, hop in sorted(causal.lost_hops(record).items()):
        print(
            f"  LOST {member}: stopped at {hop.sender} -> {hop.receiver} "
            f"[{hop.event}] t={hop.time:.3f}"
        )
    return 0


def cmd_lost(path: Path) -> int:
    """Name the lost hop for every undelivered member of every multicast."""
    events = _load(path)
    lost = causal.lost_multicasts(events)
    if not lost:
        print("no lost multicasts: every eligible member was reached")
        return 0
    for mid in lost:
        record = causal.reconstruct(events, mid)
        hops = causal.lost_hops(record)
        print(
            f"mid={mid} source={record.source} "
            f"delivery={record.delivery_ratio():.4f} "
            f"undelivered={sorted(record.undelivered)}"
        )
        for member, hop in sorted(hops.items()):
            print(
                f"  member {member}: propagation stopped at "
                f"{hop.sender} -> {hop.receiver} [{hop.event}] t={hop.time:.3f}"
            )
    return 0


def cmd_export(path: Path, out: Path) -> int:
    """Write the Chrome/Perfetto ``trace_event`` form."""
    events = _load(path)
    count = export.write_chrome_trace(events, out)
    print(f"wrote {count} events to {out} (open in https://ui.perfetto.dev)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # CI shorthand: `python -m repro.trace --check FILE`
    if argv and argv[0] == "--check":
        argv = ["check"] + argv[1:]
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Inspect structured trace files."
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("summarize", "lost", "check"):
        command = sub.add_parser(name)
        command.add_argument("path", type=Path)
    tree = sub.add_parser("tree")
    tree.add_argument("path", type=Path)
    tree.add_argument("mid", type=int)
    export_cmd = sub.add_parser("export")
    export_cmd.add_argument("path", type=Path)
    export_cmd.add_argument(
        "-o", "--out", type=Path, default=None, help="output (default: <path>.chrome.json)"
    )
    args = parser.parse_args(argv)

    if args.command == "check":
        return cmd_check(args.path)
    if args.command == "summarize":
        return cmd_summarize(args.path)
    if args.command == "tree":
        return cmd_tree(args.path, args.mid)
    if args.command == "lost":
        return cmd_lost(args.path)
    if args.command == "export":
        out = args.out if args.out is not None else args.path.with_suffix(".chrome.json")
        return cmd_export(args.path, out)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
