"""Causal reconstruction: from trace events back to dissemination trees.

An aggregate like ``ResilienceReport.mean_delivery_ratio`` says *how
much* was lost; this module says *where*.  From one run's trace events
it rebuilds, per multicast:

* the **actual dissemination tree** — ``mc.deliver`` events carry the
  edge (``parent`` → ``ident``) that delivered each member;
* the **send record** — every ``mc_region`` / ``mc_flood`` datagram
  with its fate (delivered, dropped and why, or still in flight),
  matched from the ``net.*`` events;
* the **implicit tree** the structural algorithm would have built over
  the membership alive at send time (CAM-Chord only — flooding has no
  single implicit tree), for diffing expected vs actual edges;
* and, for every undelivered member, the **lost hop**: the exact
  (sender, receiver, event) where propagation toward that member
  stopped — a dropped datagram, or the region holder that had no link
  to forward with.

Members that crashed or left after origination are excluded from the
loss accounting, mirroring
:meth:`~repro.protocol.base_peer.DeliveryMonitor.delivery_ratio`
(a node that departs mid-dissemination is not a multicast failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.trace.schema import MULTICAST_KINDS
from repro.trace.tracer import TraceEvent


@dataclass(frozen=True)
class Hop:
    """One named propagation stop: the answer to "where did it die?".

    ``event`` is a short verdict string: ``"mc_region dropped:dead"``,
    ``"mc_flood dropped:loss"``, ``"stalled:no-link"`` (the holder of
    the covering region was delivered but never forwarded toward the
    member — a stale or missing neighbor-table entry), or
    ``"stalled:no-attempt"`` (no datagram ever moved toward the
    member).
    """

    sender: int
    receiver: int
    event: str
    time: float = 0.0

    def describe(self, member: int) -> str:
        """The citation line oracle violations and failover recoveries
        print for one member's lost hop — defined once, here, so the
        delivery and delivery-gap oracles cite hops identically."""
        return (
            f"member {member}: {self.sender} -> {self.receiver} "
            f"({self.event}) at t={self.time:.3f}"
        )


@dataclass(frozen=True)
class SendAttempt:
    """One multicast datagram and what became of it."""

    seq: int
    time: float
    sender: int
    recipient: int
    kind: str
    mid: int
    limit: int | None
    depth: int | None
    fate: str  # "delivered" | "dropped:<reason>" | "in-flight"


@dataclass
class MulticastRecord:
    """Everything the trace says about one multicast."""

    mid: int
    source: int
    system: str
    bits: int
    origin_time: float
    members: frozenset[int]
    capacities: dict[int, int]
    deliveries: dict[int, tuple[int | None, int, float]] = field(default_factory=dict)
    duplicates: list[tuple[int, int, float]] = field(default_factory=list)
    sends: list[SendAttempt] = field(default_factory=list)
    departed: frozenset[int] = frozenset()
    #: the service-plane group the send belongs to (None outside the plane)
    group: str | None = None
    #: the group's sequence number for this send (None outside the plane)
    group_seq: int | None = None

    @property
    def delivered_members(self) -> set[int]:
        """Members that recorded a first delivery (source included)."""
        return set(self.deliveries)

    @property
    def eligible_members(self) -> set[int]:
        """Members alive at send time that did not depart afterwards."""
        return set(self.members) - set(self.departed)

    @property
    def undelivered(self) -> set[int]:
        """Eligible members the multicast never reached."""
        return self.eligible_members - self.delivered_members - {self.source}

    def delivery_ratio(self) -> float:
        """Same definition as the live DeliveryMonitor's ratio."""
        eligible = self.eligible_members
        if not eligible:
            return 1.0
        got = sum(1 for ident in eligible if ident in self.deliveries)
        return got / len(eligible)

    def actual_edges(self) -> set[tuple[int, int]]:
        """The dissemination tree that actually happened."""
        return {
            (parent, ident)
            for ident, (parent, _, _) in self.deliveries.items()
            if parent is not None
        }

    def implicit_edges(self) -> set[tuple[int, int]] | None:
        """The tree the structural CAM-Chord algorithm would build over
        the send-time membership, or ``None`` for flood systems (a
        flood has no single implicit tree to diff against)."""
        if "chord" not in self.system.lower():
            return None
        from repro.idspace.ring import IdentifierSpace
        from repro.multicast.cam_chord import cam_chord_multicast
        from repro.overlay.base import Node, RingSnapshot
        from repro.overlay.cam_chord import CamChordOverlay

        nodes = [
            Node(ident=ident, capacity=self.capacities.get(ident, 2))
            for ident in sorted(self.members)
        ]
        snapshot = RingSnapshot(IdentifierSpace(self.bits), nodes)
        overlay = CamChordOverlay(snapshot)
        result = cam_chord_multicast(overlay, snapshot.node_at(self.source))
        return {
            (parent, child)
            for child, parent in result.parent.items()
            if parent is not None
        }

    def tree_diff(self) -> tuple[set[tuple[int, int]], set[tuple[int, int]]]:
        """(missing, extra) edges of the actual tree vs the implicit one.

        *Missing* edges are where deliveries were lost or rerouted;
        *extra* edges are the reroutes (stale tables under churn hand
        regions to different nodes than the converged snapshot would).
        Returns ``(set(), actual)`` shaped diff only for tree systems;
        for floods both sets are empty.
        """
        expected = self.implicit_edges()
        if expected is None:
            return set(), set()
        actual = self.actual_edges()
        return expected - actual, actual - expected


def multicast_ids(events: Iterable[TraceEvent]) -> tuple[int, ...]:
    """Every multicast originated in the trace, in send order."""
    return tuple(
        event.data["mid"]
        for event in events
        if event.layer == "mc" and event.kind == "origin"
    )


def _send_fates(
    events: Sequence[TraceEvent], mid: int
) -> list[SendAttempt]:
    """Match every multicast datagram with its delivery/drop event.

    ``net.send`` is emitted only for datagrams that actually left (loss
    and partition drop at send time and emit ``net.drop`` instead);
    ``net.deliver`` / ``net.drop(reason=dead)`` settle them later.
    Matching is FIFO per (src, dst, kind) — the network delivers equal-
    latency datagrams in send order, and a mismatch only ever swaps
    identical attempts.
    """
    attempts: list[SendAttempt] = []
    open_by_key: dict[tuple[int, int, str], list[int]] = {}
    fates: dict[int, str] = {}
    for event in events:
        if event.layer != "net":
            continue
        data = event.data
        if data.get("mid") != mid or data.get("kind") not in MULTICAST_KINDS:
            continue
        key = (data["src"], data["dst"], data["kind"])
        if event.kind == "send":
            index = len(attempts)
            attempts.append(
                SendAttempt(
                    seq=event.seq,
                    time=event.time,
                    sender=data["src"],
                    recipient=data["dst"],
                    kind=data["kind"],
                    mid=mid,
                    limit=data.get("limit"),
                    depth=data.get("depth"),
                    fate="in-flight",
                )
            )
            open_by_key.setdefault(key, []).append(index)
        elif event.kind == "drop":
            reason = data["reason"]
            if reason == "dead":
                # settled at delivery time: resolve the oldest open send
                pending = open_by_key.get(key)
                if pending:
                    fates[pending.pop(0)] = f"dropped:{reason}"
                    continue
            # loss/partition drop at send time: no matching net.send
            attempts.append(
                SendAttempt(
                    seq=event.seq,
                    time=event.time,
                    sender=data["src"],
                    recipient=data["dst"],
                    kind=data["kind"],
                    mid=mid,
                    limit=data.get("limit"),
                    depth=data.get("depth"),
                    fate=f"dropped:{reason}",
                )
            )
        elif event.kind == "deliver":
            pending = open_by_key.get(key)
            if pending:
                fates[pending.pop(0)] = "delivered"
    return [
        attempt
        if index not in fates
        else SendAttempt(
            attempt.seq,
            attempt.time,
            attempt.sender,
            attempt.recipient,
            attempt.kind,
            attempt.mid,
            attempt.limit,
            attempt.depth,
            fates[index],
        )
        for index, attempt in enumerate(attempts)
    ]


def reconstruct(events: Sequence[TraceEvent], mid: int) -> MulticastRecord:
    """Rebuild one multicast's full causal record from a trace."""
    origin: TraceEvent | None = None
    for event in events:
        if event.layer == "mc" and event.kind == "origin" and event.data["mid"] == mid:
            origin = event
            break
    if origin is None:
        raise KeyError(f"no mc.origin event for message {mid} in trace")
    data = origin.data
    record = MulticastRecord(
        mid=mid,
        source=data["source"],
        system=data["system"],
        bits=data["bits"],
        origin_time=origin.time,
        members=frozenset(data["members"]),
        capacities={ident: capacity for ident, capacity in data["capacities"]},
        group=data.get("group"),
        group_seq=data.get("seq"),
    )
    departed: set[int] = set()
    for event in events:
        if event.layer == "mc" and event.data.get("mid") == mid:
            if event.kind == "deliver":
                ident = event.data["ident"]
                if ident not in record.deliveries:
                    record.deliveries[ident] = (
                        event.data["parent"],
                        event.data["depth"],
                        event.time,
                    )
            elif event.kind == "dup":
                record.duplicates.append(
                    (event.data["ident"], event.data["sender"], event.time)
                )
        elif (
            event.layer == "proto"
            and event.kind in ("crash", "leave")
            and event.time >= origin.time
            and event.data["ident"] in record.members
        ):
            departed.add(event.data["ident"])
    record.departed = frozenset(departed)
    record.sends = _send_fates(events, mid)
    return record


def lost_hops(record: MulticastRecord) -> dict[int, Hop]:
    """For every undelivered member, the hop where propagation stopped.

    Preference order per member: the deepest datagram that moved toward
    it — a direct send to the member, or (CAM-Chord) a region handoff
    whose ``(recipient, limit]`` span covers it.  A failed datagram
    names the hop directly; a delivered covering handoff means the
    holder stalled (no usable link toward the member); no attempt at
    all blames the source.
    """
    from repro.idspace.ring import segment_contains

    size = 1 << record.bits
    hops: dict[int, Hop] = {}
    for member in sorted(record.undelivered):
        candidates: list[tuple[tuple[int, int, int], SendAttempt]] = []
        for attempt in record.sends:
            if attempt.recipient == member:
                direct = 1
            elif (
                attempt.kind == "mc_region"
                and attempt.limit is not None
                and segment_contains(member, attempt.recipient, attempt.limit, size)
            ):
                direct = 0
            else:
                continue
            depth = attempt.depth if attempt.depth is not None else 0
            # deepest attempt wins; a direct send beats a covering
            # handoff at the same depth; latest attempt breaks ties
            candidates.append(((depth, direct, attempt.seq), attempt))
        best = max(candidates)[1] if candidates else None
        if best is None:
            hops[member] = Hop(
                record.source, member, "stalled:no-attempt", record.origin_time
            )
        elif best.fate == "delivered" and best.recipient != member:
            hops[member] = Hop(best.recipient, member, "stalled:no-link", best.time)
        elif best.fate == "delivered":
            hops[member] = Hop(best.sender, member, "delivered-but-not-recorded", best.time)
        else:
            hops[member] = Hop(
                best.sender, best.recipient, f"{best.kind} {best.fate}", best.time
            )
    return hops


def lost_multicasts(events: Sequence[TraceEvent]) -> tuple[int, ...]:
    """Message ids whose delivery ratio fell short of 1.0."""
    return tuple(
        mid
        for mid in multicast_ids(events)
        if reconstruct(events, mid).undelivered
    )
