"""The trace event vocabulary and its validation.

Every event name is ``layer.kind``; :data:`SCHEMA` maps each name to
the data fields an emitter must supply (optional fields in
:data:`OPTIONAL`).  ``python -m repro.trace check`` (and the CI smoke
job) run :func:`validate_events` over exported files, so the schema
here is the contract between the instrumentation points and the causal
reconstructor.

Layers:

* ``sim``   — the discrete-event engine: process lifecycle.
* ``net``   — the datagram network: send / deliver / drop / timeout
  and fault injection (partition, heal).
* ``proto`` — the maintenance protocol: stabilize rounds, successor
  eviction, neighbor fixes, iterative lookup hops, peer lifecycle.
* ``mc``    — the multicast data plane: origination (with the member
  set alive at send time), per-member deliveries carrying the tree
  edge (``parent``), duplicate suppressions, repair handoffs and the
  structural harness's implicit-tree summaries.
"""

from __future__ import annotations

from typing import Iterable

from repro.trace.tracer import TraceEvent

#: event name -> required data fields
SCHEMA: dict[str, tuple[str, ...]] = {
    # simulator layer
    "sim.spawn": ("pid", "name", "delay"),
    "sim.sleep": ("pid", "delay"),
    "sim.wait": ("pid",),
    "sim.exit": ("pid", "outcome"),
    # network layer
    "net.send": ("src", "dst", "kind", "delay"),
    "net.deliver": ("src", "dst", "kind"),
    "net.drop": ("src", "dst", "kind", "reason"),
    "net.timeout": ("src", "dst", "kind", "rid"),
    "net.partition": ("a", "b"),
    "net.heal": ("a", "b"),
    # protocol layer
    "proto.stabilize": ("ident", "succ"),
    "proto.evict": ("ident", "dead"),
    "proto.fix_neighbor": ("ident", "slot", "resolved"),
    "proto.fix_failed": ("ident", "slot"),
    "proto.lookup_hop": ("ident", "key", "hop", "done"),
    "proto.lookup_failed": ("ident", "key"),
    "proto.join": ("ident", "succ"),
    "proto.crash": ("ident",),
    "proto.leave": ("ident",),
    # multicast layer
    "mc.origin": ("mid", "source", "system", "bits", "members", "capacities"),
    "mc.deliver": ("mid", "ident", "depth", "parent"),
    "mc.dup": ("mid", "ident", "sender"),
    "mc.repair": ("mid", "ident", "dead", "replacement"),
    "mc.tree": ("source", "edges"),
}

#: event name -> allowed extra fields
OPTIONAL: dict[str, tuple[str, ...]] = {
    "net.send": ("mid", "limit", "depth", "rid", "reply"),
    "net.deliver": ("mid", "limit", "depth", "rid", "reply"),
    "net.drop": ("mid", "limit", "depth", "rid", "reply"),
    # the multi-group service plane keys mc.* events by group and
    # stamps each send with the group's sequence number; single-group
    # emitters (the protocol peers) omit both
    "mc.origin": ("group", "seq"),
    "mc.deliver": ("group", "seq"),
    "mc.dup": ("group", "seq"),
}

#: reasons a datagram can be dropped (mirrors NetworkStats counters)
DROP_REASONS = ("dead", "loss", "partition")

#: the message kinds that carry multicast payloads
MULTICAST_KINDS = ("mc_region", "mc_flood")


def validate_event(event: TraceEvent) -> list[str]:
    """Schema problems of one event (empty list = valid)."""
    problems: list[str] = []
    name = event.name
    required = SCHEMA.get(name)
    if required is None:
        return [f"seq {event.seq}: unknown event {name!r}"]
    missing = [key for key in required if key not in event.data]
    if missing:
        problems.append(f"seq {event.seq}: {name} missing fields {missing}")
    allowed = set(required) | set(OPTIONAL.get(name, ()))
    extra = [key for key in event.data if key not in allowed]
    if extra:
        problems.append(f"seq {event.seq}: {name} has unexpected fields {extra}")
    if name == "net.drop" and event.data.get("reason") not in DROP_REASONS:
        problems.append(
            f"seq {event.seq}: net.drop reason {event.data.get('reason')!r} "
            f"not in {DROP_REASONS}"
        )
    if event.time < 0:
        problems.append(f"seq {event.seq}: negative timestamp {event.time}")
    return problems


def validate_events(events: Iterable[TraceEvent]) -> list[str]:
    """All schema problems over a stream (also checks seq monotonicity)."""
    problems: list[str] = []
    last_seq = -1
    for event in events:
        if event.seq <= last_seq:
            problems.append(
                f"seq {event.seq}: sequence not strictly increasing "
                f"(previous {last_seq})"
            )
        last_seq = event.seq
        problems.extend(validate_event(event))
    return problems
