"""One observability registry: perf counters + trace buffer together.

The parallel experiment engine snapshots observability state around
every task and ships the *delta* back with the task payload.  Before
this module existed that delta was just a
:class:`~repro.perf.PerfCounters` block; the tracer adds a second kind
of per-process accumulating state with exactly the same shipping
needs, so both are folded behind one snapshot/since/absorb API:

* :func:`snapshot` — remember the current counter values and trace
  buffer position;
* :func:`since` — the counters incremented and events emitted after a
  snapshot (pickleable; this is what a worker returns);
* :func:`absorb` — fold a worker's delta into this process (counters
  add, events append re-sequenced).

Because deltas are taken per task and reassembled in deterministic
task-plan order, a ``--jobs N`` run reconstructs the same event stream
a serial run records directly — the property
``tests/test_trace.py::TestSerialParallelEquivalence`` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.trace.tracer import TRACER, TraceEvent


@dataclass(frozen=True)
class ObsSnapshot:
    """A resumable position in both accumulators."""

    counters: perf.PerfCounters
    trace_mark: int


@dataclass(frozen=True)
class ObsDelta:
    """Everything one task produced: counter increments + trace slice."""

    counters: perf.PerfCounters = field(default_factory=perf.PerfCounters)
    events: tuple[TraceEvent, ...] = ()

    def __add__(self, other: "ObsDelta") -> "ObsDelta":
        return ObsDelta(self.counters + other.counters, self.events + other.events)


def snapshot() -> ObsSnapshot:
    """Current perf counter values + trace buffer length."""
    return ObsSnapshot(perf.snapshot(), TRACER.mark())


def since(start: ObsSnapshot) -> ObsDelta:
    """The observability delta accumulated after ``start``."""
    return ObsDelta(perf.since(start.counters), TRACER.events_since(start.trace_mark))


def absorb(delta: ObsDelta) -> None:
    """Fold a (worker) delta into this process's accumulators.

    Counters are added onto the live :data:`repro.perf.COUNTERS`;
    events are appended to the live tracer buffer (re-sequenced), so
    a later export from this process sees them.
    """
    for name in perf.PerfCounters.__dataclass_fields__:
        setattr(
            perf.COUNTERS,
            name,
            getattr(perf.COUNTERS, name) + getattr(delta.counters, name),
        )
    if delta.events:
        TRACER.absorb(delta.events)
