"""The process-global structured event tracer.

One :class:`Tracer` instance (:data:`TRACER`) lives per process.
Instrumentation points across the simulator, network, protocol and
multicast layers are all written the same way::

    from repro.trace.tracer import TRACER

    if TRACER.enabled:
        TRACER.emit(sim.now, "net", "drop", src=a, dst=b, reason="loss")

Disabled-mode cost is a single attribute load + truthiness check —
``TRACER.enabled`` is a plain bool slot — so the tracer stays compiled
into every hot path permanently, exactly like the :mod:`repro.perf`
counters.  Enabled mode appends one :class:`TraceEvent` to an in-memory
buffer; nothing is formatted or written until an exporter runs.

Events carry the *simulated* clock (deterministic), a monotonically
increasing per-process sequence number (tie-breaker and stable sort
key), a coarse ``layer`` (``sim`` / ``net`` / ``proto`` / ``mc``) and a
``kind`` within the layer; everything else rides in the ``data`` dict.
Parallel experiment workers buffer locally and ship
:meth:`events_since` slices back with their task results; the engine
re-sequences them deterministically (see :mod:`repro.trace.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``time`` is simulated seconds for events emitted under a running
    :class:`~repro.sim.engine.Simulator` and ``0.0`` for structural
    (snapshot-based) work that has no clock.
    """

    seq: int
    time: float
    layer: str
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The fully qualified event name, ``layer.kind``."""
        return f"{self.layer}.{self.kind}"

    def to_json_dict(self) -> dict[str, Any]:
        """The JSONL wire form (stable key order)."""
        return {
            "seq": self.seq,
            "t": self.time,
            "layer": self.layer,
            "kind": self.kind,
            "data": self.data,
        }

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            seq=int(raw["seq"]),
            time=float(raw["t"]),
            layer=str(raw["layer"]),
            kind=str(raw["kind"]),
            data=dict(raw.get("data", {})),
        )


class Tracer:
    """Process-global append-only event buffer.

    The ``enabled`` flag is public and checked directly by every
    instrumentation point; :meth:`emit` is only ever reached when it is
    true, so the disabled path never constructs an event.
    """

    __slots__ = ("enabled", "_events")

    def __init__(self) -> None:
        self.enabled: bool = False
        self._events: list[TraceEvent] = []

    # -- control --------------------------------------------------------

    def enable(self, reset: bool = True) -> None:
        """Start recording (dropping any previous buffer by default)."""
        if reset:
            self._events.clear()
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; the buffer is kept until :meth:`clear`."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every buffered event (sequence numbers restart at 0)."""
        self._events.clear()

    # -- recording ------------------------------------------------------

    def emit(self, time: float, layer: str, kind: str, /, **data: Any) -> None:
        """Append one event (callers guard with ``if TRACER.enabled``).

        The header arguments are positional-only so ``data`` keys may
        freely reuse the names (``kind=`` is a common payload field).
        """
        self._events.append(TraceEvent(len(self._events), time, layer, kind, data))

    def absorb(self, events: Iterable[TraceEvent]) -> None:
        """Fold events recorded elsewhere (a worker process) into this
        buffer, re-sequencing them after the current tail."""
        for event in events:
            self._events.append(
                TraceEvent(len(self._events), event.time, event.layer, event.kind, event.data)
            )

    # -- inspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(tuple(self._events))

    def events(self) -> tuple[TraceEvent, ...]:
        """An immutable view of the whole buffer."""
        return tuple(self._events)

    def mark(self) -> int:
        """A resumable position: pass to :meth:`events_since`."""
        return len(self._events)

    def events_since(self, mark: int) -> tuple[TraceEvent, ...]:
        """Events appended after ``mark`` was taken."""
        return tuple(self._events[mark:])

    def truncate(self, mark: int) -> None:
        """Drop every event appended after ``mark`` was taken.

        The scoped-capture pattern: a harness that enables the tracer
        only for its own measurement (``mark`` → enable → capture via
        :meth:`events_since` → disable → ``truncate(mark)``) leaves the
        buffer exactly as it found it, so back-to-back captures in one
        process do not accumulate events.
        """
        del self._events[mark:]


#: The one tracer every instrumentation point checks.
TRACER = Tracer()


def resequence(events: Iterable[TraceEvent]) -> tuple[TraceEvent, ...]:
    """Renumber ``seq`` consecutively from zero, preserving order.

    Serial runs buffer globally while parallel workers buffer per
    process; renumbering the deterministic concatenation makes the two
    produce identical exports.
    """
    return tuple(
        TraceEvent(index, event.time, event.layer, event.kind, event.data)
        for index, event in enumerate(events)
    )
