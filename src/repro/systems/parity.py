"""Static-vs-live parity: the same spec must yield the same tree.

The library has two worlds: the *static* one (a structural overlay over
a :class:`~repro.overlay.base.RingSnapshot`, multicast as a pure graph
walk) and the *live* one (protocol peers on the discrete-event
simulator, multicast as datagrams).  The paper's figures come from the
static world; the resilience claims from the live one.  The parity
harness pins them together: build both worlds from one
:class:`~repro.systems.spec.MemberSpec`, converge the live overlay
without churn, multicast from the same source in both, and reconstruct
the live dissemination tree from the structured trace
(:func:`repro.trace.causal.reconstruct`).  On a converged ring the live
peers execute the same splitting code against the same resolver
answers, so:

* every system must deliver to the same receivers at the same depths
  (the network has uniform latency, so flood arrival order equals BFS
  order);
* single-tree systems (``builds_single_tree``) must additionally
  produce the *exact same parent edges* and zero duplicate deliveries;
* both worlds must satisfy exactly-once delivery.

Any divergence means the protocol's tables, the structural resolver, or
the descriptor wiring drifted — the harness reports every mismatch
rather than stopping at the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.systems.descriptor import DEFAULT_UNIFORM_FANOUT, SystemDescriptor
from repro.systems.kinds import SystemKind
from repro.systems.registry import resolve
from repro.systems.spec import MemberSpec

if TYPE_CHECKING:
    from repro.multicast.delivery import MulticastResult
    from repro.trace.causal import MulticastRecord


@dataclass(frozen=True)
class ParityReport:
    """The two trees one spec produced, and how they compare."""

    system: str
    source: int
    members: frozenset[int]
    static_depths: dict[int, int]
    live_depths: dict[int, int]
    static_edges: frozenset[tuple[int, int]]
    live_edges: frozenset[tuple[int, int]]
    edges_compared: bool
    live_duplicates: int
    mismatches: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when the live world reproduced the static tree."""
        return not self.mismatches

    def summary(self) -> str:
        verdict = "parity" if self.ok else "DIVERGED"
        return (
            f"{self.system}: n={len(self.members)} source={self.source} "
            f"{verdict}"
            + ("" if self.ok else f" ({'; '.join(self.mismatches)})")
        )


def _compare(
    descriptor: SystemDescriptor,
    source: int,
    members: frozenset[int],
    static: "MulticastResult",
    record: "MulticastRecord",
) -> ParityReport:
    static_depths = dict(static.depth)
    live_depths = {
        ident: depth for ident, (_, depth, _) in record.deliveries.items()
    }
    static_edges = frozenset(
        (parent, child)
        for child, parent in static.parent.items()
        if parent is not None
    )
    live_edges = frozenset(record.actual_edges())

    mismatches: list[str] = []
    static_receivers = set(static_depths)
    live_receivers = set(live_depths)
    if static_receivers != members:
        missing = sorted(members - static_receivers)[:5]
        mismatches.append(f"static missed members, e.g. {missing}")
    if live_receivers != members:
        missing = sorted(members - live_receivers)[:5]
        extra = sorted(live_receivers - members)[:5]
        mismatches.append(
            f"live delivery set wrong (missing e.g. {missing}, extra e.g. {extra})"
        )
    if static_receivers == live_receivers and static_depths != live_depths:
        diff = sorted(
            ident
            for ident in static_depths
            if static_depths[ident] != live_depths[ident]
        )[:5]
        mismatches.append(f"depths differ, e.g. at {diff}")
    if descriptor.builds_single_tree:
        if static_edges != live_edges:
            missing_edges = sorted(static_edges - live_edges)[:3]
            extra_edges = sorted(live_edges - static_edges)[:3]
            mismatches.append(
                f"tree edges differ (static-only e.g. {missing_edges}, "
                f"live-only e.g. {extra_edges})"
            )
        if record.duplicates:
            mismatches.append(
                f"{len(record.duplicates)} duplicate deliveries in a "
                "single-tree system"
            )

    return ParityReport(
        system=descriptor.name,
        source=source,
        members=members,
        static_depths=static_depths,
        live_depths=live_depths,
        static_edges=static_edges,
        live_edges=live_edges,
        edges_compared=descriptor.builds_single_tree,
        live_duplicates=len(record.duplicates),
        mismatches=tuple(mismatches),
    )


def check_parity(
    system: "SystemDescriptor | SystemKind | str",
    spec: MemberSpec,
    uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    source: int | None = None,
    settle: float = 200.0,
    window: float = 15.0,
    seed: int = 0,
) -> ParityReport:
    """Build both worlds from ``spec`` and compare their trees.

    The live cluster bootstraps, converges without churn (extra
    ``settle`` time until every neighbor-table slot is accurate), then
    multicasts from ``source`` (default: the spec's first member) under
    the structured tracer.  The harness owns the global ``TRACER`` for
    the duration of the live run and restores its enabled state after.
    """
    descriptor = resolve(system)
    members = frozenset(spec.identifiers)
    source_ident = spec.identifiers[0] if source is None else source
    if source_ident not in members:
        raise KeyError(f"source {source_ident} is not in the member spec")

    # Static world: snapshot -> overlay -> one pure-graph multicast.
    snapshot = spec.snapshot(descriptor.min_capacity)
    overlay = descriptor.build_overlay(snapshot, uniform_fanout=uniform_fanout)
    static = descriptor.run_multicast(overlay, snapshot.node_at(source_ident))
    static.verify_exactly_once(set(members))

    # Live world: same spec, protocol peers, converged without churn.
    from repro.protocol.cluster import Cluster
    from repro.trace.causal import reconstruct
    from repro.trace.tracer import TRACER

    cluster = Cluster(
        descriptor,
        spec,
        seed=seed,
        uniform_fanout=uniform_fanout,
    )
    cluster.bootstrap()
    cluster.run(settle)
    for _ in range(10):
        if cluster.neighbor_table_accuracy() == 1.0:
            break
        cluster.run(settle)
    else:
        raise RuntimeError(
            f"{descriptor.name}: live neighbor tables failed to converge "
            f"(accuracy {cluster.neighbor_table_accuracy():.3f})"
        )

    was_enabled = TRACER.enabled
    TRACER.enable(reset=True)
    try:
        mid = cluster.multicast_from(source_ident)
        cluster.run(window)
        record = reconstruct(list(TRACER.events()), mid)
    finally:
        if not was_enabled:
            TRACER.disable()

    return _compare(descriptor, source_ident, members, static, record)


def check_all_systems(
    spec: MemberSpec,
    uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    settle: float = 200.0,
    seed: int = 0,
) -> dict[str, ParityReport]:
    """Run the parity harness for every registered system on one spec."""
    from repro.systems.registry import all_descriptors

    return {
        descriptor.name: check_parity(
            descriptor,
            spec,
            uniform_fanout=uniform_fanout,
            settle=settle,
            seed=seed,
        )
        for descriptor in all_descriptors()
    }
