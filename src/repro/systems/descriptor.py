"""One frozen descriptor per overlay system.

A :class:`SystemDescriptor` bundles everything the codebase needs to
know about one of the evaluated systems: its canonical name, capacity
floor, fanout policy (capacity-derived vs uniform), how to build its
structural overlay over a snapshot, which routine disseminates a
multicast over that overlay, and which live peer class runs it on the
discrete-event protocol simulator.  Every dispatch site — the
:class:`~repro.multicast.session.MulticastGroup` facade, the
:class:`~repro.protocol.cluster.Cluster` driver, the churn runner and
the experiment harness — goes through a descriptor instead of
branching on :class:`~repro.systems.kinds.SystemKind`, so adding a
fifth system is one :func:`repro.systems.registry.register` call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar

from repro.systems.kinds import SystemKind

if TYPE_CHECKING:
    from repro.multicast.delivery import MulticastResult
    from repro.overlay.base import Node, Overlay, RingSnapshot
    from repro.protocol.base_peer import BasePeer

#: Fanout the capacity-oblivious baselines default to when none is
#: configured (base-2 Chord / degree-2 Koorde, the classic systems).
DEFAULT_UNIFORM_FANOUT = 2


class FanoutPolicy(ABC):
    """How a system sizes each node's multicast fanout.

    The paper's convention — the CAM systems derive fanout from node
    capacity ``c_x = floor(B_x / p)`` and are swept through the
    per-link rate ``p``, while the baselines give every node the same
    uniform fanout ``k`` and are swept through ``k`` (``uniform_fanout``
    is simply ignored by the CAM overlays) — lives here, in exactly one
    place, instead of in ``capacity_aware`` branches at the call sites.
    """

    capacity_aware: ClassVar[bool]

    @abstractmethod
    def group_build_args(
        self, knob: float, default_per_link_kbps: float
    ) -> tuple[float, int]:
        """``(per_link_kbps, uniform_fanout)`` for one sweep point.

        ``knob`` is the value the evaluation sweeps for this system:
        the per-link rate ``p`` for capacity-aware systems, the uniform
        fanout ``k`` for the baselines.
        """

    @abstractmethod
    def configured_average_fanout(
        self, knob: float, mean_bandwidth_kbps: float
    ) -> float:
        """The configured average fanout a sweep point targets (the
        Figure 6 x-axis): ``E[B] / p`` for capacity-aware systems,
        ``k`` itself for the baselines."""

    @abstractmethod
    def live_capacity(self, capacity: int, uniform_fanout: int) -> int:
        """The capacity handed to a live peer.

        Live baselines reinterpret peer capacity as the uniform degree
        (a ``CamChordPeer`` fleet with every capacity pinned to ``k``
        *is* live base-``k`` Chord), so the policy decides whether the
        member's own capacity or the uniform fanout wins.
        """


class CapacityDerivedFanout(FanoutPolicy):
    """CAM systems: fanout is the node's capacity, swept through ``p``."""

    capacity_aware = True

    def group_build_args(
        self, knob: float, default_per_link_kbps: float
    ) -> tuple[float, int]:
        return (knob, DEFAULT_UNIFORM_FANOUT)

    def configured_average_fanout(
        self, knob: float, mean_bandwidth_kbps: float
    ) -> float:
        return mean_bandwidth_kbps / knob

    def live_capacity(self, capacity: int, uniform_fanout: int) -> int:
        return capacity


class UniformFanout(FanoutPolicy):
    """Baselines: every node gets the same fanout, swept through ``k``."""

    capacity_aware = False

    def group_build_args(
        self, knob: float, default_per_link_kbps: float
    ) -> tuple[float, int]:
        return (default_per_link_kbps, int(knob))

    def configured_average_fanout(
        self, knob: float, mean_bandwidth_kbps: float
    ) -> float:
        return knob

    def live_capacity(self, capacity: int, uniform_fanout: int) -> int:
        return uniform_fanout


#: Shared policy instances (policies are stateless).
CAPACITY_DERIVED = CapacityDerivedFanout()
UNIFORM = UniformFanout()


@dataclass(frozen=True)
class SystemDescriptor:
    """Everything the codebase knows about one overlay system.

    ``overlay_factory(snapshot, uniform_fanout)`` builds the structural
    overlay (capacity-aware factories ignore the fanout);
    ``multicast_routine(overlay, source)`` disseminates one message and
    returns the implicit tree; ``peer_loader()`` lazily resolves the
    live protocol node class (lazy so that importing the registry never
    drags in the simulator).  ``builds_single_tree`` distinguishes
    region-splitting systems (one implicit single-parent tree per
    source) from floods (arrival order decides each parent, so only the
    receiver set and depth profile are structural invariants).
    ``baseline`` names the capacity-oblivious counterpart a CAM system
    is evaluated against (Figure 7), ``None`` for the baselines
    themselves.  ``fanout_slack`` is the number of delivery-tree
    children a live node may legitimately have *beyond* its capacity —
    zero for every system whose degree bound is the paper's
    ``degree <= capacity`` invariant, and 2 for the plain-Koorde
    baseline, whose flood forwards over the ring links (predecessor and
    successor) in addition to its uniform de Bruijn window.  The
    fault-injection fanout oracle checks against
    ``capacity + fanout_slack``.
    """

    kind: SystemKind
    description: str
    min_capacity: int
    fanout: FanoutPolicy
    overlay_factory: Callable[["RingSnapshot", int], "Overlay"]
    multicast_routine: Callable[["Overlay", "Node"], "MulticastResult"]
    peer_loader: Callable[[], type["BasePeer"]]
    builds_single_tree: bool
    baseline: SystemKind | None = None
    fanout_slack: int = 0
    #: Whether :mod:`repro.multicast.backup` can precompute failover
    #: subtrees for the system — true whenever the flat kernel can
    #: rebuild the frozen epoch's tree (all four registered systems
    #: can); a hypothetical system without a structural tree builder
    #: would register ``False`` and the fault campaign's failover mode
    #: would refuse it instead of silently measuring nothing.
    backup_capable: bool = True

    @property
    def name(self) -> str:
        """Canonical CLI/display name — always the enum value."""
        return self.kind.value

    @property
    def capacity_aware(self) -> bool:
        """Whether fanout follows node capacity (delegates to the policy)."""
        return self.fanout.capacity_aware

    def build_overlay(
        self, snapshot: "RingSnapshot", uniform_fanout: int = DEFAULT_UNIFORM_FANOUT
    ) -> "Overlay":
        """The structural overlay over one membership snapshot."""
        return self.overlay_factory(snapshot, uniform_fanout)

    def run_multicast(self, overlay: "Overlay", source: "Node") -> "MulticastResult":
        """Disseminate one message; returns the implicit tree."""
        return self.multicast_routine(overlay, source)

    def live_peer_class(self) -> type["BasePeer"]:
        """The live protocol node class (imported on first use)."""
        return self.peer_loader()

    def live_capacity(self, capacity: int, uniform_fanout: int) -> int:
        """Capacity for a live peer built from a member's capacity."""
        return self.fanout.live_capacity(capacity, uniform_fanout)

    def live_fanout_bound(self, capacity: int) -> int:
        """Most delivery-tree children a live node of ``capacity`` may
        have without violating the system's degree invariant."""
        return capacity + self.fanout_slack
