"""The unified system registry: one descriptor per overlay system.

``repro.systems`` is the single extension point for "which systems
exist": :class:`SystemKind` names them, :class:`SystemDescriptor`
bundles everything the rest of the codebase needs (capacity floor,
fanout policy, structural overlay factory, multicast routine, live peer
class), and the registry resolves kinds and CLI names to descriptors.
:class:`MemberSpec` freezes one membership both the static and the live
world can materialize, which is what the parity harness
(:mod:`repro.systems.parity`, imported lazily to keep the simulator out
of light-weight callers) builds on.
"""

from repro.systems.descriptor import (
    CAPACITY_DERIVED,
    DEFAULT_UNIFORM_FANOUT,
    UNIFORM,
    CapacityDerivedFanout,
    FanoutPolicy,
    SystemDescriptor,
    UniformFanout,
)
from repro.systems.kinds import SystemKind
from repro.systems.registry import (
    all_descriptors,
    capacity_aware_systems,
    descriptor_for,
    get_system,
    register,
    resolve,
    system_names,
)
from repro.systems.spec import MemberSpec

__all__ = [
    "CAPACITY_DERIVED",
    "DEFAULT_UNIFORM_FANOUT",
    "UNIFORM",
    "CapacityDerivedFanout",
    "FanoutPolicy",
    "MemberSpec",
    "SystemDescriptor",
    "SystemKind",
    "UniformFanout",
    "all_descriptors",
    "capacity_aware_systems",
    "descriptor_for",
    "get_system",
    "register",
    "resolve",
    "system_names",
]
