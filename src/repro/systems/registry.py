"""The process-global system registry: one descriptor per system.

Lookup is by :class:`~repro.systems.kinds.SystemKind` or by canonical
CLI name; iteration order is registration order (the four paper systems
register in enum order).  Factories import their overlay / multicast /
peer modules lazily, so importing the registry — which the CLI layers
do just to enumerate ``--system`` choices — costs nothing.

Adding a fifth system is one :func:`register` call with a new
descriptor; every dispatch site (``MulticastGroup``, ``Cluster``, the
churn runner, the experiment sweeps) picks it up from here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.capacity.model import (
    CAM_CHORD_MIN_CAPACITY,
    CAM_KOORDE_MIN_CAPACITY,
)
from repro.systems.descriptor import (
    CAPACITY_DERIVED,
    UNIFORM,
    SystemDescriptor,
)
from repro.systems.kinds import SystemKind

if TYPE_CHECKING:
    from repro.multicast.delivery import MulticastResult
    from repro.overlay.base import Node, Overlay, RingSnapshot
    from repro.protocol.base_peer import BasePeer

_BY_KIND: dict[SystemKind, SystemDescriptor] = {}
_BY_NAME: dict[str, SystemDescriptor] = {}


def register(descriptor: SystemDescriptor) -> SystemDescriptor:
    """Add a system to the registry (returns it, for chaining).

    The canonical name is the descriptor's ``kind.value``; registering
    the same kind or name twice is an error — names must never drift.
    """
    if descriptor.kind in _BY_KIND:
        raise ValueError(f"system kind already registered: {descriptor.kind}")
    if descriptor.name in _BY_NAME:
        raise ValueError(f"system name already registered: {descriptor.name!r}")
    _BY_KIND[descriptor.kind] = descriptor
    _BY_NAME[descriptor.name] = descriptor
    return descriptor


def descriptor_for(kind: SystemKind) -> SystemDescriptor:
    """The descriptor of one system kind."""
    try:
        return _BY_KIND[kind]
    except KeyError:
        raise ValueError(
            f"no descriptor registered for {kind!r}; "
            f"registered kinds: {[k.value for k in _BY_KIND]}"
        ) from None


def get_system(name: str) -> SystemDescriptor:
    """Look a system up by its canonical CLI name.

    Unknown names raise with the full list of valid names, so a typo'd
    ``--system`` flag tells the user what would have worked.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def resolve(system: "SystemDescriptor | SystemKind | str") -> SystemDescriptor:
    """Normalize any way of naming a system to its descriptor."""
    if isinstance(system, SystemDescriptor):
        return system
    if isinstance(system, SystemKind):
        return descriptor_for(system)
    if isinstance(system, str):
        return get_system(system)
    raise TypeError(
        f"cannot resolve a system from {type(system).__name__}: {system!r}"
    )


def all_descriptors() -> tuple[SystemDescriptor, ...]:
    """Every registered system, in registration order."""
    return tuple(_BY_KIND.values())


def system_names() -> tuple[str, ...]:
    """Canonical names of every registered system, in registration order."""
    return tuple(_BY_NAME)


def capacity_aware_systems() -> tuple[SystemDescriptor, ...]:
    """The registered capacity-aware systems (the paper's contributions)."""
    return tuple(d for d in all_descriptors() if d.capacity_aware)


# -- the four paper systems ---------------------------------------------------
#
# Factories import lazily: the structural overlay modules only load when
# an overlay is actually built, the protocol (simulator) modules only
# when a live cluster is.


def _cam_chord_overlay(snapshot: "RingSnapshot", uniform_fanout: int) -> "Overlay":
    from repro.overlay.cam_chord import CamChordOverlay

    return CamChordOverlay(snapshot)


def _cam_koorde_overlay(snapshot: "RingSnapshot", uniform_fanout: int) -> "Overlay":
    from repro.overlay.cam_koorde import CamKoordeOverlay

    return CamKoordeOverlay(snapshot)


def _chord_overlay(snapshot: "RingSnapshot", uniform_fanout: int) -> "Overlay":
    from repro.overlay.chord import ChordOverlay

    return ChordOverlay(snapshot, base=uniform_fanout)


def _koorde_overlay(snapshot: "RingSnapshot", uniform_fanout: int) -> "Overlay":
    from repro.overlay.koorde import KoordeOverlay

    return KoordeOverlay(snapshot, degree=uniform_fanout)


def _cam_chord_cast(overlay: "Overlay", source: "Node") -> "MulticastResult":
    from repro.multicast.cam_chord import cam_chord_multicast

    return cam_chord_multicast(overlay, source)


def _cam_koorde_cast(overlay: "Overlay", source: "Node") -> "MulticastResult":
    from repro.multicast.cam_koorde import cam_koorde_multicast

    return cam_koorde_multicast(overlay, source)


def _koorde_cast(overlay: "Overlay", source: "Node") -> "MulticastResult":
    from repro.multicast.koorde_flood import koorde_flood

    return koorde_flood(overlay, source)


def _cam_chord_peer() -> type["BasePeer"]:
    from repro.protocol.cam_chord_peer import CamChordPeer

    return CamChordPeer


def _cam_koorde_peer() -> type["BasePeer"]:
    from repro.protocol.cam_koorde_peer import CamKoordePeer

    return CamKoordePeer


def _koorde_peer() -> type["BasePeer"]:
    from repro.protocol.koorde_peer import KoordePeer

    return KoordePeer


register(
    SystemDescriptor(
        kind=SystemKind.CAM_CHORD,
        description="capacity-aware Chord: region-splitting implicit trees (§3)",
        min_capacity=CAM_CHORD_MIN_CAPACITY,
        fanout=CAPACITY_DERIVED,
        overlay_factory=_cam_chord_overlay,
        multicast_routine=_cam_chord_cast,
        peer_loader=_cam_chord_peer,
        builds_single_tree=True,
        baseline=SystemKind.CHORD,
        # The flat kernel rebuilds this system's frozen-epoch tree, so
        # the fault campaign can install precomputed backup subtrees
        # (repro.multicast.backup) — likewise for the other three.
        backup_capable=True,
    )
)

register(
    SystemDescriptor(
        kind=SystemKind.CAM_KOORDE,
        description="capacity-aware Koorde: evenly-spread de Bruijn flooding (§4)",
        min_capacity=CAM_KOORDE_MIN_CAPACITY,
        fanout=CAPACITY_DERIVED,
        overlay_factory=_cam_koorde_overlay,
        multicast_routine=_cam_koorde_cast,
        peer_loader=_cam_koorde_peer,
        builds_single_tree=False,
        baseline=SystemKind.KOORDE,
        backup_capable=True,
    )
)

register(
    SystemDescriptor(
        kind=SystemKind.CHORD,
        description="base-k Chord baseline: balanced splitter, uniform fanout",
        min_capacity=1,
        fanout=UNIFORM,
        overlay_factory=_chord_overlay,
        # The Figure 6 "Chord" baseline runs the paper's balanced
        # region-splitting multicast with a uniform fanout (DESIGN.md
        # decision 9); El-Ansary's broadcast is compared separately in
        # the balance ablation (extE).
        multicast_routine=_cam_chord_cast,
        # A CamChordPeer fleet with every capacity pinned to k *is*
        # live base-k Chord — the slot set degenerates to the plain
        # finger table (see tests/test_equivalences.py).
        peer_loader=_cam_chord_peer,
        builds_single_tree=True,
        backup_capable=True,
    )
)

register(
    SystemDescriptor(
        kind=SystemKind.KOORDE,
        description="degree-k Koorde baseline: clustered de Bruijn flooding",
        min_capacity=1,
        fanout=UNIFORM,
        overlay_factory=_koorde_overlay,
        multicast_routine=_koorde_cast,
        peer_loader=_koorde_peer,
        builds_single_tree=False,
        # The live flood forwards over predecessor and successor on top
        # of the uniform de Bruijn window (KoordePeer.flood_links), so
        # the delivery-tree degree bound is capacity + 2.
        fanout_slack=2,
        backup_capable=True,
    )
)


def _check_exhaustive(kinds: Iterable[SystemKind] = SystemKind) -> None:
    missing = [kind for kind in kinds if kind not in _BY_KIND]
    if missing:  # pragma: no cover - import-time invariant
        raise RuntimeError(f"system kinds without descriptors: {missing}")


_check_exhaustive()
