"""The four overlay systems of the paper's evaluation, as an enum.

:class:`SystemKind` is the canonical identity of a system; everything
else about it (capacity awareness, capacity floor, overlay factory,
multicast routine, live peer class) lives in that system's
:class:`~repro.systems.descriptor.SystemDescriptor`, looked up through
the process-global registry.  The enum properties below therefore
*delegate* to the registry — the enum stays a pure name, and the
registry stays the single source of truth.
"""

from __future__ import annotations

import enum


class SystemKind(enum.Enum):
    """The four systems compared in Section 6 of the paper."""

    CAM_CHORD = "cam-chord"
    CAM_KOORDE = "cam-koorde"
    CHORD = "chord"
    KOORDE = "koorde"

    @property
    def capacity_aware(self) -> bool:
        """True for the paper's contributions, False for the baselines."""
        from repro.systems.registry import descriptor_for

        return descriptor_for(self).capacity_aware

    @property
    def min_capacity(self) -> int:
        """The smallest capacity the overlay construction accepts."""
        from repro.systems.registry import descriptor_for

        return descriptor_for(self).min_capacity
