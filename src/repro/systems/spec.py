"""MemberSpec: one membership, usable by both worlds.

A :class:`MemberSpec` freezes a group's membership — identifiers,
capacities and upload bandwidths, all drawn from one seed — in a form
both the *static* world (:class:`~repro.multicast.session.MulticastGroup`
over a :class:`~repro.overlay.base.RingSnapshot`) and the *live* world
(:class:`~repro.protocol.cluster.Cluster` of protocol peers) accept.
Building both from the same spec is what makes the static-vs-live
parity harness (:mod:`repro.systems.parity`) possible: the two worlds
then describe the same members at the same ring positions, so their
dissemination trees are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.idspace.ring import IdentifierSpace
    from repro.overlay.base import Node, RingSnapshot


@dataclass(frozen=True)
class MemberSpec:
    """A frozen membership: who sits where with what resources.

    Capacities are stored *unclamped*; each world applies its system's
    capacity floor when it materializes peers or snapshot nodes, so one
    spec serves systems with different floors.
    """

    space_bits: int
    identifiers: tuple[int, ...]
    capacities: tuple[int, ...]
    bandwidths: tuple[float, ...]

    def __post_init__(self) -> None:
        count = len(self.identifiers)
        if count == 0:
            raise ValueError("a member spec needs at least one member")
        if len(self.capacities) != count or len(self.bandwidths) != count:
            raise ValueError(
                "identifiers, capacities and bandwidths must have equal length"
            )
        size = 1 << self.space_bits
        seen: set[int] = set()
        for ident in self.identifiers:
            if not 0 <= ident < size:
                raise ValueError(f"identifier {ident} outside space of {size}")
            if ident in seen:
                raise ValueError(f"duplicate identifier in spec: {ident}")
            seen.add(ident)

    def __len__(self) -> int:
        return len(self.identifiers)

    @property
    def space(self) -> "IdentifierSpace":
        """The identifier space the members live in."""
        from repro.idspace.ring import IdentifierSpace

        return IdentifierSpace(self.space_bits)

    def nodes(self, min_capacity: int = 1) -> list["Node"]:
        """Snapshot nodes, capacities clamped to a system's floor."""
        from repro.overlay.base import Node

        return [
            Node(
                ident=ident,
                capacity=max(min_capacity, capacity),
                bandwidth_kbps=bandwidth,
            )
            for ident, capacity, bandwidth in zip(
                self.identifiers, self.capacities, self.bandwidths
            )
        ]

    def snapshot(self, min_capacity: int = 1) -> "RingSnapshot":
        """A structural membership snapshot of this spec."""
        from repro.overlay.base import RingSnapshot

        return RingSnapshot(self.space, self.nodes(min_capacity))

    @classmethod
    def generate(
        cls,
        count: int,
        space_bits: int = 16,
        capacity_range: tuple[int, int] = (4, 10),
        per_link_kbps: float = 100.0,
        seed: int = 0,
    ) -> "MemberSpec":
        """Draw a membership from one seed, deterministically.

        Capacities are uniform over ``capacity_range`` and bandwidths
        follow the paper's rule in reverse (``B_x = c_x * p``), so the
        spec is self-consistent under ``c_x = floor(B_x / p)``.
        """
        from repro.overlay.base import sample_identifiers

        rng = Random(seed)
        identifiers = tuple(sample_identifiers(count, 1 << space_bits, rng))
        low, high = capacity_range
        capacities = tuple(rng.randint(low, high) for _ in range(count))
        bandwidths = tuple(capacity * per_link_kbps for capacity in capacities)
        return cls(
            space_bits=space_bits,
            identifiers=identifiers,
            capacities=capacities,
            bandwidths=bandwidths,
        )

    @classmethod
    def from_bandwidths(
        cls,
        bandwidths: Sequence[float],
        per_link_kbps: float,
        space_bits: int = 19,
        seed: int = 0,
    ) -> "MemberSpec":
        """The Figures 6-8 setup: capacities ``floor(B_x / p)`` from
        measured bandwidths, identifiers hash-uniform from ``seed``."""
        from repro.overlay.base import sample_identifiers

        rng = Random(seed)
        identifiers = tuple(
            sample_identifiers(len(bandwidths), 1 << space_bits, rng)
        )
        capacities = tuple(
            max(1, int(bandwidth // per_link_kbps)) for bandwidth in bandwidths
        )
        return cls(
            space_bits=space_bits,
            identifiers=identifiers,
            capacities=capacities,
            bandwidths=tuple(float(b) for b in bandwidths),
        )
