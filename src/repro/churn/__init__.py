"""Membership dynamics: churn traces and resilience measurement.

Section 5.1 motivates highly dynamic groups with the FastTrack
measurements ("over 20% of the connections last 1 minute or less and
60% of the IP addresses keep active ... for no more than 10 minutes"),
and the conclusion claims CAM-Chord suits low churn / CAM-Koorde high
churn.  This package generates churn workloads and measures delivery
ratio while the maintenance protocol races the departures.
"""

from repro.churn.trace import (
    ChurnEvent,
    ChurnTrace,
    diurnal_trace,
    poisson_trace,
    session_trace,
)
from repro.churn.runner import ChurnExperiment
from repro.churn.resilience import ResilienceReport

__all__ = [
    "ChurnEvent",
    "ChurnTrace",
    "diurnal_trace",
    "poisson_trace",
    "session_trace",
    "ChurnExperiment",
    "ResilienceReport",
]
