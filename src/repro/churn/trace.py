"""Churn trace generation.

Two generators:

* :func:`poisson_trace` — independent Poisson processes of joins and
  departures (rate-controlled, the knob for "membership change
  frequency" sweeps);
* :func:`session_trace` — FastTrack-style sessions (Section 5.1):
  members arrive as a Poisson process and stay for an exponentially
  distributed lifetime, so short-lived members dominate.
* :func:`diurnal_trace` — a non-homogeneous Poisson process whose rate
  swings sinusoidally between a trough and a peak (the classic
  day/night membership cycle), drawn by thinning against the peak.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from random import Random
from typing import Iterator, Sequence


class ChurnKind(enum.Enum):
    """What happens to a member."""

    JOIN = "join"
    LEAVE = "leave"  # graceful departure
    CRASH = "crash"  # abrupt failure


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a simulated instant."""

    time: float
    kind: ChurnKind


@dataclass(frozen=True)
class ChurnTrace:
    """A time-ordered sequence of membership changes."""

    events: Sequence[ChurnEvent]
    duration: float

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def rate_per_second(self) -> float:
        """Average membership changes per simulated second."""
        if self.duration <= 0:
            return 0.0
        return len(self.events) / self.duration


def _exponential(rate: float, rng: Random) -> float:
    """One exponential inter-arrival gap."""
    return -math.log(1.0 - rng.random()) / rate


def poisson_trace(
    duration: float,
    join_rate: float,
    depart_rate: float,
    crash_fraction: float = 1.0,
    rng: Random | None = None,
) -> ChurnTrace:
    """Independent Poisson joins and departures.

    ``crash_fraction`` of departures are abrupt crashes, the rest are
    graceful leaves.  Rates are events per simulated second.
    """
    if duration < 0:
        raise ValueError(f"duration must be >= 0, got {duration}")
    if join_rate < 0 or depart_rate < 0:
        raise ValueError("rates must be >= 0")
    if not 0.0 <= crash_fraction <= 1.0:
        raise ValueError(f"crash_fraction must be in [0, 1], got {crash_fraction}")
    rng = rng if rng is not None else Random(0)
    events: list[ChurnEvent] = []
    for rate, is_join in ((join_rate, True), (depart_rate, False)):
        if rate <= 0:
            continue
        when = _exponential(rate, rng)
        while when < duration:
            if is_join:
                kind = ChurnKind.JOIN
            else:
                crash = rng.random() < crash_fraction
                kind = ChurnKind.CRASH if crash else ChurnKind.LEAVE
            events.append(ChurnEvent(when, kind))
            when += _exponential(rate, rng)
    events.sort(key=lambda event: event.time)
    return ChurnTrace(tuple(events), duration)


def diurnal_trace(
    duration: float,
    trough_rate: float,
    peak_rate: float,
    period: float,
    crash_fraction: float = 1.0,
    rng: Random | None = None,
) -> ChurnTrace:
    """Sinusoidally modulated churn: joins and departures both follow
    ``rate(t) = trough + (peak - trough) * (1 + sin(2πt/period)) / 2``.

    Drawn by Lewis-Shedler thinning against ``peak_rate``: candidate
    events arrive at the peak rate and survive with probability
    ``rate(t) / peak_rate``, which samples the exact non-homogeneous
    process.  Joins and departures are thinned independently so the
    membership level breathes rather than drifts.
    """
    if duration < 0:
        raise ValueError(f"duration must be >= 0, got {duration}")
    if trough_rate < 0 or peak_rate < trough_rate:
        raise ValueError(
            f"need 0 <= trough_rate <= peak_rate, got [{trough_rate}, {peak_rate}]"
        )
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if not 0.0 <= crash_fraction <= 1.0:
        raise ValueError(f"crash_fraction must be in [0, 1], got {crash_fraction}")
    rng = rng if rng is not None else Random(0)
    events: list[ChurnEvent] = []
    if peak_rate > 0:
        for is_join in (True, False):
            when = _exponential(peak_rate, rng)
            while when < duration:
                swing = (1.0 + math.sin(2.0 * math.pi * when / period)) / 2.0
                rate = trough_rate + (peak_rate - trough_rate) * swing
                if rng.random() < rate / peak_rate:
                    if is_join:
                        kind = ChurnKind.JOIN
                    else:
                        crash = rng.random() < crash_fraction
                        kind = ChurnKind.CRASH if crash else ChurnKind.LEAVE
                    events.append(ChurnEvent(when, kind))
                when += _exponential(peak_rate, rng)
    events.sort(key=lambda event: event.time)
    return ChurnTrace(tuple(events), duration)


def session_trace(
    duration: float,
    arrival_rate: float,
    mean_lifetime: float,
    crash_fraction: float = 1.0,
    rng: Random | None = None,
) -> ChurnTrace:
    """FastTrack-style sessions: Poisson arrivals, exponential stays.

    Every join schedules its own departure ``Exp(mean_lifetime)``
    later; departures beyond ``duration`` are dropped (the session
    outlives the experiment).
    """
    if mean_lifetime <= 0:
        raise ValueError(f"mean_lifetime must be positive, got {mean_lifetime}")
    rng = rng if rng is not None else Random(0)
    events: list[ChurnEvent] = []
    if arrival_rate > 0:
        when = _exponential(arrival_rate, rng)
        while when < duration:
            events.append(ChurnEvent(when, ChurnKind.JOIN))
            departs = when + _exponential(1.0 / mean_lifetime, rng)
            if departs < duration:
                crash = rng.random() < crash_fraction
                kind = ChurnKind.CRASH if crash else ChurnKind.LEAVE
                events.append(ChurnEvent(departs, kind))
            when += _exponential(arrival_rate, rng)
    events.sort(key=lambda event: event.time)
    return ChurnTrace(tuple(events), duration)
