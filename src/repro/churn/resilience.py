"""Resilience measurement results."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class ResilienceReport:
    """Outcome of one churn experiment.

    ``delivery_ratios`` has one entry per multicast sent during the
    churn phase; ``duplicates_per_message`` measures the flooding
    control overhead; ``ring_consistency_samples`` records whether the
    successor invariant held each time it was probed.
    """

    system: str
    churn_rate: float
    delivery_ratios: list[float] = field(default_factory=list)
    duplicates_per_message: list[int] = field(default_factory=list)
    ring_consistency_samples: list[bool] = field(default_factory=list)
    final_membership: int = 0
    path_lengths: list[int] = field(default_factory=list)
    #: Per-member gap durations from ``mc.origin`` to eventual delivery
    #: (seconds), across every multicast of the run — filled by the
    #: fault campaign's repair and failover paths.
    delivery_gaps: list[float] = field(default_factory=list)
    #: Per-message-kind drop/timeout accounting from the network layer
    #: (:meth:`repro.sim.network.NetworkStats.by_kind_summary`).
    network_summary: str = ""

    @property
    def has_measurements(self) -> bool:
        """True when at least one multicast was measured.

        Consumers that aggregate over many reports (the fault-injection
        campaign averages delivery across hundreds of plans) must skip
        empty runs, whose ratio properties are deliberately NaN — one
        unmeasured run would otherwise poison the whole average.
        """
        return bool(self.delivery_ratios)

    @property
    def mean_delivery_ratio(self) -> float:
        """Average delivery ratio over all multicasts.

        NaN when the run measured no multicasts — a run that sent
        nothing has no evidence of perfect delivery, and NaN poisons
        downstream averages instead of silently inflating them.
        """
        if not self.delivery_ratios:
            return float("nan")
        return sum(self.delivery_ratios) / len(self.delivery_ratios)

    @property
    def min_delivery_ratio(self) -> float:
        """Worst multicast of the run (NaN when nothing was measured)."""
        if not self.delivery_ratios:
            return float("nan")
        return min(self.delivery_ratios)

    @property
    def has_gap_measurements(self) -> bool:
        """True when at least one per-member delivery gap was recorded.

        Same convention as :attr:`has_measurements`: aggregators over
        many reports must skip gap-less runs, whose percentile
        properties are deliberately NaN.
        """
        return bool(self.delivery_gaps)

    @property
    def gap_p50(self) -> float:
        """Median delivery gap (NaN when no gaps were measured).

        Percentiles instead of only means: the failover comparison is
        about the *typical* and *tail* member experience, and a handful
        of deep-subtree stragglers would dominate a mean.
        """
        return percentile(self.delivery_gaps, 0.50)

    @property
    def gap_p99(self) -> float:
        """99th-percentile delivery gap (NaN when nothing was measured)."""
        return percentile(self.delivery_gaps, 0.99)

    @property
    def mean_duplicates(self) -> float:
        """Average redundant copies per multicast (flood overhead)."""
        if not self.duplicates_per_message:
            return 0.0
        return sum(self.duplicates_per_message) / len(self.duplicates_per_message)

    @property
    def ring_consistency_fraction(self) -> float:
        """Fraction of probes at which the ring invariant held."""
        if not self.ring_consistency_samples:
            return 1.0
        return sum(self.ring_consistency_samples) / len(self.ring_consistency_samples)

    @property
    def mean_path_length(self) -> float:
        """Mean delivery hop count across all multicasts."""
        if not self.path_lengths:
            return 0.0
        return sum(self.path_lengths) / len(self.path_lengths)

    def summary_row(self) -> str:
        """One formatted result row for experiment output."""
        return (
            f"{self.system:12s} churn={self.churn_rate:8.4f}/s "
            f"delivery(mean={self.mean_delivery_ratio:.4f} "
            f"min={self.min_delivery_ratio:.4f}) "
            f"dups/msg={self.mean_duplicates:8.1f} "
            f"ring_ok={self.ring_consistency_fraction:.2f} "
            f"members={self.final_membership}"
        )


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile, NaN-guarded on empty input.

    The NaN convention matches the ratio properties above: an empty
    sample carries no evidence, and NaN poisons a downstream aggregate
    instead of silently standing in for "fast".
    """
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (guards zero by flooring at 1e-9)."""
    if not values:
        return 0.0
    total = sum(math.log(max(value, 1e-9)) for value in values)
    return math.exp(total / len(values))
