"""Drive a live cluster through a churn trace while multicasting.

The experiment loop interleaves three activities on the simulated
clock: churn events from the trace (join / leave / crash), periodic
multicasts from random live sources, and delivery-ratio measurement a
fixed propagation window after each send.  The result quantifies the
paper's resilience claims: how much of the group still hears a message
while the maintenance protocol races the membership changes.

Also runnable directly for one-off resilience probes::

    python -m repro.churn.runner --system cam-chord --rate 0.5 \
        --duration 120 --trace churn.jsonl

which prints the resilience summary plus the per-message-kind network
drop/timeout accounting, and (with ``--trace``) records the structured
event stream for ``python -m repro.trace`` forensics.
"""

from __future__ import annotations

import argparse
import sys
from random import Random
from typing import Sequence

from repro.churn.resilience import ResilienceReport
from repro.churn.trace import ChurnKind, ChurnTrace
from repro.protocol.cluster import Cluster, SystemLike
from repro.protocol.config import ProtocolConfig
from repro.sim.latency import LatencyModel
from repro.systems import DEFAULT_UNIFORM_FANOUT, MemberSpec


class ChurnExperiment:
    """One system under one churn workload."""

    def __init__(
        self,
        system: SystemLike,
        capacities: "MemberSpec | Sequence[int]",
        bandwidths: Sequence[float] | None = None,
        space_bits: int = 16,
        config: ProtocolConfig | None = None,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        seed: int = 0,
        capacity_floor: int = 4,
        capacity_ceiling: int | None = None,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    ) -> None:
        self.cluster = Cluster(
            system,
            capacities,
            bandwidths=bandwidths,
            space_bits=space_bits,
            config=config,
            latency=latency,
            loss_rate=loss_rate,
            seed=seed,
            uniform_fanout=uniform_fanout,
        )
        self._rng = Random(seed ^ 0x5EED)
        self._capacity_floor = capacity_floor
        self._capacity_ceiling = capacity_ceiling
        self._base_capacities = list(
            capacities.capacities
            if isinstance(capacities, MemberSpec)
            else capacities
        )

    def _sample_capacity(self) -> int:
        """Capacity for a newly joining member (same law as the base)."""
        capacity = self._rng.choice(self._base_capacities)
        if self._capacity_ceiling is not None:
            capacity = min(capacity, self._capacity_ceiling)
        return max(self._capacity_floor, capacity)

    def run(
        self,
        trace: ChurnTrace,
        multicast_interval: float = 5.0,
        propagation_window: float = 3.0,
        system_name: str = "",
    ) -> ResilienceReport:
        """Bootstrap, then run the trace while multicasting.

        Returns the filled :class:`ResilienceReport`.  Multicasts start
        only after bootstrap convergence; each is measured
        ``propagation_window`` seconds after it was sent.
        """
        cluster = self.cluster
        cluster.bootstrap()
        start = cluster.simulator.now
        report = ResilienceReport(
            system=system_name or type(cluster._initial[0]).__name__,
            churn_rate=trace.rate_per_second(),
        )

        # Schedule churn events on the simulated clock.
        for event in trace:
            cluster.simulator.call_at(
                start + event.time,
                lambda kind=event.kind: self._apply_churn_event(kind),
            )

        # Interleave multicasts and measurements.
        when = multicast_interval
        while when + propagation_window < trace.duration:
            send_at = start + when

            def do_send() -> None:
                try:
                    source = cluster.random_live_peer(self._rng)
                except RuntimeError:
                    return
                message_id = cluster.multicast_from(source.ident)
                cluster.simulator.call_later(
                    propagation_window,
                    lambda: self._measure(report, message_id),
                )

            cluster.simulator.call_at(send_at, do_send)
            when += multicast_interval

        cluster.run(trace.duration + propagation_window)
        report.final_membership = len(cluster.live_members())
        report.network_summary = cluster.network.stats.by_kind_summary()
        return report

    def _apply_churn_event(self, kind: ChurnKind) -> None:
        cluster = self.cluster
        if kind is ChurnKind.JOIN:
            try:
                cluster.add_peer(self._sample_capacity())
            except RuntimeError:
                pass
            return
        live = cluster.live_members()
        if len(live) <= 2:
            return  # keep a minimal ring alive
        victim = self._rng.choice(sorted(live))
        cluster.remove_peer(victim, crash=(kind is ChurnKind.CRASH))

    def _measure(self, report: ResilienceReport, message_id: int) -> None:
        cluster = self.cluster
        report.delivery_ratios.append(cluster.delivery_ratio(message_id))
        report.duplicates_per_message.append(
            cluster.monitor.duplicates.get(message_id, 0)
        )
        report.ring_consistency_samples.append(cluster.ring_consistent())
        report.path_lengths.extend(cluster.monitor.path_lengths(message_id))


def main(argv: list[str] | None = None) -> int:
    """One-off churn probe: ``python -m repro.churn.runner``."""
    from repro.experiments.common import SEED_HELP, point_rng
    from repro.systems import system_names

    parser = argparse.ArgumentParser(
        prog="repro-churn",
        description="Run one churn resilience experiment and print the report.",
    )
    parser.add_argument(
        "--system", choices=sorted(system_names()), default="cam-chord"
    )
    parser.add_argument(
        "--rate", type=float, default=0.2, help="join and depart rate, events/s"
    )
    parser.add_argument("--duration", type=float, default=60.0, help="trace seconds")
    parser.add_argument("--size", type=int, default=48, help="initial group size")
    parser.add_argument("--seed", type=int, default=0, help=SEED_HELP)
    parser.add_argument("--loss", type=float, default=0.0, help="datagram loss rate")
    parser.add_argument(
        "--fanout",
        type=int,
        default=4,
        help="uniform fanout for the capacity-oblivious baselines",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record structured trace events and write them as JSONL to PATH",
    )
    args = parser.parse_args(argv)

    if args.trace is not None:
        from repro.trace.tracer import TRACER

        TRACER.enable()

    from repro.churn.trace import poisson_trace

    # Named streams (same SHA-512 string-seeding scheme the parallel
    # engine and scenario compiler use) instead of seed arithmetic, so
    # every CLI in the repo derives per-purpose randomness identically.
    rng = point_rng(args.seed, "churn", "capacities")
    capacities = [rng.randint(4, 10) for _ in range(args.size)]
    trace = poisson_trace(
        args.duration,
        join_rate=args.rate,
        depart_rate=args.rate,
        rng=point_rng(args.seed, "churn", "trace"),
    )
    experiment = ChurnExperiment(
        args.system,
        capacities,
        space_bits=16,
        seed=args.seed,
        loss_rate=args.loss,
        uniform_fanout=args.fanout,
    )
    report = experiment.run(trace, system_name=args.system)
    print(report.summary_row())
    print(f"# network {report.network_summary}")

    if args.trace is not None:
        from repro.trace.export import write_jsonl
        from repro.trace.tracer import TRACER

        count = write_jsonl(TRACER.events(), args.trace)
        print(f"# trace: {count} events -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
