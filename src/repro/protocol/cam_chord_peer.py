"""Live CAM-Chord peer: neighbor slots + region-splitting multicast.

The neighbor table is keyed by ``(level, sequence)`` slots — the
identifiers ``(x + j * c**i) mod N`` of Section 3.1 — and refreshed by
the shared fix-neighbors loop.  The multicast data plane executes the
Section 3.4 region splitting against this *local* table via the same
pure ``select_child_regions`` core as the structural simulation, so a
stale or missing entry degrades coverage in exactly the way a real
deployment's would.

Setting every peer's ``capacity`` to the same constant ``k`` turns this
into a live base-``k`` Chord node (the capacity-oblivious baseline),
because the slot set degenerates to the plain finger table.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.multicast.cam_chord import select_child_regions
from repro.overlay.cam_chord import slot_identifiers
from repro.protocol.base_peer import BasePeer, LookupFailed
from repro.sim.engine import FutureError
from repro.sim.network import Message
from repro.trace.tracer import TRACER


class CamChordPeer(BasePeer):
    """A live CAM-Chord node."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Repair in reliable mode can resend a region whose ack was
        # lost; track handled message ids so delivery stays exactly-once.
        self._seen_messages: set[int] = set()

    def slot_specs(self) -> Iterable[tuple[Any, int]]:
        return [
            ((level, sequence), identifier)
            for level, sequence, identifier in slot_identifiers(
                self.ident, self.capacity, self.space.bits
            )
        ]

    # -- multicast ---------------------------------------------------------

    def multicast(self, message_id: int | None = None) -> int:
        """Originate one multicast (the paper's ``MULTICAST(msg, x-1)``)."""
        if message_id is None:
            message_id = self.next_message_id()
        self._seen_messages.add(message_id)
        self._deliver_local(message_id, depth=0)
        self._forward_region(message_id, self.space.sub(self.ident, 1), depth=0)
        return message_id

    def _slot_resolver(self, level: int, sequence: int, identifier: int) -> int | None:
        """The peer's belief about who is responsible for a slot."""
        if level == 0 and sequence == 1:
            # x_{0,1} is the successor — always maintained.
            succ = self.successor
            return succ if succ != self.ident else None
        return self.neighbor_table.get((level, sequence))

    def _forward_region(self, message_id: int, limit: int, depth: int) -> None:
        children = select_child_regions(
            self.ident,
            self.capacity,
            self.space.bits,
            limit,
            self._slot_resolver,
        )
        payload_of = lambda sublimit: {
            "mid": message_id,
            "limit": sublimit,
            "depth": depth + 1,
        }
        if not self.config.reliable_multicast:
            for child, sublimit in children:
                self.network.send(self.ident, child, "mc_region", payload_of(sublimit))
            return
        for child, sublimit in children:
            self.simulator.spawn(
                self._reliable_handoff(child, payload_of(sublimit))
            )

    def _reliable_handoff(
        self, child: int, payload: dict
    ) -> Generator[Any, Any, None]:
        """Acknowledged region handoff with lookup-based repair.

        Retry once (tolerates message loss); if the child stays silent,
        treat it as dead, purge it, wait out a stabilization round —
        immediately after a crash the dead node's identifier still
        resolves to the dead node in everyone's view — and then look up
        who owns the dead child's identifier now, routing around every
        node already found dead.  The repaired handoff covers the whole
        original span, so the members behind the crash are not lost.
        """
        target = child
        dead: set[int] = set()
        for _ in range(6):
            for _ in range(3):
                try:
                    yield self.network.request(
                        self.ident,
                        target,
                        "mc_region",
                        payload,
                        timeout=self.config.rpc_timeout,
                    )
                    return
                except FutureError:
                    continue
            # Distinguish "dead" from "unlucky on a lossy link": a
            # false death verdict makes the repair route *around* a
            # live member and abandon its span.
            try:
                yield self.rpc(target, "ping")
                continue  # alive after all — retry the handoff
            except FutureError:
                pass
            dead.add(target)
            self._purge_link(target)
            # Let stabilization absorb the failure before re-resolving.
            yield self.config.stabilize_interval
            try:
                replacement = yield from self._lookup_process(child, exclude=set(dead))
            except LookupFailed:
                continue
            if replacement == self.ident:
                return  # every member of the span is gone
            if replacement in dead:
                continue  # the ring has not re-converged yet; back off
            if not self.space.in_segment(
                replacement, self.ident, payload["limit"]
            ):
                # the next live node sits beyond the region: nobody is
                # left inside the dead child's span, repair is complete
                return
            if TRACER.enabled:
                TRACER.emit(
                    self.simulator.now, "mc", "repair",
                    mid=payload["mid"], ident=self.ident,
                    dead=target, replacement=replacement,
                )
            target = replacement

    def _on_mc_region(self, message: Message) -> None:
        payload = message.payload
        if message.request_id is not None:
            # reliable mode: acknowledge receipt before forwarding
            self.network.respond(message, {})
        message_id = payload["mid"]
        if message_id in self._seen_messages:
            # A repair handed us a region again — possibly *larger* than
            # the one we handled (we are standing in for a dead node
            # whose span extended past our original assignment).  Do not
            # re-deliver, but do re-forward so the extra span is
            # covered; receivers dedupe the overlap the same way, and
            # the recursion terminates because regions shrink strictly.
            self._duplicate_local(message_id, message.sender)
            if self.config.reliable_multicast:
                self._forward_region(message_id, payload["limit"], payload["depth"])
            return
        self._seen_messages.add(message_id)
        self._deliver_local(message_id, payload["depth"], parent=message.sender)
        self._forward_region(message_id, payload["limit"], payload["depth"])
