"""Live plain-Koorde peer: the capacity-oblivious de Bruijn baseline.

Koorde's degree-``k`` construction points at the ``k`` consecutive
members starting at the node responsible for ``k * x``.  Consecutive
*members* cannot be maintained as independent identifier lookups (the
raw identifiers ``k*x + j`` usually all resolve to one node), so this
peer overrides the neighbor-refresh step: one lookup finds the anchor
member, and the anchor's successor list — which the Chord maintenance
cycle already keeps fresh — supplies the rest of the window in a
single extra round trip.

Multicast is flooding with duplicate suppression, as in Section 4.3;
the fanout is the uniform ``degree`` regardless of the node's
bandwidth, which is precisely what the paper's evaluation holds
against Koorde.

(The live plain-Chord baseline needs no class of its own: a
``CamChordPeer`` fleet with every capacity pinned to ``k`` *is* live
base-``k`` Chord — see ``tests/test_equivalences.py``.)
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.protocol.base_peer import BasePeer, LookupFailed
from repro.sim.engine import FutureError
from repro.sim.network import Message


class KoordePeer(BasePeer):
    """A live degree-``k`` Koorde node.

    ``capacity`` is reinterpreted as the de Bruijn degree ``k`` (the
    uniform link budget every node gets).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.capacity < 1:
            raise ValueError(f"Koorde degree must be >= 1, got {self.capacity}")
        self._seen_messages: set[int] = set()

    @property
    def degree(self) -> int:
        """The de Bruijn degree (uniform across the overlay)."""
        return self.capacity

    def slot_specs(self) -> Iterable[tuple[Any, int]]:
        # One *anchor* slot at k*x; the rest of the window is fetched
        # from the anchor's successor list in _fix_one_neighbor.
        anchor = (self.degree * self.ident) % self.space.size
        return [(("debruijn", 0), anchor)]

    def _fix_one_neighbor(self) -> Generator[Any, Any, None]:
        """Refresh the whole de Bruijn window in one lookup + one RPC."""
        anchor_ident = (self.degree * self.ident) % self.space.size
        try:
            anchor = yield from self._lookup_process(anchor_ident)
        except LookupFailed:
            return
        if anchor == self.ident:
            # we are responsible for our own de Bruijn image; the window
            # starts at our successor (handled by the ring links)
            self.neighbor_table.pop(("debruijn", 0), None)
            window_source = None
        else:
            self.neighbor_table[("debruijn", 0)] = anchor
            window_source = anchor
        if window_source is None or self.degree == 1:
            for index in range(1, self.degree):
                self.neighbor_table.pop(("debruijn", index), None)
            return
        try:
            info = yield self.rpc(window_source, "get_info")
        except FutureError:
            return
        followers = [
            ident
            for ident in info.get("successors", [])
            if ident != self.ident and ident != window_source
        ]
        for index in range(1, self.degree):
            key = ("debruijn", index)
            if index - 1 < len(followers):
                self.neighbor_table[key] = followers[index - 1]
            else:
                self.neighbor_table.pop(key, None)

    # -- multicast (flooding, Section 4.3 semantics) -----------------------

    def flood_links(self) -> set[int]:
        """Ring links plus the de Bruijn window."""
        links = set(self.neighbor_table.values())
        if self.successor != self.ident:
            links.add(self.successor)
        if self.predecessor is not None and self.predecessor != self.ident:
            links.add(self.predecessor)
        links.discard(self.ident)
        return links

    def multicast(self, message_id: int | None = None) -> int:
        """Originate one flood."""
        if message_id is None:
            message_id = self.next_message_id()
        self._seen_messages.add(message_id)
        self._deliver_local(message_id, depth=0)
        self._flood(message_id, depth=0, skip=None)
        return message_id

    def _flood(self, message_id: int, depth: int, skip: int | None) -> None:
        for link in self.flood_links():
            if link == skip:
                continue
            self.network.send(
                self.ident,
                link,
                "mc_flood",
                {"mid": message_id, "depth": depth + 1},
            )

    def _on_mc_flood(self, message: Message) -> None:
        payload = message.payload
        message_id = payload["mid"]
        if message_id in self._seen_messages:
            self._duplicate_local(message_id, message.sender)
            return
        self._seen_messages.add(message_id)
        self._deliver_local(message_id, payload["depth"], parent=message.sender)
        self._flood(message_id, payload["depth"], skip=message.sender)
