"""Drive a whole live overlay: bootstrap, churn operations, inspection.

A :class:`Cluster` owns the simulator, network, delivery monitor and
all peers of one live overlay session.  It is the test bench for the
"resilient" half of the paper: build the ring, let the maintenance
protocol converge, then join/leave/crash peers while multicasting and
measure what arrives.

A cluster is normally built from a *system* (anything the
:mod:`repro.systems` registry resolves: a descriptor, a
:class:`~repro.systems.SystemKind`, or a canonical name like
``"cam-chord"``) plus either a plain capacity list or a frozen
:class:`~repro.systems.MemberSpec`; the descriptor supplies the live
peer class and the capacity policy (the uniform baselines pin every
peer's capacity to the configured fanout).  Passing a raw
:class:`~repro.protocol.base_peer.BasePeer` subclass instead of a
system is still supported for protocol-level tests that want to drive
one peer implementation directly, with capacities taken verbatim.
"""

from __future__ import annotations

from random import Random
from typing import Sequence, Type, Union

from repro.idspace.ring import IdentifierSpace
from repro.overlay.base import Node, RingSnapshot, sample_identifiers
from repro.protocol.base_peer import BasePeer, DeliveryMonitor
from repro.protocol.config import ProtocolConfig
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import Network
from repro.systems import (
    DEFAULT_UNIFORM_FANOUT,
    MemberSpec,
    SystemDescriptor,
    SystemKind,
    resolve,
)
from repro.trace.tracer import TRACER

SystemLike = Union[SystemDescriptor, SystemKind, str, Type[BasePeer]]


class Cluster:
    """One live overlay session under simulation."""

    def __init__(
        self,
        system: SystemLike,
        members: "MemberSpec | Sequence[int]",
        bandwidths: Sequence[float] | None = None,
        space_bits: int = 19,
        config: ProtocolConfig | None = None,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        seed: int = 0,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    ) -> None:
        if isinstance(system, type) and issubclass(system, BasePeer):
            # Legacy escape hatch: drive a peer implementation directly,
            # capacities verbatim, no registry policy applied.
            self.system: SystemDescriptor | None = None
            self._peer_class = system
        else:
            self.system = resolve(system)
            self._peer_class = self.system.live_peer_class()
        self._uniform_fanout = uniform_fanout
        if isinstance(members, MemberSpec):
            space_bits = members.space_bits
        self.space = IdentifierSpace(space_bits)
        self.simulator = Simulator()
        self.network = Network(
            self.simulator,
            latency=latency if latency is not None else ConstantLatency(0.02),
            loss_rate=loss_rate,
            seed=seed,
        )
        self.monitor = DeliveryMonitor()
        self.config = config if config is not None else ProtocolConfig()
        self._rng = Random(seed)
        self.peers: dict[int, BasePeer] = {}

        if isinstance(members, MemberSpec):
            placements = list(
                zip(members.identifiers, members.capacities, members.bandwidths)
            )
        else:
            capacities = list(members)
            idents = sample_identifiers(
                len(capacities), self.space.size, self._rng
            )
            placements = [
                (
                    ident,
                    capacities[index],
                    bandwidths[index] if bandwidths is not None else 0.0,
                )
                for index, ident in enumerate(idents)
            ]
        self._initial: list[BasePeer] = [
            self._make_peer(ident, capacity, bandwidth)
            for ident, capacity, bandwidth in placements
        ]

    def _effective_capacity(self, capacity: int) -> int:
        """Apply the system's capacity policy to one member.

        Capacities are clamped to the system's floor, then the fanout
        policy decides what a live peer runs with — a uniform baseline
        pins it to the configured fanout (a ``CamChordPeer`` fleet with
        every capacity pinned to ``k`` *is* live base-``k`` Chord).
        """
        if self.system is None:
            return capacity
        return self.system.live_capacity(
            max(capacity, self.system.min_capacity), self._uniform_fanout
        )

    def _make_peer(self, ident: int, capacity: int, bandwidth: float) -> BasePeer:
        peer = self._peer_class(
            ident,
            self._effective_capacity(capacity),
            self.network,
            self.space,
            config=self.config,
            bandwidth_kbps=bandwidth,
            monitor=self.monitor,
        )
        self.peers[ident] = peer
        return peer

    # -- lifecycle ---------------------------------------------------------

    def bootstrap(
        self,
        join_stagger: float = 0.05,
        settle: float | None = None,
        max_converge_rounds: int = 2000,
    ) -> None:
        """Join every initial peer and let the maintenance settle.

        Peers join one by one (each via a random already-joined peer),
        ``join_stagger`` apart.  A mass join telescopes successor
        pointers, and Chord stabilization then shortens each pointer by
        one live member per round — so the cluster first runs until the
        ring invariant holds, then for ``settle`` more seconds (default:
        enough fix-neighbor rounds to fill the largest table).
        """
        first, rest = self._initial[0], self._initial[1:]
        first.create()
        joined = [first]

        when = 0.0
        for peer in rest:
            when += join_stagger
            bootstrap_peer = self._rng.choice(joined)

            def do_join(p: BasePeer = peer, b: BasePeer = bootstrap_peer) -> None:
                p.join(b.ident)

            self.simulator.call_at(when, do_join)
            joined.append(peer)
        self.simulator.run(until=when + join_stagger)

        # A join lookup can fail while the ring is still telescoped;
        # real clients retry, so the bootstrap does too.
        for _ in range(50):
            stragglers = [p for p in self._initial if not p.alive]
            if not stragglers:
                break
            live = self.live_peers()
            for peer in stragglers:
                peer.join(self._rng.choice(live).ident)
            self.run(2 * self.config.stabilize_interval)
        else:
            dead = [p.ident for p in self._initial if not p.alive]
            raise RuntimeError(f"{len(dead)} peers failed to join: {dead[:5]}")

        for _ in range(max_converge_rounds):
            if self.ring_consistent():
                break
            self.run(self.config.stabilize_interval)
        else:
            raise RuntimeError(
                f"ring failed to converge within {max_converge_rounds} rounds"
            )

        if settle is None:
            slots = max(len(list(p.slot_specs())) for p in self._initial)
            settle = (slots + 2) * self.config.fix_neighbors_interval
        self.run(settle)

    def run(self, duration: float) -> None:
        """Advance simulated time."""
        self.simulator.run(until=self.simulator.now + duration)

    # -- churn operations ------------------------------------------------------

    def add_peer(self, capacity: int, bandwidth: float = 0.0) -> BasePeer:
        """Join a brand-new member through a random live peer."""
        live = self.live_peers()
        if not live:
            raise RuntimeError("cannot join: no live peers to bootstrap from")
        while True:
            ident = self._rng.randrange(self.space.size)
            if ident not in self.peers:
                break
        peer = self._make_peer(ident, capacity, bandwidth)
        # Hand the joiner a bootstrap *list* (evenly spaced live
        # members), not just the one join target: if its successor dies
        # before the first stabilize, the cached contacts are its only
        # way back into a ring that does not know it exists yet.
        seeds = live[:: max(1, len(live) // 4)][:4]
        peer.remember_contacts(p.ident for p in seeds)
        peer.join(self._rng.choice(live).ident)
        return peer

    def remove_peer(self, ident: int, crash: bool = True) -> None:
        """Depart a member (abruptly by default)."""
        peer = self.peers[ident]
        if crash:
            peer.crash()
        else:
            peer.leave()

    # -- fault injection --------------------------------------------------

    def partition(self, a: int, b: int) -> None:
        """Sever all traffic between two members (both directions)."""
        self.network.partition(a, b)

    def heal_all_partitions(self) -> None:
        """Undo every active partition (the campaign quiesce step)."""
        self.network.heal_all()

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the global iid datagram loss probability."""
        self.network.set_loss_rate(loss_rate)

    def set_kind_loss(self, kind: str, loss_rate: float) -> None:
        """Per-message-kind loss (e.g. starve ``get_info`` to brew a
        timeout storm, or eat ``mc_region`` handoffs selectively)."""
        self.network.set_kind_loss(kind, loss_rate)

    def clear_fault_injection(self) -> None:
        """Heal partitions and zero every loss rate — the network is
        pristine again (peer state is whatever the faults left)."""
        self.network.heal_all()
        self.network.set_loss_rate(0.0)
        self.network.clear_kind_loss()

    def random_live_peer(self, rng: Random | None = None) -> BasePeer:
        """A uniformly random live member."""
        live = self.live_peers()
        if not live:
            raise RuntimeError("no live peers")
        chooser = rng if rng is not None else self._rng
        return chooser.choice(live)

    # -- inspection -------------------------------------------------------------

    def live_peers(self) -> list[BasePeer]:
        """All currently alive peers, in identifier order."""
        return sorted(
            (p for p in self.peers.values() if p.alive), key=lambda p: p.ident
        )

    def live_members(self) -> set[int]:
        """Identifiers of the live membership."""
        return {p.ident for p in self.peers.values() if p.alive}

    def ring_consistent(self) -> bool:
        """True when every live peer's successor is the true next live
        member — the Chord correctness invariant."""
        live = self.live_peers()
        if len(live) <= 1:
            return True
        for index, peer in enumerate(live):
            expected = live[(index + 1) % len(live)].ident
            if peer.successor != expected:
                return False
        return True

    def neighbor_table_accuracy(self) -> float:
        """Fraction of neighbor-table entries matching true resolution."""
        snapshot = self.live_snapshot()
        total = 0
        correct = 0
        for peer in self.live_peers():
            for key, identifier in peer.slot_specs():
                believed = peer.neighbor_table.get(key)
                if key == (0, 1):
                    believed = peer.successor
                total += 1
                truth = snapshot.resolve(identifier).ident
                if believed is None:
                    # A peer keeps no entry for a slot it is itself
                    # responsible for — that is the correct answer.
                    if truth == peer.ident:
                        correct += 1
                    continue
                if believed == truth or truth == peer.ident:
                    correct += 1
        return correct / total if total else 1.0

    def live_snapshot(self) -> RingSnapshot:
        """A structural snapshot of the live membership (ground truth)."""
        nodes = [
            Node(
                ident=p.ident,
                capacity=p.capacity,
                bandwidth_kbps=p.bandwidth_kbps,
            )
            for p in self.live_peers()
        ]
        return RingSnapshot(self.space, nodes)

    # -- multicast --------------------------------------------------------------

    def multicast_from(self, ident: int) -> int:
        """Originate a multicast at a live peer; returns the message id."""
        peer = self.peers[ident]
        if not peer.alive:
            raise RuntimeError(f"peer {ident} is not alive")
        message_id = peer.next_message_id()
        members = self.live_members()
        self.monitor.message_sent(message_id, ident, members)
        if TRACER.enabled:
            # The origin event freezes the send-time membership (with
            # capacities) so the causal reconstructor can rebuild the
            # implicit tree and name every lost member's last hop.
            TRACER.emit(
                self.simulator.now, "mc", "origin",
                mid=message_id, source=ident,
                system=(
                    self.system.name
                    if self.system is not None
                    else type(peer).__name__
                ),
                bits=self.space.bits,
                members=sorted(members),
                capacities=[
                    [member, self.peers[member].capacity]
                    for member in sorted(members)
                ],
            )
        peer.multicast(message_id)  # type: ignore[attr-defined]
        return message_id

    def delivery_ratio(self, message_id: int) -> float:
        """Delivery ratio of one multicast against the members that were
        alive at send time and are still alive now."""
        return self.monitor.delivery_ratio(message_id, self.live_members())
