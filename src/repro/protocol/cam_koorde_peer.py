"""Live CAM-Koorde peer: de Bruijn neighbor groups + flooding multicast.

The neighbor table is keyed by the Section 4.1 group identifiers
(``x/2``, ``2**(b-1) + x/2``, second group, third group), refreshed by
the shared fix-neighbors loop; predecessor and successor complete the
basic group.  Multicast floods over these links with duplicate
suppression at the receiver — semantically identical to the paper's
"have you received it?" handshake, with every redundant copy counted
as control overhead in the delivery monitor.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.overlay.cam_koorde import cam_koorde_neighbor_groups
from repro.protocol.base_peer import BasePeer
from repro.sim.network import Message


class CamKoordePeer(BasePeer):
    """A live CAM-Koorde node (requires ``capacity >= 4``)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.capacity < 4:
            raise ValueError(
                f"CAM-Koorde requires capacity >= 4, got {self.capacity}"
            )
        self._seen_messages: set[int] = set()

    def slot_specs(self) -> Iterable[tuple[Any, int]]:
        groups = cam_koorde_neighbor_groups(self.ident, self.capacity, self.space.bits)
        return [
            (("debruijn", index), identifier)
            for index, identifier in enumerate(groups.all_identifiers())
        ]

    # -- multicast ---------------------------------------------------------

    def flood_links(self) -> set[int]:
        """Everything the flood forwards over: the full basic group plus
        the resolved shift groups."""
        links = set(self.neighbor_table.values())
        if self.successor != self.ident:
            links.add(self.successor)
        if self.predecessor is not None and self.predecessor != self.ident:
            links.add(self.predecessor)
        links.discard(self.ident)
        return links

    def multicast(self, message_id: int | None = None) -> int:
        """Originate one multicast (Section 4.3: forward to all
        neighbors)."""
        if message_id is None:
            message_id = self.next_message_id()
        self._seen_messages.add(message_id)
        self._deliver_local(message_id, depth=0)
        self._flood(message_id, depth=0, skip=None)
        return message_id

    def _flood(self, message_id: int, depth: int, skip: int | None) -> None:
        for link in self.flood_links():
            if link == skip:
                continue
            self.network.send(
                self.ident,
                link,
                "mc_flood",
                {"mid": message_id, "depth": depth + 1},
            )

    def _on_mc_flood(self, message: Message) -> None:
        payload = message.payload
        message_id = payload["mid"]
        if message_id in self._seen_messages:
            self._duplicate_local(message_id, message.sender)
            return
        self._seen_messages.add(message_id)
        self._deliver_local(message_id, payload["depth"], parent=message.sender)
        self._flood(message_id, payload["depth"], skip=message.sender)
