"""Peer machinery shared by the live CAM-Chord and CAM-Koorde nodes.

A peer owns the Chord maintenance cycle (Section 3.3 adopts it
verbatim, Section 4.2 reuses it for the de Bruijn overlay):

* ``stabilize`` — ask the successor for its predecessor, adopt a
  closer one, refresh the successor list, notify;
* ``notify`` — accept a closer predecessor;
* ``check predecessor`` — ping and clear on failure;
* ``fix neighbors`` — round-robin refresh of the overlay-specific
  neighbor table via lookups (Chord's ``fix_fingers`` generalized).

Lookups are *iterative*: the querying peer asks each hop for its best
next hop, excluding hops that already timed out — the standard
robustness choice under churn (a recursive chain dies with any single
node on it).
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable

from repro.idspace.ring import IdentifierSpace
from repro.protocol.config import ProtocolConfig
from repro.sim.engine import Future, FutureError, ProcessHandle, Simulator
from repro.sim.network import Message, Network
from repro.trace.tracer import TRACER


class LookupFailed(Exception):
    """An iterative lookup exhausted its retries."""


_message_ids = itertools.count(1)


@dataclass
class DeliveryMonitor:
    """Cluster-wide observer of multicast outcomes.

    The experiment driver calls :meth:`message_sent` with the member
    set alive at send time; peers report deliveries and duplicates.
    Delivery ratio is computed against members that were alive at send
    time *and* are still alive when the ratio is read (a node that
    left mid-dissemination is not a failure of the multicast system).
    """

    sent_members: dict[int, set[int]] = field(default_factory=dict)
    sent_source: dict[int, int] = field(default_factory=dict)
    received: dict[int, dict[int, int]] = field(default_factory=dict)
    duplicates: Counter = field(default_factory=Counter)

    def message_sent(self, message_id: int, source: int, members: set[int]) -> None:
        """Register a new multicast and the membership it targets.

        The source reports its own delivery when it originates the
        message, so it is not pre-registered here (doing so would count
        the origination as a duplicate)."""
        self.sent_members[message_id] = set(members)
        self.sent_source[message_id] = source
        self.received[message_id] = {}

    def delivered(self, message_id: int, ident: int, depth: int) -> None:
        """A peer received the message for the first time."""
        log = self.received.setdefault(message_id, {})
        if ident in log:
            self.duplicates[message_id] += 1
            return
        log[ident] = depth

    def duplicate(self, message_id: int, ident: int) -> None:
        """A peer received a redundant copy (flooding control overhead)."""
        self.duplicates[message_id] += 1

    def delivery_ratio(self, message_id: int, still_alive: set[int]) -> float:
        """Fraction of eligible members that got the message."""
        eligible = self.sent_members.get(message_id, set()) & still_alive
        if not eligible:
            return 1.0
        got = sum(1 for ident in eligible if ident in self.received.get(message_id, {}))
        return got / len(eligible)

    def path_lengths(self, message_id: int) -> list[int]:
        """Hop counts of every delivery (source excluded)."""
        source = self.sent_source.get(message_id)
        return [
            depth
            for ident, depth in self.received.get(message_id, {}).items()
            if ident != source
        ]


class BasePeer:
    """One live overlay node.

    Subclasses provide the neighbor-table shape (:meth:`slot_specs`),
    the links used for routing (:meth:`routing_links`), and the
    multicast data plane.
    """

    def __init__(
        self,
        ident: int,
        capacity: int,
        network: Network,
        space: IdentifierSpace,
        config: ProtocolConfig | None = None,
        bandwidth_kbps: float = 0.0,
        monitor: DeliveryMonitor | None = None,
    ) -> None:
        self.ident = ident
        self.capacity = capacity
        self.bandwidth_kbps = bandwidth_kbps
        self.network = network
        self.space = space
        self.config = config if config is not None else ProtocolConfig()
        self.monitor = monitor

        self.predecessor: int | None = None
        self.successors: list[int] = [ident]
        self.neighbor_table: dict[Any, int] = {}
        self.alive = False
        self._tasks: list[ProcessHandle] = []
        self._slots = list(self.slot_specs())
        self._next_slot = 0
        # Consecutive stabilize failures of the current successor; a
        # single lost datagram must not evict a live successor.
        self._successor_strikes = 0
        self._join_in_flight = False
        self._departing_gracefully = False
        # Last-resort contacts for islanded recovery, most recent last.
        # A freshly joined peer whose sole successor dies before the
        # first stabilize has an empty neighbor table and no other way
        # back into the ring (fault-injection plans hit exactly this
        # join/crash race); the cache keeps the bootstrap node and the
        # members recent stabilize rounds proved alive.
        self._contact_cache: list[int] = []

    #: Islanded-recovery contacts kept per peer (see ``_contact_cache``).
    CONTACT_CACHE_SIZE = 16

    #: Evict the successor after this many consecutive RPC failures.
    #: Eviction also purges the node from the neighbor table, so the
    #: threshold must make spurious eviction rare even on lossy links
    #: (at 10% message loss a round-trip fails ~19% of the time; three
    #: consecutive failures of a live successor are ~0.7%).
    SUCCESSOR_STRIKE_LIMIT = 3

    # -- subclass interface ----------------------------------------------

    def slot_specs(self) -> Iterable[tuple[Any, int]]:
        """(table key, identifier) pairs the fix-neighbors loop refreshes."""
        raise NotImplementedError

    def routing_links(self) -> set[int]:
        """Identifiers of every link usable for greedy routing."""
        links = set(self.neighbor_table.values())
        links.update(self.successors)
        if self.predecessor is not None:
            links.add(self.predecessor)
        links.discard(self.ident)
        return links

    # -- simulator helpers --------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        return self.network.simulator

    @property
    def successor(self) -> int:
        """The current first live-believed successor."""
        return self.successors[0] if self.successors else self.ident

    def rpc(self, target: int, kind: str, payload: Any = None) -> Future:
        """Request/response with the configured timeout."""
        return self.network.request(
            self.ident, target, kind, payload, timeout=self.config.rpc_timeout
        )

    # -- lifecycle ------------------------------------------------------------

    def create(self) -> None:
        """Bootstrap a brand-new ring containing only this peer."""
        self.predecessor = None
        self.successors = [self.ident]
        self._go_live()

    def join(self, bootstrap: int) -> Future:
        """Join the ring known to ``bootstrap``.

        Returns a future resolving True on success, False when the
        bootstrap lookup failed (the caller may retry with another
        bootstrap node).
        """
        outcome = Future()
        if self.alive or self._join_in_flight:
            # Already a member, or a previous join attempt is still
            # running — joining twice would double-register.
            outcome.resolve(self.alive)
            return outcome
        self._join_in_flight = True
        self._remember_contact(bootstrap)

        def process() -> Generator[Any, Any, None]:
            try:
                successor = yield from self._lookup_via(bootstrap, self.ident)
            except LookupFailed:
                self._join_in_flight = False
                outcome.resolve(False)
                return
            self._join_in_flight = False
            self.predecessor = None
            self.successors = [successor]
            self._remember_contact(successor)
            self._go_live()
            if TRACER.enabled:
                TRACER.emit(
                    self.simulator.now, "proto", "join",
                    ident=self.ident, succ=successor,
                )
            self.network.send(self.ident, successor, "notify", {"ident": self.ident})
            outcome.resolve(True)

        self.simulator.spawn(process())
        return outcome

    def _go_live(self) -> None:
        self.network.register(self.ident, self)
        self.alive = True
        config = self.config
        # Deterministic de-phasing: peers with different identifiers do
        # not stabilize in lock step.
        phase = (self.ident % 997) / 997.0
        self._tasks = [
            self.simulator.spawn(
                self._periodic(config.stabilize_interval, self._stabilize_once),
                delay=phase * config.stabilize_interval,
            ),
            self.simulator.spawn(
                self._periodic(config.fix_neighbors_interval, self._fix_one_neighbor),
                delay=phase * config.fix_neighbors_interval,
            ),
            self.simulator.spawn(
                self._periodic(
                    config.check_predecessor_interval, self._check_predecessor_once
                ),
                delay=phase * config.check_predecessor_interval,
            ),
        ]

    def leave(self) -> None:
        """Graceful departure: hand state to the ring neighbors, then go."""
        if not self.alive:
            return
        if TRACER.enabled:
            TRACER.emit(self.simulator.now, "proto", "leave", ident=self.ident)
        self._departing_gracefully = True
        if self.predecessor is not None and self.predecessor != self.ident:
            self.network.send(
                self.ident,
                self.predecessor,
                "leaving",
                {"successors": [s for s in self.successors if s != self.ident]},
            )
        if self.successor != self.ident:
            self.network.send(
                self.ident,
                self.successor,
                "leaving_pred",
                {"predecessor": self.predecessor},
            )
        self.crash()

    def crash(self) -> None:
        """Abrupt failure: vanish without telling anyone."""
        if not self.alive:
            return
        if TRACER.enabled and not self._departing_gracefully:
            TRACER.emit(self.simulator.now, "proto", "crash", ident=self.ident)
        self.alive = False
        self.network.unregister(self.ident)
        for task in self._tasks:
            task.kill()
        self._tasks = []

    # -- periodic maintenance ---------------------------------------------------

    def _periodic(self, interval: float, step) -> Generator[Any, Any, None]:
        while True:
            yield from step()
            yield interval

    def _stabilize_once(self) -> Generator[Any, Any, None]:
        while self.successors and self.successor != self.ident:
            succ = self.successor
            try:
                info = yield self.rpc(succ, "get_info")
            except FutureError:
                # Tolerate isolated message loss; evict only a
                # successor that fails several rounds in a row.
                self._successor_strikes += 1
                if self._successor_strikes >= self.SUCCESSOR_STRIKE_LIMIT:
                    self._successor_strikes = 0
                    dead = self.successors.pop(0)
                    if TRACER.enabled:
                        TRACER.emit(
                            self.simulator.now, "proto", "evict",
                            ident=self.ident, dead=dead,
                        )
                    # The evidence is solid (several consecutive
                    # failures) — drop every link to the dead node, or
                    # the islanded-recovery path below could keep
                    # re-adopting it from the stale neighbor table.
                    self._purge_link(dead)
                    continue
                return
            self._successor_strikes = 0
            candidate = info.get("predecessor")
            if (
                candidate is not None
                and candidate != self.ident
                and self.space.in_segment(candidate, self.ident, succ)
            ):
                # a node joined between us and our successor
                self.successors.insert(0, candidate)
                succ = candidate
                self.network.send(self.ident, succ, "notify", {"ident": self.ident})
                return
            merged = [succ]
            for ident in info.get("successors", []):
                if ident != self.ident and ident not in merged:
                    merged.append(ident)
            self.successors = merged[: self.config.successor_list_size]
            for ident in self.successors:
                # get_info round-tripped, so these are fresh, live-ish
                # contacts — exactly what islanded recovery needs later.
                self._remember_contact(ident)
            if TRACER.enabled:
                TRACER.emit(
                    self.simulator.now, "proto", "stabilize",
                    ident=self.ident, succ=succ,
                )
            self.network.send(self.ident, succ, "notify", {"ident": self.ident})
            return
        if not self.successors:
            self.successors = [self.ident]
        if self.successor == self.ident:
            # Islanded (every listed successor failed): re-attach via the
            # closest clockwise link still in the neighbor table, or —
            # with no links left at all — through the most recently seen
            # cached contact, the same last resort a real deploy uses
            # when every learned neighbor has failed.  A dead contact
            # costs a few strike rounds, gets evicted (which purges it
            # from the cache too), and the next round tries the one
            # before it.
            links = self.routing_links()
            if links:
                best = min(
                    links, key=lambda link: self.space.segment_size(self.ident, link)
                )
                self.successors = [best]
            elif self._contact_cache:
                self.successors = [self._contact_cache[-1]]
        return

    def _fix_one_neighbor(self) -> Generator[Any, Any, None]:
        if not self._slots:
            return
        key, identifier = self._slots[self._next_slot]
        self._next_slot = (self._next_slot + 1) % len(self._slots)
        try:
            resolved = yield from self._lookup_process(identifier)
        except LookupFailed:
            if TRACER.enabled:
                TRACER.emit(
                    self.simulator.now, "proto", "fix_failed",
                    ident=self.ident, slot=str(key),
                )
            return
        if TRACER.enabled:
            TRACER.emit(
                self.simulator.now, "proto", "fix_neighbor",
                ident=self.ident, slot=str(key), resolved=resolved,
            )
        if resolved == self.ident:
            self.neighbor_table.pop(key, None)
        else:
            self.neighbor_table[key] = resolved

    def remember_contacts(self, idents: Iterable[int]) -> None:
        """Seed the islanded-recovery cache before joining.

        A real deployment's bootstrap handout is a *list* of members,
        not one address; a joiner whose sole successor dies before the
        first stabilize needs a second contact or it is lost to the
        ring forever (no member knows it, it knows no member).
        """
        for ident in idents:
            self._remember_contact(ident)

    def _remember_contact(self, ident: int) -> None:
        """Refresh ``ident`` in the islanded-recovery contact cache."""
        if ident == self.ident:
            return
        if ident in self._contact_cache:
            self._contact_cache.remove(ident)
        self._contact_cache.append(ident)
        if len(self._contact_cache) > self.CONTACT_CACHE_SIZE:
            self._contact_cache.pop(0)

    def _purge_link(self, ident: int) -> None:
        """Remove a node we believe dead from all local state."""
        self.successors = [s for s in self.successors if s != ident]
        for key in [k for k, v in self.neighbor_table.items() if v == ident]:
            del self.neighbor_table[key]
        if self.predecessor == ident:
            self.predecessor = None
        if ident in self._contact_cache:
            # The contact earned an eviction — do not keep re-adopting a
            # node the strike counter has already proven dead.
            self._contact_cache.remove(ident)

    def _check_predecessor_once(self) -> Generator[Any, Any, None]:
        if self.predecessor is None or self.predecessor == self.ident:
            return
        try:
            yield self.rpc(self.predecessor, "ping")
        except FutureError:
            self.predecessor = None

    # -- iterative lookup ----------------------------------------------------

    def local_next_hop(self, key: int, exclude: set[int]) -> tuple[bool, int]:
        """This peer's routing answer for ``key``.

        ``(True, ident)`` when the responsible node is known locally,
        ``(False, ident)`` with the best next hop otherwise.
        """
        succ = self.successor
        if succ == self.ident:
            return True, self.ident
        if self.predecessor is not None and self.space.in_segment(
            key, self.predecessor, self.ident
        ):
            return True, self.ident
        if succ not in exclude and self.space.in_segment(key, self.ident, succ):
            return True, succ
        best: int | None = None
        best_offset = -1
        for link in self.routing_links():
            if link in exclude:
                continue
            # strictly preceding the key: link in (self, key)
            offset = self.space.segment_size(self.ident, link)
            if offset < self.space.segment_size(self.ident, key) and offset > best_offset:
                best = link
                best_offset = offset
        if best is None:
            return True, succ if succ not in exclude else self.ident
        return False, best

    def _lookup_process(
        self, key: int, exclude: set[int] | None = None
    ) -> Generator[Any, Any, int]:
        """Iterative lookup; use as ``ident = yield from ...``.

        ``exclude`` seeds the failed-hop set — callers that already
        know certain nodes are dead (e.g. multicast repair) route
        around them from the first hop.
        """
        failed: set[int] = set(exclude) if exclude else set()
        for _ in range(self.config.lookup_retries + 1):
            done, current = self.local_next_hop(key, failed)
            if done:
                return current
            hops = 0
            while hops < self.config.lookup_max_hops:
                try:
                    reply = yield self.rpc(
                        current, "next_hop", {"key": key, "exclude": sorted(failed)}
                    )
                except FutureError:
                    failed.add(current)
                    break
                hops += 1
                if TRACER.enabled:
                    TRACER.emit(
                        self.simulator.now, "proto", "lookup_hop",
                        ident=self.ident, key=key, hop=reply["ident"],
                        done=bool(reply["done"]),
                    )
                if reply["done"]:
                    return reply["ident"]
                nxt = reply["ident"]
                if nxt == current:
                    return current
                current = nxt
        if TRACER.enabled:
            TRACER.emit(
                self.simulator.now, "proto", "lookup_failed",
                ident=self.ident, key=key,
            )
        raise LookupFailed(f"lookup of {key} from {self.ident} failed")

    def _lookup_via(self, bootstrap: int, key: int) -> Generator[Any, Any, int]:
        """Lookup driven through a bootstrap node (used when joining,
        before this peer has any links of its own)."""
        failed: set[int] = set()
        current = bootstrap
        for _ in range(self.config.lookup_retries + 1):
            hops = 0
            while hops < self.config.lookup_max_hops:
                try:
                    reply = yield self.rpc(
                        current, "next_hop", {"key": key, "exclude": sorted(failed)}
                    )
                except FutureError:
                    failed.add(current)
                    current = bootstrap
                    if bootstrap in failed:
                        raise LookupFailed(f"bootstrap {bootstrap} unreachable")
                    break
                hops += 1
                if reply["done"]:
                    return reply["ident"]
                nxt = reply["ident"]
                if nxt == current:
                    return current
                current = nxt
            else:
                break
        raise LookupFailed(f"join lookup of {key} via {bootstrap} failed")

    # -- message dispatch ------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Network entry point: dispatch on message kind."""
        handler = getattr(self, f"_on_{message.kind}", None)
        if handler is None:
            raise ValueError(f"peer {self.ident} got unknown message {message.kind}")
        handler(message)

    def _on_next_hop(self, message: Message) -> None:
        payload = message.payload
        done, ident = self.local_next_hop(payload["key"], set(payload["exclude"]))
        self.network.respond(message, {"done": done, "ident": ident})

    def _on_get_info(self, message: Message) -> None:
        self.network.respond(
            message,
            {"predecessor": self.predecessor, "successors": list(self.successors)},
        )

    def _on_ping(self, message: Message) -> None:
        self.network.respond(message, {})

    def _on_notify(self, message: Message) -> None:
        candidate = message.payload["ident"]
        if candidate == self.ident:
            return
        if self.predecessor is None or self.space.in_segment(
            candidate, self.predecessor, self.ident
        ):
            self.predecessor = candidate
        if self.successor == self.ident:
            # second node of a two-node ring: close the circle
            self.successors = [candidate]

    def _on_leaving(self, message: Message) -> None:
        """Our successor is departing; adopt its successor list."""
        handed = [s for s in message.payload["successors"] if s != self.ident]
        if handed:
            self.successors = handed[: self.config.successor_list_size]

    def _on_leaving_pred(self, message: Message) -> None:
        """Our predecessor is departing; adopt its predecessor."""
        self.predecessor = message.payload["predecessor"]

    # -- multicast plumbing shared by both peers ------------------------------

    def next_message_id(self) -> int:
        """Globally unique multicast message identifier."""
        return next(_message_ids)

    def _deliver_local(
        self, message_id: int, depth: int, parent: int | None = None
    ) -> None:
        """Record a first delivery; ``parent`` is the forwarding peer
        (``None`` at the origin) — the edge of the actual tree."""
        if TRACER.enabled:
            TRACER.emit(
                self.simulator.now, "mc", "deliver",
                mid=message_id, ident=self.ident, depth=depth, parent=parent,
            )
        if self.monitor is not None:
            self.monitor.delivered(message_id, self.ident, depth)

    def _duplicate_local(self, message_id: int, sender: int) -> None:
        """Record a suppressed duplicate copy from ``sender``."""
        if TRACER.enabled:
            TRACER.emit(
                self.simulator.now, "mc", "dup",
                mid=message_id, ident=self.ident, sender=sender,
            )
        if self.monitor is not None:
            self.monitor.duplicate(message_id, self.ident)
