"""Live overlay-maintenance protocols over the simulated network.

The structural overlays in :mod:`repro.overlay` assume a consistent
global membership view; the peers here maintain that view themselves,
the way a deployment would: Chord's join / stabilize / notify /
check-predecessor cycle with successor lists, plus a round-robin
neighbor-table refresher (Chord's ``fix_fingers`` generalized to the
CAM neighbor slots).  "Because CAM-Chord is an extension of Chord, we
use the same Chord protocols to handle member join/departure ...  The
only difference is that our LOOKUP routine replaces the Chord LOOKUP
routine" (Section 3.3) — and Koorde/CAM-Koorde reuse the same
machinery with their own link sets (Section 4.2).

Multicast runs on top of the peers' *local* tables, so staleness under
churn translates directly into measured delivery loss — the resilience
experiments in :mod:`repro.churn` are built on exactly that.
"""

from repro.protocol.config import ProtocolConfig
from repro.protocol.base_peer import BasePeer, DeliveryMonitor
from repro.protocol.cam_chord_peer import CamChordPeer
from repro.protocol.cam_koorde_peer import CamKoordePeer
from repro.protocol.koorde_peer import KoordePeer
from repro.protocol.cluster import Cluster

__all__ = [
    "ProtocolConfig",
    "BasePeer",
    "DeliveryMonitor",
    "CamChordPeer",
    "CamKoordePeer",
    "KoordePeer",
    "Cluster",
]
