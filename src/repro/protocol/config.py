"""Tunables of the maintenance protocol."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProtocolConfig:
    """Timing and sizing knobs shared by every peer.

    Intervals are simulated seconds.  The defaults mirror common Chord
    deployments: stabilization every few seconds, a slower neighbor
    (finger) refresh, and a successor list long enough to survive
    several simultaneous departures (Chord suggests ``O(log n)``).
    """

    stabilize_interval: float = 2.0
    fix_neighbors_interval: float = 1.0
    check_predecessor_interval: float = 5.0
    successor_list_size: int = 8
    rpc_timeout: float = 1.0
    lookup_max_hops: int = 64
    lookup_retries: int = 3
    #: CAM-Chord multicast repair: acknowledge each region handoff and,
    #: when a child never answers, re-resolve the region's owner via a
    #: lookup and resend.  Off by default (the paper's baseline routine
    #: is unacknowledged); the extension recovers subtrees that a stale
    #: neighbor-table entry would silently lose under churn.
    reliable_multicast: bool = False

    def __post_init__(self) -> None:
        if self.stabilize_interval <= 0:
            raise ValueError("stabilize_interval must be positive")
        if self.fix_neighbors_interval <= 0:
            raise ValueError("fix_neighbors_interval must be positive")
        if self.check_predecessor_interval <= 0:
            raise ValueError("check_predecessor_interval must be positive")
        if self.successor_list_size < 1:
            raise ValueError("successor_list_size must be >= 1")
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")
        if self.lookup_max_hops < 1:
            raise ValueError("lookup_max_hops must be >= 1")
        if self.lookup_retries < 0:
            raise ValueError("lookup_retries must be >= 0")
