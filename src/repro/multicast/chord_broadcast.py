"""Broadcast over plain Chord, after El-Ansary et al. (IPTPS'03).

The source hands the message to all of its distinct fingers; each
finger becomes responsible for the segment between itself and the next
finger clockwise.  Every receiver repeats the rule inside its segment.
Delivery is exactly-once because the segments partition the ring.

Contrast with CAM-Chord (Section 3.4 discussion): here the out-degree
of a node near the root is ``O((k - 1) log_k n)`` — independent of the
node's capacity — and the subtree depths under the root range from
O(1) to O(log n): the tree is unbalanced by construction.  CAM-Chord's
routine fixes both properties; this module exists so the evaluation
can quantify the difference.
"""

from __future__ import annotations

from collections import deque

from repro.multicast.delivery import MulticastResult
from repro.overlay.base import Node
from repro.overlay.chord import ChordOverlay


def select_broadcast_children(
    overlay: ChordOverlay, node: Node, limit: int
) -> list[tuple[Node, int]]:
    """Children of ``node`` for the segment ``(node, limit]``.

    All distinct resolved fingers inside the segment become children;
    each child's subsegment ends just before the next child (the last
    child inherits ``limit``).
    """
    space = overlay.space
    snapshot = overlay.snapshot
    if space.segment_size(node.ident, limit) == 0:
        return []
    fingers: list[Node] = []
    seen: set[int] = set()
    for ident in overlay.neighbor_identifiers(node):
        resolved = snapshot.resolve(ident)
        if resolved.ident in seen or resolved.ident == node.ident:
            continue
        if not space.in_segment(resolved.ident, node.ident, limit):
            continue
        seen.add(resolved.ident)
        fingers.append(resolved)
    fingers.sort(key=lambda child: space.segment_size(node.ident, child.ident))
    children: list[tuple[Node, int]] = []
    for index, child in enumerate(fingers):
        if index + 1 < len(fingers):
            sublimit = space.sub(fingers[index + 1].ident, 1)
        else:
            sublimit = limit
        children.append((child, sublimit))
    return children


def chord_broadcast(overlay: ChordOverlay, source: Node) -> MulticastResult:
    """Run a full broadcast from ``source`` and return the implicit tree."""
    result = MulticastResult(source_ident=source.ident)
    initial_limit = overlay.space.sub(source.ident, 1)
    queue: deque[tuple[Node, int]] = deque([(source, initial_limit)])
    while queue:
        node, limit = queue.popleft()
        for child, sublimit in select_broadcast_children(overlay, node, limit):
            result.record_delivery(child.ident, node.ident)
            queue.append((child, sublimit))
    return result
