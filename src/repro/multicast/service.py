"""Multi-group multicast service over one host population.

"A dedicated CAM-Chord or CAM-Koorde overlay network is established
for each multicast group" (Section 2).  A real deployment therefore
runs one overlay *per group* over a shared set of hosts; a host that
belongs to three groups sits on three rings (under three different
SHA-1 identifiers) and its upload bandwidth serves all of them.

:class:`MulticastService` manages that: hosts register once with their
upload bandwidth; groups are created and torn down with their own
system kind and per-link rate; membership is by host name, mapped onto
each group's ring with the Section 2 SHA-1 assignment.  The service
aggregates forwarding load per *host* across groups — the quantity a
deployment actually provisions for.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.capacity.model import CapacityModel
from repro.idspace.hashing import assign_identifiers
from repro.idspace.ring import IdentifierSpace
from repro.multicast.delivery import MulticastResult
from repro.multicast.session import MulticastGroup, SystemKind
from repro.overlay.base import Node, RingSnapshot
from repro.systems import DEFAULT_UNIFORM_FANOUT, SystemDescriptor, resolve


class MulticastService:
    """Per-group overlays over a shared host population."""

    def __init__(self, space_bits: int = 19) -> None:
        self._space = IdentifierSpace(space_bits)
        self._hosts: dict[str, float] = {}
        self._groups: dict[str, MulticastGroup] = {}
        self._members: dict[str, dict[str, int]] = {}
        self._forwarded_kbits: dict[str, float] = {}

    # -- host management -----------------------------------------------------

    def register_host(self, name: str, bandwidth_kbps: float) -> None:
        """Add a host to the population."""
        if name in self._hosts:
            raise ValueError(f"host {name!r} already registered")
        if bandwidth_kbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_kbps}")
        self._hosts[name] = bandwidth_kbps
        self._forwarded_kbits[name] = 0.0

    @property
    def hosts(self) -> Mapping[str, float]:
        """Registered hosts and their upload bandwidths."""
        return dict(self._hosts)

    # -- group management ------------------------------------------------------

    def create_group(
        self,
        group_name: str,
        member_names: Iterable[str],
        kind: "SystemKind | SystemDescriptor | str" = SystemKind.CAM_CHORD,
        per_link_kbps: float = 100.0,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    ) -> MulticastGroup:
        """Establish a dedicated overlay for one group.

        ``kind`` is anything the system registry resolves — a
        :class:`SystemKind`, a descriptor, or a canonical name such as
        ``"cam-chord"``.  Members are mapped onto the group's ring with
        salted SHA-1 of ``"group/host"`` (distinct groups place the
        same host at unrelated identifiers, as independent hash
        functions would).
        """
        if group_name in self._groups:
            raise ValueError(f"group {group_name!r} already exists")
        system = resolve(kind)
        names = list(member_names)
        unknown = [n for n in names if n not in self._hosts]
        if unknown:
            raise KeyError(f"unregistered hosts: {unknown[:5]}")
        if not names:
            raise ValueError("a group needs at least one member")
        mapping = assign_identifiers(
            [f"{group_name}/{name}" for name in names], self._space
        )
        model = CapacityModel(per_link_kbps, minimum=system.min_capacity)
        nodes = []
        by_name: dict[str, int] = {}
        for name in names:
            ident = mapping[f"{group_name}/{name}"]
            by_name[name] = ident
            nodes.append(
                Node(
                    ident=ident,
                    capacity=model.capacity(self._hosts[name]),
                    bandwidth_kbps=self._hosts[name],
                    name=name,
                )
            )
        snapshot = RingSnapshot(self._space, nodes)
        group = MulticastGroup.from_snapshot(system, snapshot, uniform_fanout)
        self._groups[group_name] = group
        self._members[group_name] = by_name
        return group

    def drop_group(self, group_name: str) -> None:
        """Tear down a group's overlay."""
        self._groups.pop(group_name, None)
        self._members.pop(group_name, None)

    def group(self, group_name: str) -> MulticastGroup:
        """Fetch a group's overlay."""
        try:
            return self._groups[group_name]
        except KeyError:
            raise KeyError(f"no group named {group_name!r}") from None

    def groups_of(self, host_name: str) -> list[str]:
        """Every group the host belongs to."""
        return [
            group
            for group, members in self._members.items()
            if host_name in members
        ]

    # -- the service ---------------------------------------------------------------

    def multicast(
        self, group_name: str, source_host: str, message_kbits: float = 1.0
    ) -> MulticastResult:
        """Deliver one message in one group, charging host uplinks."""
        group = self.group(group_name)
        members = self._members[group_name]
        try:
            source_ident = members[source_host]
        except KeyError:
            raise KeyError(
                f"host {source_host!r} is not a member of {group_name!r}"
            ) from None
        result = group.multicast_from(group.snapshot.node_at(source_ident))
        ident_to_name = {ident: name for name, ident in members.items()}
        for ident, count in result.children_counts().items():
            if count:
                self._forwarded_kbits[ident_to_name[ident]] += count * message_kbits
        return result

    def host_load_kbits(self) -> Mapping[str, float]:
        """Total forwarded traffic per host, across every group."""
        return dict(self._forwarded_kbits)

    def busiest_hosts(self, count: int = 5) -> list[tuple[str, float]]:
        """The hosts carrying the most aggregate forwarding work."""
        ranked = sorted(
            self._forwarded_kbits.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:count]
