"""Multi-group multicast service over one host population.

"A dedicated CAM-Chord or CAM-Koorde overlay network is established
for each multicast group" (Section 2).  A real deployment therefore
runs one overlay *per group* over a shared set of hosts; a host that
belongs to three groups sits on three rings (under three different
SHA-1 identifiers) and its upload bandwidth serves all of them.

:class:`MulticastService` manages that: hosts register once with their
upload bandwidth; groups are created and torn down with their own
system kind and per-link rate; membership is by host name, mapped onto
each group's ring with the Section 2 SHA-1 assignment.  Membership is
*mutable*: :meth:`join_group` / :meth:`leave_group` rebuild the
group's snapshot and overlay through the same registry path
:meth:`create_group` uses — identifiers are salted per ``group/host``,
so unchanged members keep their ring positions across rebuilds.  The
service aggregates forwarding load per *host* across groups — the
quantity a deployment actually provisions for.

This layer is synchronous: :meth:`multicast` delivers in one call.
The event-driven face of the same service — interleaved sends on a
simulated clock, sequence numbers, shared-uplink backpressure — is
:class:`repro.multicast.plane.ServicePlane`, which drives exactly the
group-rebuild path defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.capacity.model import CapacityModel
from repro.idspace.hashing import assign_identifiers
from repro.idspace.ring import IdentifierSpace
from repro.multicast.delivery import MulticastResult
from repro.multicast.session import MulticastGroup, SystemKind
from repro.overlay.base import Node, RingSnapshot
from repro.systems import DEFAULT_UNIFORM_FANOUT, SystemDescriptor, resolve


@dataclass(frozen=True)
class GroupConfig:
    """The knobs a group was created with (reused by every rebuild)."""

    system: SystemDescriptor
    per_link_kbps: float
    uniform_fanout: int


class MulticastService:
    """Per-group overlays over a shared host population."""

    def __init__(self, space_bits: int = 19) -> None:
        self._space = IdentifierSpace(space_bits)
        self._hosts: dict[str, float] = {}
        self._groups: dict[str, MulticastGroup] = {}
        self._members: dict[str, dict[str, int]] = {}
        self._configs: dict[str, GroupConfig] = {}
        self._forwarded_kbits: dict[str, float] = {}
        self._epoch_serial = 0
        self._epochs: dict[str, int] = {}

    # -- host management -----------------------------------------------------

    def register_host(self, name: str, bandwidth_kbps: float) -> None:
        """Add a host to the population."""
        if name in self._hosts:
            raise ValueError(f"host {name!r} already registered")
        if bandwidth_kbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_kbps}")
        self._hosts[name] = bandwidth_kbps
        self._forwarded_kbits[name] = 0.0

    @property
    def hosts(self) -> Mapping[str, float]:
        """Registered hosts and their upload bandwidths."""
        return dict(self._hosts)

    # -- group management ------------------------------------------------------

    def _build_group(self, group_name: str, names: list[str]) -> MulticastGroup:
        """One snapshot + overlay for ``names``, through the registry.

        Members are mapped onto the group's ring with salted SHA-1 of
        ``"group/host"`` — deterministic per pair, so a rebuild after a
        join or leave keeps every unchanged member at its identifier.
        """
        config = self._configs[group_name]
        mapping = assign_identifiers(
            [f"{group_name}/{name}" for name in names], self._space
        )
        model = CapacityModel(
            config.per_link_kbps, minimum=config.system.min_capacity
        )
        nodes = []
        by_name: dict[str, int] = {}
        for name in names:
            ident = mapping[f"{group_name}/{name}"]
            by_name[name] = ident
            nodes.append(
                Node(
                    ident=ident,
                    capacity=model.capacity(self._hosts[name]),
                    bandwidth_kbps=self._hosts[name],
                    name=name,
                )
            )
        snapshot = RingSnapshot(self._space, nodes)
        group = MulticastGroup.from_snapshot(
            config.system, snapshot, config.uniform_fanout
        )
        self._groups[group_name] = group
        self._members[group_name] = by_name
        # every overlay (re)build opens a new membership epoch; the
        # serial is service-global so a dropped-and-recreated group
        # name can never alias a stale epoch
        self._epoch_serial += 1
        self._epochs[group_name] = self._epoch_serial
        return group

    def create_group(
        self,
        group_name: str,
        member_names: Iterable[str],
        kind: "SystemKind | SystemDescriptor | str" = SystemKind.CAM_CHORD,
        per_link_kbps: float = 100.0,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    ) -> MulticastGroup:
        """Establish a dedicated overlay for one group.

        ``kind`` is anything the system registry resolves — a
        :class:`SystemKind`, a descriptor, or a canonical name such as
        ``"cam-chord"``.  Members are mapped onto the group's ring with
        salted SHA-1 of ``"group/host"`` (distinct groups place the
        same host at unrelated identifiers, as independent hash
        functions would).
        """
        if group_name in self._groups:
            raise ValueError(f"group {group_name!r} already exists")
        names = list(member_names)
        unknown = [n for n in names if n not in self._hosts]
        if unknown:
            raise KeyError(f"unregistered hosts: {unknown[:5]}")
        if not names:
            raise ValueError("a group needs at least one member")
        self._configs[group_name] = GroupConfig(
            system=resolve(kind),
            per_link_kbps=per_link_kbps,
            uniform_fanout=uniform_fanout,
        )
        try:
            return self._build_group(group_name, names)
        except BaseException:
            self._configs.pop(group_name, None)
            raise

    def join_group(self, group_name: str, host_name: str) -> MulticastGroup:
        """Admit a registered host into an existing group.

        The group's snapshot and overlay are rebuilt through the same
        registry path :meth:`create_group` uses; every prior member
        keeps its identifier (placement is salted per ``group/host``).
        Returns the rebuilt group.
        """
        members = self._membership(group_name)
        if host_name not in self._hosts:
            raise KeyError(f"unregistered hosts: ['{host_name}']")
        if host_name in members:
            raise ValueError(
                f"host {host_name!r} is already a member of {group_name!r}"
            )
        return self._build_group(group_name, [*members, host_name])

    def leave_group(self, group_name: str, host_name: str) -> MulticastGroup:
        """Remove a member and rebuild the group's overlay.

        A group keeps at least one member; dropping the last one is
        :meth:`drop_group`'s job.  Returns the rebuilt group.
        """
        members = self._membership(group_name)
        if host_name not in members:
            raise KeyError(
                f"host {host_name!r} is not a member of {group_name!r}"
            )
        remaining = [name for name in members if name != host_name]
        if not remaining:
            raise ValueError(
                f"cannot remove the last member of {group_name!r}; "
                "use drop_group to tear the group down"
            )
        return self._build_group(group_name, remaining)

    def drop_group(self, group_name: str) -> None:
        """Tear down a group's overlay.

        Raises :class:`KeyError` for unknown names, exactly like
        :meth:`group` — a silent no-op here used to hide caller typos.
        The group's past forwarding traffic **stays** in
        :meth:`host_load_kbits`: the ledger is a historical account of
        what each uplink actually carried, not a view of live groups.
        """
        if group_name not in self._groups:
            raise KeyError(f"no group named {group_name!r}")
        del self._groups[group_name]
        del self._members[group_name]
        del self._configs[group_name]
        del self._epochs[group_name]

    def group(self, group_name: str) -> MulticastGroup:
        """Fetch a group's overlay."""
        try:
            return self._groups[group_name]
        except KeyError:
            raise KeyError(f"no group named {group_name!r}") from None

    def _membership(self, group_name: str) -> dict[str, int]:
        try:
            return self._members[group_name]
        except KeyError:
            raise KeyError(f"no group named {group_name!r}") from None

    def membership_epoch(self, group_name: str) -> int:
        """The group's current membership epoch.

        Strictly increases on every overlay rebuild — create, join and
        leave all bump it — so *frozen membership between epochs* is a
        checkable invariant: any state derived from the group's
        snapshot (trees, dissemination schedules) is valid exactly as
        long as the epoch it was derived under is still current.
        """
        try:
            return self._epochs[group_name]
        except KeyError:
            raise KeyError(f"no group named {group_name!r}") from None

    def members_of(self, group_name: str) -> list[str]:
        """The group's member host names, in join order."""
        return list(self._membership(group_name))

    def member_ident(self, group_name: str, host_name: str) -> int:
        """The ring identifier a host holds inside one group."""
        members = self._membership(group_name)
        try:
            return members[host_name]
        except KeyError:
            raise KeyError(
                f"host {host_name!r} is not a member of {group_name!r}"
            ) from None

    def groups_of(self, host_name: str) -> list[str]:
        """Every group the host belongs to."""
        return [
            group
            for group, members in self._members.items()
            if host_name in members
        ]

    # -- the service ---------------------------------------------------------------

    def multicast(
        self, group_name: str, source_host: str, message_kbits: float = 1.0
    ) -> MulticastResult:
        """Deliver one message in one group, charging host uplinks."""
        group = self.group(group_name)
        source_ident = self.member_ident(group_name, source_host)
        result = group.multicast_from(group.snapshot.node_at(source_ident))
        self.charge_tree(group_name, result, message_kbits)
        return result

    def charge_tree(
        self, group_name: str, result: MulticastResult, message_kbits: float
    ) -> None:
        """Charge one dissemination tree's forwarding to host uplinks.

        Each internal node pays ``children × message_kbits`` — the
        Section 5.1 forwarding-load accounting, attributed to the host
        behind the ring identifier.  Exposed so the event-driven plane
        (which times deliveries instead of completing them in one call)
        charges the same ledger.
        """
        members = self._membership(group_name)
        ident_to_name = {ident: name for name, ident in members.items()}
        for ident, count in result.children_counts().items():
            if count:
                self._forwarded_kbits[ident_to_name[ident]] += (
                    count * message_kbits
                )

    def host_load_kbits(self) -> Mapping[str, float]:
        """Total forwarded traffic per host, across every group.

        The ledger is cumulative for the service's lifetime: traffic a
        host forwarded for a group that was later dropped stays counted
        (it really did cross the uplink).
        """
        return dict(self._forwarded_kbits)

    def busiest_hosts(self, count: int = 5) -> list[tuple[str, float]]:
        """The hosts carrying the most aggregate forwarding work."""
        ranked = sorted(
            self._forwarded_kbits.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:count]
