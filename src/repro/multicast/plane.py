"""Event-driven multi-group service plane.

:class:`~repro.multicast.service.MulticastService` answers "who
forwards to whom" one blocking call at a time.  Production traffic is
different: thousands of groups disseminate *concurrently*, members
join and leave mid-stream, and every host's single physical uplink is
shared by all the groups it sits in.  :class:`ServicePlane` is that
regime as a deterministic discrete-event system:

* **Interleaved sends on one clock.**  Every send freezes the group's
  membership and implicit tree at origin time, then plays the tree out
  hop by hop on a :class:`~repro.sim.engine.Simulator`: a node forwards
  the message to each child only after the full message has arrived
  (store-and-forward at message granularity — packet pipelining inside
  one tree is :mod:`repro.sim.transfer`'s business) and only when its
  host's uplink frees up.
* **Shared-uplink backpressure.**  All transmissions a host makes — in
  any group — reserve slots from one
  :class:`~repro.sim.transfer.UplinkBudget` ledger keyed by host name.
  A saturated host defers its forwarding slots; the plane counts those
  deferrals and the queue depth they imply, per group.
* **Sequencing.**  Each group stamps sends with a monotonically
  increasing sequence number; each member carries a delivery cursor
  (:class:`SequenceLedger`) that detects duplicates on arrival and
  names every gap at audit time.  A member joining mid-stream is
  obligated from the next sequence; a leaver stays obligated for every
  send originated while it was a member — exactly the frozen send-time
  membership the trace layer's ``mc.origin`` events record.
* **Mid-stream membership.**  ``create_group`` / ``join`` / ``leave``
  are admitted *during* active dissemination: the group's snapshot and
  overlay rebuild through the registry path
  (:meth:`MulticastService.join_group`); in-flight sends keep their
  frozen trees and finish against their origin-time membership.

Everything is deterministic: ties on the event queue break by
insertion order and the plane draws no randomness, so a replayed
workload produces byte-identical reports.

**Epoch-cached schedules.**  Between two membership events a group's
overlay is frozen, so every send from one source walks the *same* tree
with the *same* per-hop serialize/latency terms.  The plane exploits
that: per (group, membership epoch) it keeps a schedule context, and
per source inside it a :class:`_SendTemplate` — the frozen adjacency
with latencies and uplink bandwidths precomputed.  A cached send skips
the tree extraction entirely, and instead of one engine callback per
delivery, deliveries sit in a plane-level pending heap that a single
*wavefront* event drains in batches (:meth:`ServicePlane._pump`),
falling back to event granularity exactly where a foreign event — a
membership change, a scheduled send, a bounded ``run(until)`` —
interleaves.  Uplink reservations, tie-breaking and every float
expression are replayed identically, so receipts, audits and ``mc.*``
trace streams are byte-identical to the uncached path (escape hatch:
``REPRO_NO_SCHED_CACHE=1`` or ``schedule_cache=False``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro import perf
from repro.multicast.service import MulticastService
from repro.sim.engine import EventHandle, Future, Simulator
from repro.sim.transfer import UplinkBudget, delivery_timeline
from repro.systems import DEFAULT_UNIFORM_FANOUT
from repro.trace.tracer import TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.multicast.session import SystemKind
    from repro.systems import SystemDescriptor
    from repro.workloads.groups import ServiceEvent

#: per-hop one-way latency in seconds: (parent_host, child_host) -> s
HostLatency = Callable[[str, str], float]


# -- sequencing -------------------------------------------------------------


@dataclass
class _Cursor:
    """One member's delivery obligations and progress in one group."""

    first: int  # first sequence the member must receive
    last: int | None = None  # last obligated sequence (None = still member)
    contiguous: int = 0  # highest n with first..n all delivered
    ahead: set[int] = field(default_factory=set)  # delivered out of order
    dups: int = 0

    def __post_init__(self) -> None:
        self.contiguous = self.first - 1


@dataclass(frozen=True)
class SequenceAudit:
    """What the cursors say once the plane has quiesced.

    ``gaps`` maps each member with missing sequences to the exact
    sequence numbers it never received; ``dups`` / ``unexpected`` count
    repeated and never-obligated deliveries.  A healthy plane audits to
    ``clean``.
    """

    gaps: Mapping[str, tuple[int, ...]]
    dups: int
    unexpected: int

    @property
    def clean(self) -> bool:
        return not self.gaps and self.dups == 0 and self.unexpected == 0


class SequenceLedger:
    """Per-member delivery cursors for one group's sequence space.

    The ledger is pure bookkeeping — no clock, no randomness — so the
    gap/duplicate semantics are testable in isolation and the plane
    simply feeds it ``record`` calls as deliveries land.  Sequences in
    a group count up from 1; cursors compress the delivered set into a
    contiguous prefix plus an out-of-order overflow, so overlapping
    sends that complete out of order cost O(overlap) not O(history).

    A member that leaves and later rejoins gets a fresh *stint*: each
    stint is its own cursor with its own obligation range (stints never
    overlap — a leave freezes obligations at the last issued sequence
    and a rejoin starts at the next one), and the audit merges every
    stint's gaps per member.
    """

    def __init__(self) -> None:
        self._cursors: dict[str, list[_Cursor]] = {}
        self._issued = 0  # highest sequence number originated so far
        self._unexpected = 0

    @property
    def issued(self) -> int:
        """The highest sequence number originated in the group."""
        return self._issued

    def issue(self) -> int:
        """Stamp the next send: sequence numbers are 1, 2, 3, ..."""
        self._issued += 1
        return self._issued

    def admit(self, member: str, first_seq: int | None = None) -> None:
        """Start a member's (next) stint, obligated from ``first_seq``
        on (default: the next sequence to be issued)."""
        stints = self._cursors.setdefault(member, [])
        if stints and stints[-1].last is None:
            raise ValueError(f"member {member!r} already tracked")
        first = first_seq if first_seq is not None else self._issued + 1
        stints.append(_Cursor(first=first))

    def retire(self, member: str, last_seq: int | None = None) -> None:
        """Freeze a member's obligations at ``last_seq`` (default: the
        last sequence issued).  The cursor stays for the final audit —
        a leaver remains accountable for sends it was a member of."""
        stints = self._cursors.get(member)
        if not stints or stints[-1].last is not None:
            raise ValueError(f"member {member!r} is not actively tracked")
        stints[-1].last = last_seq if last_seq is not None else self._issued

    def record(self, member: str, seq: int) -> str:
        """Account one delivery; returns ``"ok"``, ``"dup"`` or
        ``"unexpected"`` (delivery outside the member's obligations).
        Stint ranges never overlap, so at most one cursor matches."""
        cursor = None
        for stint in reversed(self._cursors.get(member, ())):
            if seq >= stint.first and (
                stint.last is None or seq <= stint.last
            ):
                cursor = stint
                break
        if cursor is None:
            self._unexpected += 1
            return "unexpected"
        if seq <= cursor.contiguous or seq in cursor.ahead:
            cursor.dups += 1
            return "dup"
        cursor.ahead.add(seq)
        while cursor.contiguous + 1 in cursor.ahead:
            cursor.contiguous += 1
            cursor.ahead.remove(cursor.contiguous)
        return "ok"

    def members(self) -> list[str]:
        """Every tracked member, active and retired."""
        return list(self._cursors)

    def retire_all(self) -> None:
        """Freeze every still-active cursor (group teardown)."""
        for stints in self._cursors.values():
            if stints and stints[-1].last is None:
                stints[-1].last = self._issued

    def audit(self) -> SequenceAudit:
        """Gaps/dups across all cursors against their obligations."""
        gaps: dict[str, tuple[int, ...]] = {}
        dups = 0
        for member, stints in sorted(self._cursors.items()):
            missing: list[int] = []
            for cursor in stints:
                last = cursor.last if cursor.last is not None else self._issued
                missing.extend(
                    seq
                    for seq in range(cursor.contiguous + 1, last + 1)
                    if seq not in cursor.ahead
                )
                dups += cursor.dups
            if missing:
                gaps[member] = tuple(missing)
        return SequenceAudit(gaps=gaps, dups=dups, unexpected=self._unexpected)


# -- send bookkeeping -------------------------------------------------------


class SendReceipt:
    """One scheduled send: its frozen context and live progress.

    ``members`` is the frozen send-time membership (host names) — the
    set the completeness oracle judges.  ``delivered`` fills in as the
    dissemination plays out; ``completion`` resolves with the receipt
    once every frozen member has its copy.
    """

    __slots__ = (
        "group",
        "seq",
        "mid",
        "source",
        "message_kbits",
        "origin_time",
        "members",
        "delivered",
        "completion",
    )

    def __init__(
        self,
        group: str,
        seq: int,
        mid: int,
        source: str,
        message_kbits: float,
        origin_time: float,
        members: tuple[str, ...],
    ) -> None:
        self.group = group
        self.seq = seq
        self.mid = mid
        self.source = source
        self.message_kbits = message_kbits
        self.origin_time = origin_time
        self.members = members
        #: host name -> delivery time (the source maps to origin_time)
        self.delivered: dict[str, float] = {source: origin_time}
        self.completion = Future()

    @property
    def complete(self) -> bool:
        return self.completion.done

    def verify_complete(self) -> None:
        """The completeness oracle: every frozen send-time member got
        its copy (raises with the missing hosts otherwise)."""
        missing = [host for host in self.members if host not in self.delivered]
        if missing:
            raise AssertionError(
                f"send {self.group}#{self.seq}: {len(missing)} frozen "
                f"members never delivered, e.g. {missing[:5]}"
            )


class _SendState:
    """Internal per-send dissemination state (frozen at origin)."""

    __slots__ = ("receipt", "children", "host_of", "depth", "remaining")

    def __init__(
        self,
        receipt: SendReceipt,
        children: dict[int, list[int]],
        host_of: dict[int, str],
        depth: dict[int, int],
    ) -> None:
        self.receipt = receipt
        self.children = children
        self.host_of = host_of
        self.depth = depth
        self.remaining = len(host_of) - 1  # everyone but the source


class _EpochSchedule:
    """Everything derivable from one (group, membership epoch).

    Valid exactly while :meth:`MulticastService.membership_epoch` still
    returns ``epoch`` — join/leave/drop bump the epoch and the plane
    discards the context (counted as schedule-cache invalidations).
    The trace lists are shared across sends on purpose: the uncached
    path rebuilds them with identical contents every send, so reusing
    one object keeps the emitted JSON byte-identical.
    """

    __slots__ = (
        "epoch",
        "member_names",
        "name_to_ident",
        "host_of",
        "system_name",
        "space_bits",
        "trace_members",
        "trace_capacities",
        "templates",
    )

    def __init__(
        self,
        epoch: int,
        member_names: tuple[str, ...],
        name_to_ident: dict[str, int],
        host_of: dict[int, str],
        system_name: str,
        space_bits: int,
        trace_members: list[int],
        trace_capacities: list[list[float]],
    ) -> None:
        self.epoch = epoch
        self.member_names = member_names
        self.name_to_ident = name_to_ident
        self.host_of = host_of
        self.system_name = system_name
        self.space_bits = space_bits
        self.trace_members = trace_members
        self.trace_capacities = trace_capacities
        self.templates: dict[int, _SendTemplate] = {}


class _SendTemplate:
    """One source's frozen dissemination schedule within an epoch.

    ``children_of`` pairs each child with its precomputed hop latency;
    ``bandwidth_of`` caches internal nodes' uplink rates (the legacy
    path re-reads ``service.hosts`` — a dict copy — per forward).  The
    charges tuple preserves :meth:`children_counts` iteration order so
    replaying it accumulates the forwarding ledger in the exact float
    order :meth:`MulticastService.charge_tree` would.
    """

    __slots__ = (
        "source_ident",
        "tree",
        "messages_sent",
        "children_of",
        "bandwidth_of",
        "depth",
        "charges",
        "member_count",
    )

    def __init__(
        self,
        source_ident: int,
        tree: Any,
        messages_sent: int,
        children_of: dict[int, tuple[tuple[int, float], ...]],
        bandwidth_of: dict[int, float],
        depth: dict[int, int],
        charges: tuple[tuple[str, int], ...],
        member_count: int,
    ) -> None:
        self.source_ident = source_ident
        self.tree = tree
        self.messages_sent = messages_sent
        self.children_of = children_of
        self.bandwidth_of = bandwidth_of
        self.depth = depth
        self.charges = charges
        self.member_count = member_count


class _CachedSend:
    """Per-send progress for a template-driven dissemination."""

    __slots__ = ("receipt", "context", "template", "remaining")

    def __init__(
        self,
        receipt: SendReceipt,
        context: _EpochSchedule,
        template: _SendTemplate,
    ) -> None:
        self.receipt = receipt
        self.context = context
        self.template = template
        self.remaining = template.member_count - 1  # everyone but the source


def _forward_steps_from_parent(tree: Any) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """(parent, children) steps for trees without ``forward_steps``
    (the legacy dict-based :class:`MulticastResult`), grouped in the
    same first-delivery order the kernel's flat arrays produce."""
    children: dict[int, list[int]] = {}
    for child, parent in tree.parent.items():
        if parent is not None:
            children.setdefault(parent, []).append(child)
    return tuple(
        (parent, tuple(kids)) for parent, kids in children.items()
    )


@dataclass
class GroupStats:
    """Per-group counters the plane reports."""

    created_at: float
    sends: int = 0
    deliveries: int = 0
    delivered_kbits: float = 0.0
    deferrals: int = 0
    dups: int = 0
    queue_depth: int = 0  # transmissions scheduled but not yet landed
    max_queue_depth: int = 0
    first_origin: float | None = None
    last_delivery: float | None = None
    closed: bool = False

    def goodput_dps(self) -> float:
        """Sustained deliveries per simulated second over the group's
        active span (first origin to last delivery)."""
        if self.deliveries == 0 or self.first_origin is None:
            return 0.0
        span = (self.last_delivery or self.first_origin) - self.first_origin
        if span <= 0.0:
            return float(self.deliveries)
        return self.deliveries / span

    def goodput_kbps(self) -> float:
        """Sustained delivered kilobits per simulated second."""
        if self.delivered_kbits == 0.0 or self.first_origin is None:
            return 0.0
        span = (self.last_delivery or self.first_origin) - self.first_origin
        if span <= 0.0:
            return self.delivered_kbits
        return self.delivered_kbits / span


@dataclass(frozen=True)
class PlaneReport:
    """The plane's rolled-up answer: one row per group, plus totals.

    ``rows`` are JSON-safe dicts (the CI service-smoke job uploads the
    rendered table as its goodput artifact).
    """

    time: float
    rows: tuple[dict[str, Any], ...]
    total_deliveries: int
    total_deferrals: int
    #: wall-clock seconds the plane spent originating and draining —
    #: a measurement, not part of the deterministic outcome, so it is
    #: excluded from report equality (replays compare equal even
    #: though their wall clocks differ)
    wall_s: float = field(default=0.0, compare=False)

    def deliveries_per_sec(self) -> float:
        """Aggregate sustained deliveries per *simulated* second —
        the provisioning-facing rate (how fast the modeled system
        disseminates)."""
        if self.time <= 0.0:
            return float(self.total_deliveries)
        return self.total_deliveries / self.time

    def wall_deliveries_per_sec(self) -> float:
        """Deliveries per *wall-clock* second — the harness-facing
        rate (how fast the simulation itself executes; what the
        epoch-cached schedule path accelerates)."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.total_deliveries / self.wall_s

    def render(self) -> str:
        header = (
            f"{'group':16s} {'members':>7s} {'sends':>6s} {'delivs':>7s} "
            f"{'goodput/s':>10s} {'kbps':>9s} {'defer':>6s} {'maxq':>5s}"
        )
        lines = [header]
        for row in self.rows:
            lines.append(
                f"{row['group']:16s} {row['members']:7d} {row['sends']:6d} "
                f"{row['deliveries']:7d} {row['goodput_dps']:10.2f} "
                f"{row['goodput_kbps']:9.1f} {row['deferrals']:6d} "
                f"{row['max_queue_depth']:5d}"
            )
        lines.append(
            f"# t={self.time:.2f}s groups={len(self.rows)} "
            f"deliveries={self.total_deliveries} "
            f"({self.deliveries_per_sec():.1f}/s sim, "
            f"{self.wall_deliveries_per_sec():.0f}/s wall) "
            f"deferrals={self.total_deferrals}"
        )
        return "\n".join(lines)


# -- the plane --------------------------------------------------------------


class ServicePlane:
    """Batched, interleaved multi-group dissemination on one clock.

    Wraps (or owns) a :class:`MulticastService` — every overlay build
    and rebuild goes through the service's registry path, and every
    completed transmission charges the service's per-host forwarding
    ledger, so the synchronous API's accounting invariants hold
    unchanged under the event-driven plane.
    """

    def __init__(
        self,
        service: MulticastService | None = None,
        simulator: Simulator | None = None,
        space_bits: int = 19,
        hop_latency: float | HostLatency = 0.0,
        schedule_cache: bool | None = None,
    ) -> None:
        self.service = (
            service if service is not None else MulticastService(space_bits)
        )
        self.simulator = simulator if simulator is not None else Simulator()
        self.budget = UplinkBudget()
        self._latency: HostLatency = (
            hop_latency
            if callable(hop_latency)
            else (lambda a, b, _s=float(hop_latency): _s)
        )
        self._ledgers: dict[str, SequenceLedger] = {}
        self._stats: dict[str, GroupStats] = {}
        self._active: dict[str, bool] = {}
        self._next_mid = 1
        self._receipts: list[SendReceipt] = []
        # epoch-cached dissemination schedules (None = honor the
        # REPRO_NO_SCHED_CACHE escape hatch, the equivalence tests'
        # lever for running the uncached reference path)
        self._schedule_cache = (
            schedule_cache
            if schedule_cache is not None
            else not os.environ.get("REPRO_NO_SCHED_CACHE")
        )
        self._contexts: dict[str, _EpochSchedule] = {}
        # pending deliveries: (time, plane seq, state, child, parent) —
        # the plane seq replays the engine's insertion-order tie-break
        self._pending: list[tuple[float, int, _CachedSend, int, int]] = []
        self._pending_seq = 0
        self._wavefront: EventHandle | None = None
        self._wavefront_time: float | None = None
        self._wall_s = 0.0
        self._wall_depth = 0

    # -- membership lifecycle (admissible mid-stream) -------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.simulator.now

    def register_host(self, name: str, bandwidth_kbps: float) -> None:
        """Add a host to the shared population (delegates)."""
        self.service.register_host(name, bandwidth_kbps)

    def create_group(
        self,
        group_name: str,
        member_names: Iterable[str],
        kind: "SystemKind | SystemDescriptor | str | None" = None,
        per_link_kbps: float = 100.0,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    ) -> None:
        """Establish a group (usable immediately, even mid-run)."""
        kwargs: dict[str, Any] = {
            "per_link_kbps": per_link_kbps,
            "uniform_fanout": uniform_fanout,
        }
        if kind is not None:
            kwargs["kind"] = kind
        self.service.create_group(group_name, member_names, **kwargs)
        ledger = SequenceLedger()
        for member in self.service.members_of(group_name):
            ledger.admit(member)
        self._ledgers[group_name] = ledger
        self._stats[group_name] = GroupStats(created_at=self.now)
        self._active[group_name] = True

    def join(self, group_name: str, host_name: str) -> None:
        """Admit a host mid-stream: the overlay rebuilds through the
        registry path; in-flight sends keep their frozen trees.  The
        joiner is obligated from the *next* sequence number."""
        self.service.join_group(group_name, host_name)
        self._ledgers[group_name].admit(host_name)

    def leave(self, group_name: str, host_name: str) -> None:
        """Remove a host mid-stream.  The leaver stays obligated for
        every sequence originated while it was a member — including
        in-flight sends, which deliver against frozen membership."""
        self.service.leave_group(group_name, host_name)
        self._ledgers[group_name].retire(host_name)

    def drop_group(self, group_name: str) -> None:
        """Tear a group down.  In-flight sends finish (frozen trees);
        the ledger and stats stay readable for the final audit."""
        self.service.drop_group(group_name)
        self._ledgers[group_name].retire_all()
        self._stats[group_name].closed = True
        self._active[group_name] = False
        context = self._contexts.pop(group_name, None)
        if context is not None:
            perf.COUNTERS.schedule_cache_invalidations += len(
                context.templates
            )

    # -- sending --------------------------------------------------------

    def send(
        self, group_name: str, source_host: str, message_kbits: float = 1.0
    ) -> SendReceipt:
        """Originate one message *now*: freeze membership and tree,
        stamp the next sequence number, and schedule the hops."""
        started = perf_counter()
        self._wall_depth += 1
        try:
            if not self._active.get(group_name, False):
                raise KeyError(f"no group named {group_name!r}")
            if message_kbits <= 0:
                raise ValueError(
                    f"message size must be positive, got {message_kbits}"
                )
            if self._schedule_cache:
                return self._send_cached(
                    group_name, source_host, message_kbits
                )
            return self._send_uncached(group_name, source_host, message_kbits)
        finally:
            self._wall_depth -= 1
            if self._wall_depth == 0:
                self._wall_s += perf_counter() - started

    def _send_uncached(
        self, group_name: str, source_host: str, message_kbits: float
    ) -> SendReceipt:
        """The reference path: extract the tree and schedule one engine
        event per hop.  Byte-for-byte the behavior the epoch cache must
        reproduce — keep the two in lockstep."""
        group = self.service.group(group_name)
        source_ident = self.service.member_ident(group_name, source_host)
        result = group.multicast_from(group.snapshot.node_at(source_ident))
        self.service.charge_tree(group_name, result, message_kbits)

        # freeze: children adjacency in delivery order, ident -> host
        members = {
            name: self.service.member_ident(group_name, name)
            for name in self.service.members_of(group_name)
        }
        host_of = {ident: name for name, ident in members.items()}
        children: dict[int, list[int]] = {}
        for child, parent in result.parent.items():
            if parent is not None:
                children.setdefault(parent, []).append(child)

        ledger = self._ledgers[group_name]
        seq = ledger.issue()
        mid = self._next_mid
        self._next_mid += 1
        stats = self._stats[group_name]
        stats.sends += 1
        if stats.first_origin is None:
            stats.first_origin = self.now
        receipt = SendReceipt(
            group=group_name,
            seq=seq,
            mid=mid,
            source=source_host,
            message_kbits=message_kbits,
            origin_time=self.now,
            members=tuple(members),
        )
        self._receipts.append(receipt)
        state = _SendState(receipt, children, host_of, dict(result.depth))
        if TRACER.enabled:
            idents = sorted(host_of)
            TRACER.emit(
                self.now, "mc", "origin",
                mid=mid, source=source_ident,
                system=group.system.name,
                bits=group.snapshot.space.bits,
                members=idents,
                capacities=[
                    [ident, group.snapshot.node_at(ident).capacity]
                    for ident in idents
                ],
                group=group_name, seq=seq,
            )
            # the origin's own copy, parent=None — same convention as
            # the protocol peers' local delivery record
            TRACER.emit(
                self.now, "mc", "deliver",
                mid=mid, ident=source_ident, depth=0, parent=None,
                group=group_name, seq=seq,
            )
        ledger.record(source_host, seq)
        if state.remaining == 0:
            receipt.completion.resolve(receipt)
        else:
            self._forward(state, source_ident)
        return receipt

    def send_later(
        self,
        delay: float,
        group_name: str,
        source_host: str,
        message_kbits: float = 1.0,
    ) -> Future:
        """Schedule a send for ``now + delay``; membership and tree
        freeze at *fire* time, not call time.  Resolves with the
        :class:`SendReceipt` once the send is originated."""
        placed = Future()
        self.simulator.call_later(
            delay,
            lambda: placed.resolve(
                self.send(group_name, source_host, message_kbits)
            ),
        )
        return placed

    def _forward(self, state: _SendState, ident: int) -> None:
        """Node ``ident`` holds the full message: queue one uplink slot
        per child on its host's shared budget."""
        kids = state.children.get(ident)
        if not kids:
            return
        host = state.host_of[ident]
        bandwidth = self.service.hosts[host]
        serialize = state.receipt.message_kbits / bandwidth
        stats = self._stats[state.receipt.group]
        now = self.now
        for child in kids:
            start, done = self.budget.reserve(host, now, serialize)
            if start > now:
                stats.deferrals += 1
            stats.queue_depth += 1
            stats.max_queue_depth = max(
                stats.max_queue_depth, stats.queue_depth
            )
            arrival = done + self._latency(host, state.host_of[child])
            self.simulator.call_at(
                arrival, lambda c=child, i=ident: self._deliver(state, c, i)
            )

    def _deliver(self, state: _SendState, ident: int, parent: int) -> None:
        """The message fully arrived at ``ident``: account and fan on."""
        receipt = state.receipt
        host = state.host_of[ident]
        stats = self._stats[receipt.group]
        stats.queue_depth -= 1
        verdict = self._ledgers[receipt.group].record(host, receipt.seq)
        now = self.now
        if verdict == "dup":
            stats.dups += 1
            if TRACER.enabled:
                TRACER.emit(
                    now, "mc", "dup",
                    mid=receipt.mid, ident=ident, sender=parent,
                    group=receipt.group, seq=receipt.seq,
                )
            return
        stats.deliveries += 1
        stats.delivered_kbits += receipt.message_kbits
        stats.last_delivery = now
        receipt.delivered[host] = now
        if TRACER.enabled:
            TRACER.emit(
                now, "mc", "deliver",
                mid=receipt.mid, ident=ident,
                depth=state.depth.get(ident, 0), parent=parent,
                group=receipt.group, seq=receipt.seq,
            )
        state.remaining -= 1
        if state.remaining == 0:
            receipt.completion.resolve(receipt)
        self._forward(state, ident)

    # -- epoch-cached schedules -----------------------------------------

    def _send_cached(
        self, group_name: str, source_host: str, message_kbits: float
    ) -> SendReceipt:
        """Originate from a cached (epoch, source) schedule template.

        Mirrors :meth:`_send_uncached` exactly — same accounting order,
        same trace events, same float expressions — except the tree,
        adjacency and trace scaffolding come from the cache and the
        hops go to the plane's pending heap instead of one engine
        event each.
        """
        context = self._epoch_context(group_name)
        source_ident = context.name_to_ident.get(source_host)
        if source_ident is None:
            raise KeyError(
                f"host {source_host!r} is not a member of {group_name!r}"
            )
        template = context.templates.get(source_ident)
        if template is None:
            perf.COUNTERS.schedule_cache_misses += 1
            template = self._build_template(context, group_name, source_ident)
            context.templates[source_ident] = template
        else:
            perf.COUNTERS.schedule_cache_hits += 1
            if TRACER.enabled:
                # the uncached path extracts (and trace-summarizes) a
                # tree on every send; replay the frozen tree's summary
                # so the traced stream is independent of caching
                TRACER.emit(
                    0.0, "mc", "tree",
                    source=source_ident, edges=template.messages_sent,
                )
        forwarded = self.service._forwarded_kbits
        for name, count in template.charges:
            forwarded[name] += count * message_kbits

        ledger = self._ledgers[group_name]
        seq = ledger.issue()
        mid = self._next_mid
        self._next_mid += 1
        stats = self._stats[group_name]
        stats.sends += 1
        if stats.first_origin is None:
            stats.first_origin = self.now
        receipt = SendReceipt(
            group=group_name,
            seq=seq,
            mid=mid,
            source=source_host,
            message_kbits=message_kbits,
            origin_time=self.now,
            members=context.member_names,
        )
        self._receipts.append(receipt)
        state = _CachedSend(receipt, context, template)
        if TRACER.enabled:
            TRACER.emit(
                self.now, "mc", "origin",
                mid=mid, source=source_ident,
                system=context.system_name,
                bits=context.space_bits,
                members=context.trace_members,
                capacities=context.trace_capacities,
                group=group_name, seq=seq,
            )
            TRACER.emit(
                self.now, "mc", "deliver",
                mid=mid, ident=source_ident, depth=0, parent=None,
                group=group_name, seq=seq,
            )
        ledger.record(source_host, seq)
        if state.remaining == 0:
            receipt.completion.resolve(receipt)
        else:
            self._reserve_children(state, source_ident, self.now)
            self._arm_wavefront()
        return receipt

    def _epoch_context(self, group_name: str) -> _EpochSchedule:
        """The group's schedule context for its *current* epoch,
        rebuilding (and invalidating stale templates) after any
        membership change."""
        epoch = self.service.membership_epoch(group_name)
        context = self._contexts.get(group_name)
        if context is not None:
            if context.epoch == epoch:
                return context
            perf.COUNTERS.schedule_cache_invalidations += len(
                context.templates
            )
        group = self.service.group(group_name)
        members = {
            name: self.service.member_ident(group_name, name)
            for name in self.service.members_of(group_name)
        }
        host_of = {ident: name for name, ident in members.items()}
        idents = sorted(host_of)
        snapshot = group.snapshot
        context = _EpochSchedule(
            epoch=epoch,
            member_names=tuple(members),
            name_to_ident=members,
            host_of=host_of,
            system_name=group.system.name,
            space_bits=snapshot.space.bits,
            trace_members=idents,
            trace_capacities=[
                [ident, snapshot.node_at(ident).capacity] for ident in idents
            ],
        )
        self._contexts[group_name] = context
        return context

    def _build_template(
        self, context: _EpochSchedule, group_name: str, source_ident: int
    ) -> _SendTemplate:
        """Extract the source's tree once and freeze its schedule."""
        group = self.service.group(group_name)
        tree = group.multicast_from(group.snapshot.node_at(source_ident))
        host_of = context.host_of
        bandwidths = self.service.hosts  # one dict copy per template
        steps = (
            tree.forward_steps()
            if hasattr(tree, "forward_steps")
            else _forward_steps_from_parent(tree)
        )
        children_of: dict[int, tuple[tuple[int, float], ...]] = {}
        bandwidth_of: dict[int, float] = {}
        for parent, kids in steps:
            host = host_of[parent]
            bandwidth_of[parent] = bandwidths[host]
            children_of[parent] = tuple(
                (child, self._latency(host, host_of[child])) for child in kids
            )
        charges = tuple(
            (host_of[ident], count)
            for ident, count in tree.children_counts().items()
            if count
        )
        return _SendTemplate(
            source_ident=source_ident,
            tree=tree,
            messages_sent=tree.messages_sent,
            children_of=children_of,
            bandwidth_of=bandwidth_of,
            depth=dict(tree.depth),
            charges=charges,
            member_count=len(host_of),
        )

    def _reserve_children(
        self, state: _CachedSend, ident: int, now: float
    ) -> None:
        """Template twin of :meth:`_forward`: same reservations in the
        same order, but arrivals go to the pending heap."""
        template = state.template
        kids = template.children_of.get(ident)
        if not kids:
            return
        host = state.context.host_of[ident]
        serialize = state.receipt.message_kbits / template.bandwidth_of[ident]
        stats = self._stats[state.receipt.group]
        reserve = self.budget.reserve
        pending = self._pending
        for child, latency in kids:
            start, done = reserve(host, now, serialize)
            if start > now:
                stats.deferrals += 1
            stats.queue_depth += 1
            if stats.queue_depth > stats.max_queue_depth:
                stats.max_queue_depth = stats.queue_depth
            heappush(
                pending, (done + latency, self._pending_seq, state, child, ident)
            )
            self._pending_seq += 1

    def _arm_wavefront(self) -> None:
        """Keep exactly one engine event — at the earliest pending
        delivery — standing in for the whole heap."""
        pending = self._pending
        if not pending:
            self._wavefront = None
            self._wavefront_time = None
            return
        head = pending[0][0]
        wavefront = self._wavefront
        if wavefront is not None and not wavefront.cancelled:
            if self._wavefront_time is not None and self._wavefront_time <= head:
                return
            wavefront.cancel()
        self._wavefront_time = head
        self._wavefront = self.simulator.call_at(head, self._pump)

    def _pump(self) -> None:
        """One wavefront: commit pending deliveries in (time, seq)
        order until a *foreign* engine event (membership change,
        scheduled send, completion resolution) or the active
        ``run(until)`` bound must interleave.

        Deliveries at the wavefront's own fire time always commit —
        any foreign event still queued at that instant was scheduled
        after this wavefront was armed, hence after the deliveries'
        uncached counterparts would have entered the queue, so the
        uncached tie-break runs the deliveries first too.
        """
        self._wavefront = None
        self._wavefront_time = None
        pending = self._pending
        engine = self.simulator
        bound = engine.run_bound
        now = engine.now
        committed = False
        while pending:
            head = pending[0]
            time = head[0]
            if time > bound:
                break
            if time > now:
                # the horizon is re-read every step: a commit can
                # schedule a completion resolution, which becomes the
                # next foreign event and caps the batch exactly where
                # the uncached interleaving would put it
                horizon = engine.next_event_time()
                if horizon is not None and time >= horizon:
                    break
            heappop(pending)
            committed = True
            self._commit(head[2], head[3], head[4], time)
        if committed:
            perf.COUNTERS.wavefront_commits += 1
        self._arm_wavefront()

    def _commit(
        self, state: _CachedSend, ident: int, parent: int, time: float
    ) -> None:
        """Template twin of :meth:`_deliver`, at an explicit time."""
        receipt = state.receipt
        host = state.context.host_of[ident]
        stats = self._stats[receipt.group]
        stats.queue_depth -= 1
        verdict = self._ledgers[receipt.group].record(host, receipt.seq)
        if verdict == "dup":
            stats.dups += 1
            if TRACER.enabled:
                TRACER.emit(
                    time, "mc", "dup",
                    mid=receipt.mid, ident=ident, sender=parent,
                    group=receipt.group, seq=receipt.seq,
                )
            return
        stats.deliveries += 1
        stats.delivered_kbits += receipt.message_kbits
        stats.last_delivery = time
        receipt.delivered[host] = time
        if TRACER.enabled:
            TRACER.emit(
                time, "mc", "deliver",
                mid=receipt.mid, ident=ident,
                depth=state.template.depth.get(ident, 0), parent=parent,
                group=receipt.group, seq=receipt.seq,
            )
        state.remaining -= 1
        if state.remaining == 0:
            # resolve through the engine (not inline) so the clock
            # advances to the final delivery and waiters wake at the
            # same instant the uncached event-per-delivery path wakes
            # them
            self.simulator.call_at(
                time, lambda r=receipt: r.completion.resolve(r)
            )
        self._reserve_children(state, ident, time)

    def schedule_preview(
        self, group_name: str, source_host: str, message_kbits: float = 1.0
    ) -> dict[str, float]:
        """The relative delivery timeline an *uncontended* send from
        ``source_host`` would follow: host name -> seconds after
        origination (the source maps to 0.0).

        Derived from the cached template's frozen tree via
        :func:`repro.sim.transfer.delivery_timeline` against a fresh
        uplink budget — the shared ledger is deliberately untouched, so
        previewing never perturbs the plane.  With live traffic the
        actual send defers behind whatever the shared uplinks are
        already serializing; the preview is the lower envelope.
        """
        if not self._active.get(group_name, False):
            raise KeyError(f"no group named {group_name!r}")
        if message_kbits <= 0:
            raise ValueError(
                f"message size must be positive, got {message_kbits}"
            )
        group = self.service.group(group_name)
        if self._schedule_cache:
            context = self._epoch_context(group_name)
            source_ident = context.name_to_ident.get(source_host)
            if source_ident is None:
                raise KeyError(
                    f"host {source_host!r} is not a member of {group_name!r}"
                )
            template = context.templates.get(source_ident)
            if template is None:
                perf.COUNTERS.schedule_cache_misses += 1
                template = self._build_template(
                    context, group_name, source_ident
                )
                context.templates[source_ident] = template
            else:
                perf.COUNTERS.schedule_cache_hits += 1
            tree = template.tree
            host_of = context.host_of
        else:
            source_ident = self.service.member_ident(group_name, source_host)
            tree = group.multicast_from(group.snapshot.node_at(source_ident))
            host_of = {
                self.service.member_ident(group_name, name): name
                for name in self.service.members_of(group_name)
            }
        timeline = delivery_timeline(
            tree,
            group.snapshot,
            message_kbits,
            hop_latency=lambda a, b: self._latency(host_of[a], host_of[b]),
            budget=UplinkBudget(),
            host_key=lambda ident: host_of[ident],
        )
        return {host_of[ident]: when for ident, when in timeline.items()}

    # -- workload replay ------------------------------------------------

    def replay(self, events: "Sequence[ServiceEvent]") -> None:
        """Schedule a generated workload onto the clock (then
        :meth:`drain` to run it).  Events carry concrete group and host
        names (see :func:`repro.workloads.groups.generate_service_workload`);
        scheduling order equals event order, so replay is deterministic."""
        for event in events:
            self.simulator.call_at(event.time, self._apply_event(event))

    def _apply_event(self, event: "ServiceEvent") -> Callable[[], None]:
        def apply() -> None:
            if event.action == "create":
                self.create_group(
                    event.group,
                    event.hosts,
                    kind=event.kind,
                    per_link_kbps=event.per_link_kbps,
                )
            elif event.action == "drop":
                self.drop_group(event.group)
            elif event.action == "join":
                self.join(event.group, event.hosts[0])
            elif event.action == "leave":
                self.leave(event.group, event.hosts[0])
            elif event.action == "send":
                self.send(
                    event.group, event.hosts[0], event.message_kbits
                )
            else:  # pragma: no cover - generator emits only these
                raise ValueError(f"unknown workload action {event.action!r}")

        return apply

    # -- running and reporting ------------------------------------------

    def run(self, until: float) -> None:
        """Advance the clock to ``until``."""
        started = perf_counter()
        self._wall_depth += 1
        try:
            self.simulator.run(until)
        finally:
            self._wall_depth -= 1
            if self._wall_depth == 0:
                self._wall_s += perf_counter() - started

    def drain(self, max_events: int | None = None) -> None:
        """Run until every scheduled hop has landed."""
        started = perf_counter()
        self._wall_depth += 1
        try:
            self.simulator.run_until_idle(max_events)
        finally:
            self._wall_depth -= 1
            if self._wall_depth == 0:
                self._wall_s += perf_counter() - started

    def receipts(self) -> tuple[SendReceipt, ...]:
        """Every send originated so far, in origination order."""
        return tuple(self._receipts)

    def audit(self) -> SequenceAudit:
        """Merge every group's cursor audit (run :meth:`drain` first —
        in-flight sends legitimately show as gaps)."""
        gaps: dict[str, tuple[int, ...]] = {}
        dups = 0
        unexpected = 0
        for group_name in sorted(self._ledgers):
            audit = self._ledgers[group_name].audit()
            for member, missing in audit.gaps.items():
                gaps[f"{group_name}/{member}"] = missing
            dups += audit.dups
            unexpected += audit.unexpected
        return SequenceAudit(gaps=gaps, dups=dups, unexpected=unexpected)

    def verify_quiesced(self) -> None:
        """The plane's oracles after :meth:`drain`: every send complete
        against its frozen membership, zero sequence gaps, zero dups."""
        for receipt in self._receipts:
            receipt.verify_complete()
            if not receipt.complete:
                raise AssertionError(
                    f"send {receipt.group}#{receipt.seq} never completed"
                )
        audit = self.audit()
        if not audit.clean:
            sample = dict(list(audit.gaps.items())[:3])
            raise AssertionError(
                f"sequence audit not clean: {len(audit.gaps)} gapped "
                f"cursors (e.g. {sample}), {audit.dups} dups, "
                f"{audit.unexpected} unexpected"
            )

    def report(self) -> PlaneReport:
        """Per-group goodput, queue depth and deferral counts."""
        rows = []
        total_deliveries = 0
        total_deferrals = 0
        for group_name in sorted(self._stats):
            stats = self._stats[group_name]
            members = (
                len(self.service.members_of(group_name))
                if self._active.get(group_name, False)
                else 0
            )
            rows.append(
                {
                    "group": group_name,
                    "members": members,
                    "closed": stats.closed,
                    "sends": stats.sends,
                    "deliveries": stats.deliveries,
                    "goodput_dps": round(stats.goodput_dps(), 4),
                    "goodput_kbps": round(stats.goodput_kbps(), 4),
                    "deferrals": stats.deferrals,
                    "dups": stats.dups,
                    "max_queue_depth": stats.max_queue_depth,
                }
            )
            total_deliveries += stats.deliveries
            total_deferrals += stats.deferrals
        return PlaneReport(
            time=self.now,
            rows=tuple(rows),
            total_deliveries=total_deliveries,
            total_deferrals=total_deferrals,
            wall_s=self._wall_s,
        )
