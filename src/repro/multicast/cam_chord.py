"""The CAM-Chord MULTICAST routine (Section 3.4).

``x.MULTICAST(msg, k)`` delivers ``msg`` to every member in the
clockwise segment ``(x, k]``: ``x`` picks up to ``c_x`` neighbors that
split ``(x, k]`` into subregions as even as possible and hands each
chosen neighbor the subregion it is responsible for.  The collective
recursive execution traces an implicit, roughly balanced,
degree-varying multicast tree in which no node exceeds its capacity.

Two engineering notes beyond the paper's pseudo code:

* On a sparse ring several neighbor *identifiers* can resolve to the
  same physical node, or resolve past the end of the remaining region.
  Each child send is therefore guarded by "resolved node lies in
  ``(x, k']``".  The guard fails exactly when the identifier span
  ``[x_{i,m}, k']`` contains no member, so skipping it loses nobody —
  and it is what makes the exactly-once delivery invariant hold
  unconditionally (property-tested in
  ``tests/test_multicast_invariants.py``).
* The paper's pseudo code floors the running position ``l`` when
  spreading spare capacity over level-``(i-1)`` neighbors, but its own
  worked example (x with capacity 3 forwarding to ``x_{2,2}``,
  Figure 3) requires the ceiling: floor would pick ``x_{2,1}``.  We
  follow the worked example.

The child-selection core is a pure function over a *resolver* so that
the structural simulation (global membership snapshot) and the live
protocol peers (local, possibly stale neighbor tables) execute the
identical algorithm.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from repro import perf
from repro.idspace.ring import segment_contains, segment_size
from repro.trace.tracer import TRACER
from repro.multicast.delivery import MulticastResult
from repro.overlay.base import Node
from repro.overlay.cam_chord import level_and_sequence

#: Maps a neighbor identifier (with its level and sequence number) to
#: the identifier of the node believed responsible for it, or None when
#: the caller has no usable link for that slot.
NeighborResolver = Callable[[int, int, int], "int | None"]


def select_child_regions(
    ident: int,
    capacity: int,
    bits: int,
    limit: int,
    resolver: NeighborResolver,
) -> list[tuple[int, int]]:
    """One execution of the MULTICAST child selection (lines 4-15).

    Returns ``(child_ident, subregion_limit)`` pairs: each child becomes
    responsible for ``(child_ident, subregion_limit]``.  The subregions
    are pairwise disjoint and, together with the children themselves,
    exactly cover the members of ``(ident, limit]`` — provided the
    resolver answers with the true responsible nodes.  With stale
    resolver answers (live protocol under churn) the same code runs,
    and any coverage gap becomes a measured delivery loss.
    """
    size = 1 << bits
    distance = segment_size(ident, limit, size)
    if distance == 0:
        return []
    level, sequence = level_and_sequence(distance, capacity)

    selected: list[tuple[int, int]] = []
    remaining_limit = limit

    def consider(lvl: int, seq: int) -> None:
        """Guarded child send: assign (child, remaining_limit] and shrink
        the remaining region to (ident, neighbor_identifier - 1].

        The region shrinks only when a child was actually selected.  On
        a global snapshot the distinction is invisible — a skipped
        span provably holds no member, so whether it is cut off or
        rolled into the next child's region, the resulting tree is the
        same.  A live peer's resolver, however, answers ``None`` for a
        slot it has *no link* for, and members may well live in that
        span: leaving the limit untouched hands the span to the next
        selected child instead of silently dropping it.
        """
        nonlocal remaining_limit
        neighbor_ident = (ident + seq * capacity**lvl) % size
        child = resolver(lvl, seq, neighbor_ident)
        if child is not None and segment_contains(child, ident, remaining_limit, size):
            selected.append((child, remaining_limit))
            remaining_limit = (neighbor_ident - 1) % size

    # Lines 6-9: level-i neighbors preceding k, highest sequence first.
    for seq in range(sequence, 0, -1):
        consider(level, seq)

    # Lines 10-14: spread the spare capacity over level-(i-1) neighbors,
    # as evenly separated as possible (ceiling; see module docstring).
    if level >= 1:
        position = float(capacity)
        step = capacity / (capacity - sequence)
        for _ in range(capacity - sequence - 1):
            position -= step
            consider(level - 1, math.ceil(position))

    # Line 15: the successor x_{0,1} picks up whatever remains.
    consider(0, 1)
    return selected


def select_children(overlay, node: Node, limit: int) -> list[tuple[Node, int]]:
    """Child selection against the global membership snapshot.

    ``overlay`` is a :class:`CamChordOverlay` or a plain
    :class:`~repro.overlay.chord.ChordOverlay`: the arithmetic is
    identical with ``capacity`` replaced by the uniform finger base, so
    the same routine doubles as the *capacity-oblivious* balanced
    multicast the paper's Figure 6 evaluates under the name "Chord".
    """
    snapshot = overlay.snapshot
    members = snapshot.nodes
    resolve_index = snapshot.resolve_index
    resolved: dict[int, Node] = {}

    def resolver(level: int, sequence: int, identifier: int) -> int:
        # resolve_index avoids the ident->Node dict hop on the way out:
        # the node is remembered here, keyed by the ident the region
        # arithmetic works with.
        member = members[resolve_index(identifier)]
        resolved[member.ident] = member
        return member.ident

    regions = select_child_regions(
        node.ident, overlay.fanout(node), overlay.space.bits, limit, resolver
    )
    return [(resolved[child], sublimit) for child, sublimit in regions]


def cam_chord_multicast(overlay, source: Node):
    """Run a full multicast from ``source`` and return the implicit tree.

    Accepts a :class:`CamChordOverlay` (capacity-aware) or a plain
    :class:`~repro.overlay.chord.ChordOverlay` (uniform fanout — the
    Figure 6 "Chord" baseline).

    Equivalent to the paper's ``x.MULTICAST(msg, x - 1)``: the initial
    region is the whole ring except the source.  Executed by the
    flat-array kernel (:mod:`repro.multicast.kernel`): breadth-first
    over member indices with per-overlay memoized slot tables, edge-
    for-edge identical to :func:`reference_multicast` (property-tested
    in ``tests/test_kernel.py``).
    """
    from repro.multicast.kernel import region_split_tree

    return region_split_tree(overlay, source)


def reference_multicast(overlay, source: Node) -> MulticastResult:
    """The ``record_delivery``-built object tree of one multicast.

    This is the legacy data plane — one dict insert per delivery, one
    scalar ``resolve`` per considered slot — kept as the executable
    specification the kernel is property-tested against; the live
    protocol peers run the same child selection hop by hop.
    """
    result = MulticastResult(source_ident=source.ident)
    initial_limit = overlay.space.sub(source.ident, 1)
    queue: deque[tuple[Node, int]] = deque([(source, initial_limit)])
    while queue:
        node, limit = queue.popleft()
        for child, sublimit in select_children(overlay, node, limit):
            result.record_delivery(child.ident, node.ident)
            queue.append((child, sublimit))
    perf.COUNTERS.multicast_trees += 1
    perf.COUNTERS.deliveries += result.messages_sent
    if TRACER.enabled:
        # Structural trees have no clock and up to 100k edges — one
        # summary event per tree keeps tracing affordable at scale.
        TRACER.emit(
            0.0, "mc", "tree", source=source.ident, edges=result.messages_sent
        )
    return result
