"""Proximity Neighbor Selection for CAM-Chord multicast (Section 5.2).

"A node x can choose any node whose identifier belongs to the segment
``[x + j*c^i, x + (j+1)*c^i)`` as the neighbor ``x_{i,j}``.  Given this
freedom, some heuristics (e.g., least delay first) may be used to
choose neighbors to promote geographic clustering."

The multicast routine needs the promised "superficial" modification:
with a freely-chosen child ``z`` (not necessarily the first member of
its window) the remaining-region boundary must shrink to ``z - 1``
rather than to the window start, so the members the choice skipped fall
into the next child's region.  Exactly-once delivery is preserved (see
the property tests).

Probing every window member is unrealistic (a window near the top
level holds ~n/c members), so — like deployed PNS implementations —
each window samples at most ``probe_limit`` candidates and picks the
lowest-delay one.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from repro.multicast.delivery import MulticastResult
from repro.overlay.base import Node
from repro.overlay.cam_chord import CamChordOverlay, level_and_sequence

#: delay(parent, candidate) -> cost used to rank window candidates
DelayFunction = Callable[[int, int], float]


def select_children_pns(
    overlay: CamChordOverlay,
    node: Node,
    limit: int,
    delay: DelayFunction,
    probe_limit: int = 16,
) -> list[tuple[Node, int]]:
    """Section 3.4 child selection with least-delay window choice."""
    space = overlay.space
    snapshot = overlay.snapshot
    distance = space.segment_size(node.ident, limit)
    if distance == 0:
        return []
    capacity = overlay.fanout(node)
    level, sequence = level_and_sequence(distance, capacity)

    selected: list[tuple[Node, int]] = []
    remaining_limit = limit

    def consider(lvl: int, seq: int) -> None:
        nonlocal remaining_limit
        # Work in clockwise offsets from the node so a window can never
        # wrap past the node itself (the top-level window may exceed the
        # ring otherwise and would swallow the source).
        start_offset = seq * capacity**lvl
        limit_offset = space.segment_size(node.ident, remaining_limit)
        if start_offset > limit_offset:
            return  # the window is entirely behind the remaining region
        end_offset = min(start_offset + capacity**lvl - 1, limit_offset)
        window_start = space.add(node.ident, start_offset)
        window_end = space.add(node.ident, end_offset)
        candidates = snapshot.nodes_in_segment(
            space.sub(window_start, 1), window_end, limit=probe_limit
        )
        if not candidates:
            return  # empty window: the next child's region absorbs it
        child = min(candidates, key=lambda c: delay(node.ident, c.ident))
        selected.append((child, remaining_limit))
        remaining_limit = space.sub(child.ident, 1)

    for seq in range(sequence, 0, -1):
        consider(level, seq)
    if level >= 1:
        position = float(capacity)
        step = capacity / (capacity - sequence)
        for _ in range(capacity - sequence - 1):
            position -= step
            consider(level - 1, math.ceil(position))
    # Line 15: the successor picks up whatever remains.  Its window
    # [x+1, x+2) offers no selection freedom, so it is the one child
    # that must be the true ring successor — otherwise the members no
    # empty-window child absorbed would be lost.
    successor = snapshot.successor(node)
    if space.in_segment(successor.ident, node.ident, remaining_limit):
        selected.append((successor, remaining_limit))
    return selected


def pns_cam_chord_multicast(
    overlay: CamChordOverlay,
    source: Node,
    delay: DelayFunction,
    probe_limit: int = 16,
) -> MulticastResult:
    """Full multicast with proximity neighbor selection at every hop."""
    result = MulticastResult(source_ident=source.ident)
    initial_limit = overlay.space.sub(source.ident, 1)
    queue: deque[tuple[Node, int]] = deque([(source, initial_limit)])
    while queue:
        node, node_limit = queue.popleft()
        for child, sublimit in select_children_pns(
            overlay, node, node_limit, delay, probe_limit=probe_limit
        ):
            result.record_delivery(child.ident, node.ident)
            queue.append((child, sublimit))
    return result


def tree_delay_statistics(
    result: MulticastResult, delay: DelayFunction
) -> tuple[float, float]:
    """(mean, max) end-to-end delay from the source over all receivers.

    A receiver's delay is the sum of per-hop delays along its delivery
    path — the latency a pipelined transfer would see.
    """
    total: dict[int, float] = {result.source_ident: 0.0}
    worst = 0.0
    # parents always precede children in a BFS-recorded delivery map,
    # but be defensive: resolve recursively.

    def delay_of(ident: int) -> float:
        if ident in total:
            return total[ident]
        parent = result.parent[ident]
        assert parent is not None
        value = delay_of(parent) + delay(parent, ident)
        total[ident] = value
        return value

    for ident in result.parent:
        worst = max(worst, delay_of(ident))
    others = [value for ident, value in total.items() if ident != result.source_ident]
    mean = sum(others) / len(others) if others else 0.0
    return mean, worst
