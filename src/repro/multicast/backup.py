"""Precomputed backup subtrees: proactive failover for frozen CAM trees.

The repair-based resilience path (:mod:`repro.faults`) waits for the
ring to re-stabilize before it trusts a multicast again — every lost
member pays at least one stabilization interval before the message can
reach it.  The SDN-ResilientMulticast line of work installs per-link
backup trees *ahead* of failure instead: when a dissemination edge
dies, the orphaned subtree is switched onto a pre-agreed surviving
parent immediately, so the delivery gap is detection plus a couple of
overlay hops rather than a repair round.

This module brings that to the frozen trees of the PR 4 kernel.  From
one :class:`~repro.multicast.kernel.FlatTree` (the implicit tree over a
membership epoch) :func:`build_backup_plan` installs, for every
non-source member, a **ranked graft list**: surviving parents that can
re-feed the member's subtree if its primary edge (or primary parent
node) fails, ordered grandparent first, then siblings, then the rest of
the tree in delivery order, then — strictly last, for pure edge
failures — the primary parent itself; never the member or anything
inside its own subtree (a graft there would cycle).
Candidate admission respects the descriptor's capacity-derived
``live_fanout_bound``: a graft parent must have spare fanout after its
primary children and earlier grafts.

:func:`apply_failover` is the switch: given the causal record of a
multicast that lost members (:class:`~repro.trace.causal.
MulticastRecord`) and the installed plan, it identifies each orphaned
subtree root from its causal lost hop (the dropped ``mc_region`` /
``mc_flood`` datagram or the stalled holder), grafts the root onto the
first admissible candidate, and re-feeds the subtree along the plan's
own primary edges.  Recovery times are structural: the lost hop's drop
time, plus the detection delay (the sender's ack timeout), plus one
overlay-hop latency per backup edge.  Everything is derived from
frozen values — two applications of the same plan to the same record
are identical, which is what lets the fault campaign compare repair
and failover paths under one seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.multicast.kernel import UNREACHED, FlatTree, flood_tree, region_split_tree

if TYPE_CHECKING:
    from repro.systems import SystemDescriptor
    from repro.trace.causal import MulticastRecord


@dataclass(frozen=True)
class BackupRoute:
    """The installed failover state of one non-source member.

    ``parent``/``depth`` freeze the member's place in the primary tree
    (the plan must stay self-describing after the epoch moves on);
    ``candidates`` is the ranked graft-parent list consulted when the
    member's subtree is orphaned.
    """

    ident: int
    parent: int
    depth: int
    candidates: tuple[int, ...]


@dataclass
class BackupPlan:
    """Per-edge and per-node backup subtrees of one frozen tree.

    ``routes`` maps every non-source member to its installed
    :class:`BackupRoute`; ``children`` is the primary tree's adjacency
    in delivery order.  The per-*edge* backup of ``(parent, child)`` is
    the child's route applied to its whole subtree; the per-*node*
    backup of ``u`` is the union of its children's routes — both views
    are derived, not stored twice.
    """

    source: int
    epoch_members: tuple[int, ...]
    capacities: dict[int, int] = field(default_factory=dict)
    routes: dict[int, BackupRoute] = field(default_factory=dict)
    children: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def subtree(self, ident: int) -> tuple[int, ...]:
        """``ident`` plus every primary descendant, breadth-first."""
        if ident != self.source and ident not in self.routes:
            raise KeyError(f"{ident} is not in the plan's epoch")
        out: list[int] = []
        queue = deque([ident])
        while queue:
            node = queue.popleft()
            out.append(node)
            queue.extend(self.children.get(node, ()))
        return tuple(out)

    def orphans_of_edge(self, parent: int, child: int) -> tuple[int, ...]:
        """The members orphaned when the edge ``parent -> child`` dies:
        exactly the child's primary subtree."""
        route = self.routes.get(child)
        if route is None or route.parent != parent:
            raise KeyError(f"{parent} -> {child} is not a primary tree edge")
        return self.subtree(child)

    def orphans_of_node(self, ident: int) -> tuple[int, ...]:
        """The members orphaned when node ``ident`` dies: the union of
        its children's subtrees (the node itself departs, so it is not
        an orphan)."""
        out: list[int] = []
        for child in self.children.get(ident, ()):
            out.extend(self.subtree(child))
        return tuple(out)


def build_backup_plan(tree: FlatTree, descriptor: "SystemDescriptor") -> BackupPlan:
    """Install ranked backup routes for every member of one frozen tree.

    Candidate ranking per member ``v``: the grandparent (closest
    surviving ancestor when only ``v``'s parent died), then ``v``'s
    siblings in delivery order (they hold the message at nearly the
    same depth), then every other delivered member in delivery order,
    and ``v``'s own primary parent strictly *last*.  ``v`` itself and
    its own subtree are excluded — grafting inside the orphaned subtree
    would feed the message from a node that does not have it.  The
    parent comes last, not never: a per-*edge* failure (the datagram
    died on a stale link, the parent survives and still holds the
    message — e.g. the source feeding a region through a dead table
    entry) is legitimately recovered by the parent over a fresh link,
    while a per-*node* failure makes the dead parent inadmissible at
    activation time (:func:`apply_failover` skips departed and
    undelivered feeders), so every earlier candidate is preferred.

    The build touches only the tree's frozen arrays, so two builds over
    the same tree are equal — the determinism the property tests pin.
    """
    snapshot = tree.snapshot
    idents = snapshot.identifiers
    capacities = snapshot.capacities
    parent_index = tree.parent_index
    order = tree.order

    children_ix: dict[int, list[int]] = {}
    for index in order:
        parent = parent_index[index]
        if parent == index or parent == UNREACHED:
            continue
        children_ix.setdefault(parent, []).append(index)

    # Subtree membership per member index (index -> set of member
    # indices), computed leaf-up over the reversed delivery order.
    subtree_ix: dict[int, set[int]] = {}
    for index in reversed(order):
        span = {index}
        for child in children_ix.get(index, ()):
            span |= subtree_ix[child]
        subtree_ix[index] = span

    plan = BackupPlan(
        source=tree.source_ident,
        epoch_members=tuple(idents[index] for index in sorted(order)),
        capacities={idents[index]: capacities[index] for index in order},
    )
    plan.children = {
        idents[parent]: tuple(idents[child] for child in kids)
        for parent, kids in children_ix.items()
    }

    source_index = order[0]
    for index in order:
        parent = parent_index[index]
        if parent == index:
            continue  # the source needs no backup route
        blocked = subtree_ix[index] | {parent}
        ranked: list[int] = []
        seen: set[int] = set()

        def admit(candidate: int) -> None:
            if candidate not in blocked and candidate not in seen:
                seen.add(candidate)
                ranked.append(candidate)

        grandparent = parent_index[parent]
        if grandparent != parent:
            admit(grandparent)
        for sibling in children_ix.get(parent, ()):
            if sibling != index:
                admit(sibling)
        admit(source_index)
        for other in order:
            admit(other)
        # the primary parent strictly last: only an edge failure (the
        # parent survives, holding the message) makes it admissible
        ranked.append(parent)
        plan.routes[idents[index]] = BackupRoute(
            ident=idents[index],
            parent=idents[parent],
            depth=tree.depth_array[index],
            candidates=tuple(idents[candidate] for candidate in ranked),
        )
    return plan


def backup_plan_for_record(
    record: "MulticastRecord",
    descriptor: "SystemDescriptor",
    uniform_fanout: int,
    membership: Iterable[tuple[int, int]] | None = None,
) -> BackupPlan | None:
    """The backup plan of one multicast's frozen epoch.

    The epoch defaults to the record's own ``mc.origin`` membership
    (identifiers with frozen live capacities); ``membership`` overrides
    it with an explicit ``(ident, capacity)`` set — the stale-backup
    mutation hook hands in a *previous* epoch here.  Returns ``None``
    when the record's source is not in the epoch (a stale plan cannot
    even root its tree), which downstream treats as "nothing is
    covered".
    """
    from repro.idspace.ring import IdentifierSpace
    from repro.overlay.base import Node, RingSnapshot

    pairs = sorted(record.capacities.items() if membership is None else membership)
    nodes = [Node(ident=ident, capacity=capacity) for ident, capacity in pairs]
    if record.source not in {node.ident for node in nodes}:
        return None
    snapshot = RingSnapshot(IdentifierSpace(record.bits), nodes)
    overlay = descriptor.build_overlay(snapshot, uniform_fanout)
    builder = region_split_tree if descriptor.builds_single_tree else flood_tree
    tree = builder(overlay, snapshot.node_at(record.source))
    return build_backup_plan(tree, descriptor)


# -- the failover switch ------------------------------------------------------


@dataclass(frozen=True)
class FailoverTiming:
    """Structural timing model of one failover activation.

    ``detect_delay`` is how long the feeding side needs to declare a
    hop lost after its drop (the protocol's RPC/ack timeout — the
    "first detected loss" of the drop/timeout trace event);
    ``hop_latency`` is one overlay hop on the backup path, matching the
    cluster's constant-latency network.
    """

    detect_delay: float = 1.0
    hop_latency: float = 0.02


@dataclass(frozen=True)
class GraftEdge:
    """One activated backup edge: ``parent`` re-feeds orphan root ``child``."""

    parent: int
    child: int


@dataclass(frozen=True)
class RecoveredDelivery:
    """One member's eventual delivery over its installed backup.

    ``feeder`` is the node that passed the message on the backup path
    (the graft parent for a subtree root, the primary-plan parent
    below it); ``time`` is the absolute simulated time of eventual
    delivery; ``lost_hop`` cites the causal hop that orphaned the
    member's subtree.
    """

    ident: int
    feeder: int
    time: float
    lost_hop: str


@dataclass(frozen=True)
class FailoverRecovery:
    """Everything one failover activation produced, as plain data."""

    origin_time: float
    recovered: tuple[RecoveredDelivery, ...] = ()
    grafts: tuple[GraftEdge, ...] = ()
    uncovered: tuple[int, ...] = ()

    def recovered_times(self) -> dict[int, float]:
        """Member -> absolute eventual delivery time."""
        return {item.ident: item.time for item in self.recovered}

    def graft_load(self) -> dict[int, int]:
        """Graft children per backup parent (for the fanout check)."""
        load: dict[int, int] = {}
        for graft in self.grafts:
            load[graft.parent] = load.get(graft.parent, 0) + 1
        return load


def _format_lost_hop(member: int, hop) -> str:
    return hop.describe(member)


def apply_failover(
    record: "MulticastRecord",
    plan: BackupPlan | None,
    descriptor: "SystemDescriptor",
    timing: FailoverTiming = FailoverTiming(),
) -> FailoverRecovery:
    """Switch every orphaned subtree onto its installed backup.

    Orphan *roots* are the undelivered eligible members whose plan
    parent is not itself waiting for recovery (the parent delivered,
    departed, or left the epoch) — each root is grafted onto the first
    candidate that holds the message (delivered primarily or already
    recovered) and has spare fanout under the descriptor's
    ``live_fanout_bound`` against the record's frozen capacities.  The
    root's subtree then re-feeds along the plan's own primary edges.
    Members no admissible candidate can reach — and every orphan a
    stale plan does not know — end up in ``uncovered``: the
    delivery-gap oracle's violation set.
    """
    from repro.trace.causal import lost_hops

    orphans = sorted(record.undelivered)
    if not orphans:
        return FailoverRecovery(origin_time=record.origin_time)
    if plan is None:
        return FailoverRecovery(
            origin_time=record.origin_time, uncovered=tuple(orphans)
        )

    orphan_set = set(orphans)
    hops = lost_hops(record)
    load: dict[int, int] = {}
    for parent, _child in record.actual_edges():
        load[parent] = load.get(parent, 0) + 1

    delivered_at = {
        ident: when for ident, (_parent, _depth, when) in record.deliveries.items()
    }
    recovered: dict[int, RecoveredDelivery] = {}
    grafts: list[GraftEdge] = []

    def spare(candidate: int) -> int:
        capacity = record.capacities.get(candidate)
        if capacity is None:
            return 0  # not a live epoch member; cannot feed anything
        return descriptor.live_fanout_bound(capacity) - load.get(candidate, 0)

    roots = [
        member
        for member in orphans
        if member in plan.routes and plan.routes[member].parent not in orphan_set
    ]
    for root in roots:
        hop = hops.get(root)
        hop_line = _format_lost_hop(root, hop) if hop else f"member {root}: no hop"
        detect_time = (hop.time if hop else record.origin_time) + timing.detect_delay
        feeder = None
        for candidate in plan.routes[root].candidates:
            if candidate in record.departed:
                continue  # a dead node cannot feed, delivered or not
            if candidate == record.source or candidate in delivered_at:
                available = max(detect_time, delivered_at.get(candidate, detect_time))
            elif candidate in recovered:
                available = max(detect_time, recovered[candidate].time)
            else:
                continue
            if spare(candidate) < 1:
                continue
            feeder = candidate
            feed_time = available
            break
        if feeder is None:
            continue  # stays uncovered
        load[feeder] = load.get(feeder, 0) + 1
        grafts.append(GraftEdge(parent=feeder, child=root))
        recovered[root] = RecoveredDelivery(
            ident=root,
            feeder=feeder,
            time=feed_time + timing.hop_latency,
            lost_hop=hop_line,
        )
        # Re-feed the orphaned subtree along the plan's primary edges;
        # members that delivered primarily keep their delivery (their
        # own undelivered children are roots themselves).
        queue = deque([root])
        while queue:
            node = queue.popleft()
            node_time = recovered[node].time
            for child in plan.children.get(node, ()):
                if child not in orphan_set or child in recovered:
                    continue
                child_hop = hops.get(child)
                recovered[child] = RecoveredDelivery(
                    ident=child,
                    feeder=node,
                    time=node_time + timing.hop_latency,
                    lost_hop=(
                        _format_lost_hop(child, child_hop) if child_hop else hop_line
                    ),
                )
                queue.append(child)

    uncovered = tuple(member for member in orphans if member not in recovered)
    return FailoverRecovery(
        origin_time=record.origin_time,
        recovered=tuple(recovered[ident] for ident in sorted(recovered)),
        grafts=tuple(grafts),
        uncovered=uncovered,
    )


def delivery_gaps(
    record: "MulticastRecord", recovery: FailoverRecovery | None = None
) -> dict[int, float]:
    """Per-member gap from ``mc.origin`` to eventual delivery.

    Primary deliveries gap at their traced delivery time; recovered
    members at their backup path's structural recovery time.  The
    source (which held the message from the start) and members the
    failover left uncovered are absent — absence *is* the delivery-gap
    oracle's signal.
    """
    gaps = {
        ident: when - record.origin_time
        for ident, (_parent, _depth, when) in record.deliveries.items()
        if ident != record.source and ident in record.eligible_members
    }
    if recovery is not None:
        for item in recovery.recovered:
            gaps.setdefault(item.ident, item.time - record.origin_time)
    return gaps


def sorted_gap_items(gaps: dict[int, float]) -> tuple[tuple[int, float], ...]:
    """Gaps as a sorted, hashable (ident, gap) tuple for plan outcomes."""
    return tuple(sorted(gaps.items()))


def gap_values(items: Sequence[tuple[int, float]]) -> list[float]:
    """Just the gap durations of one outcome's (ident, gap) pairs."""
    return [gap for _ident, gap in items]
