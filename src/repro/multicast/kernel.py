"""Flat-array multicast kernel: one-pass tree construction over indices.

The paper's evaluation is dominated by building implicit multicast
trees (Figures 6-11) and accounting deliveries over them.  The tree of
one (snapshot, source, system) triple is *fully determined* by the
membership snapshot — "no explicit tree is built" (Section 3.4), but
the union of forwarding decisions is a pure function of the frozen
ring.  This module computes that function as flat passes over machine
arrays instead of millions of per-node object operations:

* every member is addressed by its **member index** (its position in
  the snapshot's sorted identifier array), so the tree is three
  ``array('l')`` buffers — ``parent_index``, ``depth`` and
  ``child_count`` — plus the breadth-first ``order`` the dissemination
  delivered in;
* identifier resolution is memoized **per overlay** in neighbor
  tables: floods get a CSR adjacency (one resolution per neighbor
  identifier, ever), region splitters get lazy per-node slot tables
  (one resolution per touched ``(level, sequence)`` slot, ever) — so a
  second source over the same overlay performs *zero* bisects;
* the result is a :class:`FlatTree`, a lazy view that speaks the full
  :class:`~repro.multicast.delivery.MulticastResult` vocabulary.  The
  hot metrics (:mod:`repro.metrics`) read the arrays directly in fused
  single passes; the ``parent`` / ``depth`` dicts materialize only when
  a consumer actually subscripts them (parity diffing, causal
  forensics, the transfer scheduler) and in exact delivery order, so
  the object view is byte-for-byte the tree the legacy recorder built.

The ``record_delivery``-built object trees remain the data plane of
the *traced/live* path (protocol peers, the reliable-multicast service,
proximity ablations): there the tree emerges from simulated message
exchanges, not from a snapshot, and cannot be precomputed.

Equivalence with the legacy recorders is property-tested edge-for-edge
for all four registry systems in ``tests/test_kernel.py``.
"""

from __future__ import annotations

import weakref
from array import array
from bisect import bisect_left, bisect_right
from collections import Counter, OrderedDict, deque
from math import ceil

from repro import perf
from repro.multicast.delivery import DuplicateDeliveryError
from repro.overlay.base import Node, Overlay, RingSnapshot
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.cam_koorde import CamKoordeOverlay, cam_koorde_neighbor_groups
from repro.overlay.chord import ChordOverlay
from repro.overlay.koorde import KoordeOverlay
from repro.trace.tracer import TRACER

#: sentinel in the parent/depth arrays: this member never received.
UNREACHED = -1


class FlatTree:
    """One implicit multicast tree as flat arrays, lazily dict-viewable.

    Array layout (all indexed by member index, ``n`` entries):

    * ``parent_index[i]`` — member index of the node that forwarded to
      ``i`` (the source maps to itself, unreached members to ``-1``);
    * ``depth[i]`` — overlay hops from the source (``-1`` unreached);
    * ``child_count[i]`` — out-degree of ``i`` in the tree;
    * ``order`` — member indices in delivery (breadth-first) order,
      source first: exactly the insertion order the legacy recorder's
      dicts would have, which is what keeps the materialized views —
      and everything downstream of their iteration order — identical.
    """

    __slots__ = (
        "source_ident",
        "messages_sent",
        "snapshot",
        "parent_index",
        "depth_array",
        "child_count",
        "order",
        "_parent_map",
        "_depth_map",
    )

    def __init__(
        self,
        snapshot: RingSnapshot,
        source_ident: int,
        parent_index: array,
        depth_array: array,
        child_count: array,
        order: array,
    ) -> None:
        self.snapshot = snapshot
        self.source_ident = source_ident
        self.parent_index = parent_index
        self.depth_array = depth_array
        self.child_count = child_count
        self.order = order
        self.messages_sent = len(order) - 1
        self._parent_map: dict[int, int | None] | None = None
        self._depth_map: dict[int, int] | None = None

    # -- index helpers --------------------------------------------------

    def member_index(self, ident: int) -> int | None:
        """Member index of ``ident``, or None when not a member."""
        idents = self.snapshot.identifiers
        position = bisect_left(idents, ident)
        if position < len(idents) and idents[position] == ident:
            return position
        return None

    # -- lazy object views ----------------------------------------------

    @property
    def parent(self) -> dict[int, int | None]:
        """Receiver ident -> parent ident (source -> None), materialized
        on first access in delivery order."""
        if self._parent_map is None:
            idents = self.snapshot.identifiers
            parent_index = self.parent_index
            mapping: dict[int, int | None] = {}
            for index in self.order:
                parent = parent_index[index]
                mapping[idents[index]] = None if parent == index else idents[parent]
            self._parent_map = mapping
        return self._parent_map

    @property
    def depth(self) -> dict[int, int]:
        """Receiver ident -> hops from the source, in delivery order."""
        if self._depth_map is None:
            idents = self.snapshot.identifiers
            depths = self.depth_array
            self._depth_map = {idents[index]: depths[index] for index in self.order}
        return self._depth_map

    # -- MulticastResult vocabulary (fused array passes) ----------------

    def was_delivered(self, ident: int) -> bool:
        """True when the node received the message."""
        index = self.member_index(ident)
        return index is not None and self.depth_array[index] >= 0

    @property
    def receiver_count(self) -> int:
        """Number of nodes that received the message, source included."""
        return len(self.order)

    def children_counts(self) -> Counter[int]:
        """Out-degree of every receiver (leaves included with 0), in
        delivery order — the legacy recorder's Counter, reproduced."""
        perf.COUNTERS.array_passes += 1
        idents = self.snapshot.identifiers
        counts = self.child_count
        return Counter({idents[index]: counts[index] for index in self.order})

    def forward_steps(self) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """The tree's forwarding schedule as ``(parent ident, child
        idents)`` pairs — the template the service plane's epoch cache
        freezes once per (membership epoch, source).

        Parents appear in the order their first child is delivered and
        each child tuple is in delivery order, which is exactly the
        adjacency (and its iteration order) a consumer would get by
        grouping the materialized :attr:`parent` dict — so a schedule
        replayed from these steps issues its per-edge work in the same
        sequence a per-edge walk of the object view would.
        """
        perf.COUNTERS.array_passes += 1
        idents = self.snapshot.identifiers
        parent_index = self.parent_index
        kids: dict[int, list[int]] = {}
        for index in self.order:
            parent = parent_index[index]
            if parent == index or parent == UNREACHED:
                continue
            kids.setdefault(parent, []).append(index)
        return tuple(
            (idents[parent], tuple(idents[child] for child in children))
            for parent, children in kids.items()
        )

    def internal_nodes(self) -> list[int]:
        """Identifiers of nodes with at least one child."""
        perf.COUNTERS.array_passes += 1
        idents = self.snapshot.identifiers
        counts = self.child_count
        return [idents[index] for index in self.order if counts[index] > 0]

    def path_length_histogram(self) -> Counter[int]:
        """The Figure 9/10 statistic: #nodes reached at each hop count."""
        perf.COUNTERS.array_passes += 1
        depths = self.depth_array
        return Counter(depths[index] for index in self.order)

    def average_path_length(self) -> float:
        """Mean hops from the source over all receivers except itself."""
        perf.COUNTERS.array_passes += 1
        others = len(self.order) - 1
        if others == 0:
            return 0.0
        depths = self.depth_array
        total = 0
        for index in self.order:
            total += depths[index]
        return total / others

    def max_path_length(self) -> int:
        """Tree depth: the longest source-to-member path."""
        perf.COUNTERS.array_passes += 1
        depths = self.depth_array
        return max(depths[index] for index in self.order)

    def path_to_source(self, ident: int) -> list[int]:
        """The delivery path from ``ident`` back to the source."""
        index = self.member_index(ident)
        if index is None or self.depth_array[index] < 0:
            raise KeyError(f"node {ident} never received the message")
        idents = self.snapshot.identifiers
        parent_index = self.parent_index
        path = [idents[index]]
        while parent_index[index] != index:
            index = parent_index[index]
            path.append(idents[index])
        return path

    def verify_exactly_once(self, member_idents: set[int]) -> None:
        """Assert the Section 3.4 invariant: every member received the
        message exactly once (exact-once holds by construction — the
        arrays cannot record a second parent — so only coverage and
        membership are checked)."""
        idents = self.snapshot.identifiers
        received = {idents[index] for index in self.order}
        missing = member_idents - received
        extra = received - member_idents
        if missing:
            sample = sorted(missing)[:5]
            raise AssertionError(
                f"{len(missing)} members never received the message, e.g. {sample}"
            )
        if extra:
            sample = sorted(extra)[:5]
            raise AssertionError(
                f"{len(extra)} non-members received the message, e.g. {sample}"
            )


# -- per-overlay memoized neighbor tables ------------------------------------

#: Members per chunk of the streaming CSR/fanout builders: identifier
#: and capacity columns are prefetched chunk-wise into plain lists, so
#: the inner loops index native ints even when the snapshot's columns
#: are memoryview casts over a shared-memory buffer.
_CHUNK = 8192


class _FloodState:
    """CSR adjacency of one flood overlay: every neighbor identifier is
    resolved to a member index exactly once per state lifetime.

    Construction streams over the snapshot's identifier/capacity
    columns in chunks — no node tuple, no per-member dict — so peak
    memory stays the O(n) output arrays even on a million-member
    array-backed snapshot.
    """

    __slots__ = ("offsets", "targets")

    def __init__(self, overlay: Overlay) -> None:
        snapshot = overlay.snapshot
        idents = snapshot.identifiers
        count = len(idents)
        size = snapshot.space.size
        bits = snapshot.space.bits
        offsets = array("l", [0]) * (count + 1)
        targets = array("l")
        append = targets.append
        resolves = 0
        koorde = isinstance(overlay, KoordeOverlay)
        cam_koorde = isinstance(overlay, CamKoordeOverlay)
        ring_first = koorde or cam_koorde
        degree = overlay.degree if koorde else 0
        capacities = snapshot.capacities if cam_koorde else None
        for start in range(0, count, _CHUNK):
            chunk = idents[start : start + _CHUNK].tolist()
            chunk_capacities = (
                capacities[start : start + _CHUNK].tolist() if cam_koorde else None
            )
            for offset, node_ident in enumerate(chunk):
                i = start + offset
                seen: set[int] = {i}
                if ring_first:
                    # predecessor and successor lead the neighbor list
                    # (membership-relative, no resolution needed).
                    for j in ((i - 1) % count, (i + 1) % count):
                        if j not in seen:
                            seen.add(j)
                            append(j)
                if koorde:
                    # Koorde's pointers are k *consecutive members*
                    # starting at the node responsible for k*x: one
                    # resolution, then a successor walk.
                    j = bisect_left(idents, (degree * node_ident) % size)
                    if j == count:
                        j = 0
                    resolves += 1
                    for _ in range(degree):
                        if j not in seen:
                            seen.add(j)
                            append(j)
                        j = (j + 1) % count
                else:
                    if cam_koorde:
                        neighbor_idents = cam_koorde_neighbor_groups(
                            node_ident, chunk_capacities[offset], bits
                        ).all_identifiers()
                    else:
                        neighbor_idents = overlay.neighbor_identifiers(
                            snapshot.node_for_index(i)
                        )
                    for ident in neighbor_idents:
                        j = bisect_left(idents, ident % size)
                        if j == count:
                            j = 0
                        resolves += 1
                        if j not in seen:
                            seen.add(j)
                            append(j)
                offsets[i + 1] = len(targets)
        self.offsets = offsets
        self.targets = targets
        perf.COUNTERS.kernel_resolves += resolves


class _SplitState:
    """Lazy slot tables of one region-splitting overlay.

    ``tables[i]`` maps a node's flat slot index ``level * (c - 1) +
    (sequence - 1)`` to the member index responsible for the slot's
    identifier, filled on first touch (-1 = not yet resolved).  Power
    ladders ``c**level`` are shared across nodes of equal fanout.

    The fanout column comes straight from the snapshot's capacity
    array for the capacity-aware splitter and is a constant fill for
    the uniform baseline — neither materializes nodes.
    """

    __slots__ = ("fanouts", "tables", "_powers")

    def __init__(self, overlay: Overlay) -> None:
        snapshot = overlay.snapshot
        count = len(snapshot)
        if isinstance(overlay, CamChordOverlay):
            self.fanouts = array("l", snapshot.capacities)
        elif isinstance(overlay, ChordOverlay):
            self.fanouts = array("l", [overlay.base]) * count
        else:
            self.fanouts = array("l", [overlay.fanout(node) for node in snapshot])
        self.tables: list[array | None] = [None] * count
        self._powers: dict[int, tuple[int, ...]] = {}

    def powers(self, fanout: int, size: int) -> tuple[int, ...]:
        """The ladder ``(1, c, c**2, ...)`` of powers below ``size``."""
        ladder = self._powers.get(fanout)
        if ladder is None:
            out = []
            power = 1
            while power < size:
                out.append(power)
                power *= fanout
            ladder = tuple(out)
            self._powers[fanout] = ladder
        return ladder


class _StateCache:
    """Bounded LRU of per-overlay memoized kernel state.

    Earlier revisions stashed the state as an attribute on the overlay
    itself, giving it the overlay's lifetime — a long campaign holding
    many overlays (the keyed group cache alone keeps 32) accumulated
    every neighbor table ever built.  This cache bounds that: least
    recently used states are dropped (``kernel_state_evictions``) and
    rebuilt on next use; states of dead overlays vanish with them via
    the weak-reference callback.

    Keys are ``id(overlay)`` guarded by a weakref identity check, so
    overlays need not be hashable and a recycled id can never be
    mistaken for its dead predecessor.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[int, tuple[weakref.ref, object]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, overlay: Overlay, factory):
        key = id(overlay)
        entry = self._entries.get(key)
        if entry is not None:
            ref, state = entry
            if ref() is overlay:
                self._entries.move_to_end(key)
                return state
            del self._entries[key]  # recycled id of a collected overlay
        state = factory(overlay)
        entries = self._entries

        def _on_death(_ref, key=key, entries=entries):
            entries.pop(key, None)

        entries[key] = (weakref.ref(overlay, _on_death), state)
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            perf.COUNTERS.kernel_state_evictions += 1
        return state

    def clear(self) -> None:
        self._entries.clear()


#: Most memoized states retained per tree family; sweeps touch their
#: overlays consecutively, so 8 covers every observed reuse pattern.
_STATE_CAPACITY = 8

_FLOOD_STATES = _StateCache(_STATE_CAPACITY)
_SPLIT_STATES = _StateCache(_STATE_CAPACITY)


def _flood_state(overlay: Overlay) -> _FloodState:
    return _FLOOD_STATES.get(overlay, _FloodState)


def _split_state(overlay: Overlay) -> _SplitState:
    return _SPLIT_STATES.get(overlay, _SplitState)


# -- one-pass tree construction ----------------------------------------------


def flood_tree(overlay: Overlay, source: Node) -> FlatTree:
    """Flood from ``source``: breadth-first over the CSR adjacency.

    Forwarding decisions are identical to
    :func:`repro.multicast.cam_koorde.flood_multicast` with no fanout
    cap — the CSR rows reproduce ``overlay.neighbors`` order exactly —
    but each delivery is two array stores instead of two dict inserts.
    """
    snapshot = overlay.snapshot
    state = _flood_state(overlay)
    count = len(snapshot)
    source_index = bisect_left(snapshot.identifiers, source.ident)

    parent_index = array("l", [UNREACHED]) * count
    depths = array("l", [UNREACHED]) * count
    child_count = array("l", [0]) * count
    order = array("l", [source_index])
    parent_index[source_index] = source_index
    depths[source_index] = 0

    offsets = state.offsets
    targets = state.targets
    queue = deque([source_index])
    pop = queue.popleft
    push = queue.append
    deliver = order.append
    while queue:
        i = pop()
        hop = depths[i] + 1
        children = 0
        for j in targets[offsets[i] : offsets[i + 1]]:
            if depths[j] >= 0:
                continue
            depths[j] = hop
            parent_index[j] = i
            deliver(j)
            push(j)
            children += 1
        if children:
            child_count[i] = children

    return _finish(snapshot, source.ident, parent_index, depths, child_count, order)


def region_split_tree(overlay: Overlay, source: Node) -> FlatTree:
    """The CAM-Chord MULTICAST (Section 3.4) as one flat pass.

    Child selection per node replays
    :func:`repro.multicast.cam_chord.select_child_regions` exactly —
    same slot order, same spare-capacity ceiling, same resolved-child
    guard — with every ``(level, sequence)`` slot resolution memoized in
    the overlay's lazy slot tables.
    """
    snapshot = overlay.snapshot
    state = _split_state(overlay)
    idents = snapshot.identifiers
    count = len(idents)
    size = snapshot.space.size
    fanouts = state.fanouts
    tables = state.tables
    source_index = bisect_left(idents, source.ident)

    parent_index = array("l", [UNREACHED]) * count
    depths = array("l", [UNREACHED]) * count
    child_count = array("l", [0]) * count
    order = array("l", [source_index])
    parent_index[source_index] = source_index
    depths[source_index] = 0

    fills = 0
    hits = 0
    queue = deque([(source_index, (source.ident - 1) % size)])
    pop = queue.popleft
    push = queue.append
    deliver = order.append
    while queue:
        i, limit = pop()
        ident = idents[i]
        remaining = (limit - ident) % size
        if remaining == 0:
            continue
        fanout = fanouts[i]
        ladder = state.powers(fanout, size)
        level = bisect_right(ladder, remaining) - 1
        sequence = remaining // ladder[level]
        table = tables[i]
        if table is None:
            table = tables[i] = array("l", [UNREACHED]) * (len(ladder) * (fanout - 1))

        # Candidate slots in the paper's order: level-i neighbors
        # preceding k (highest sequence first), spread-out level-(i-1)
        # neighbors (ceiling; see cam_chord module docstring), then the
        # successor slot (0, 1) picking up whatever remains.
        slots = [(level, seq) for seq in range(sequence, 0, -1)]
        if level >= 1:
            position = float(fanout)
            step = fanout / (fanout - sequence)
            for _ in range(fanout - sequence - 1):
                position -= step
                slots.append((level - 1, ceil(position)))
        slots.append((0, 1))

        hop = depths[i] + 1
        children = 0
        sublimit = limit
        for slot_level, slot_sequence in slots:
            neighbor_ident = (ident + slot_sequence * ladder[slot_level]) % size
            slot = slot_level * (fanout - 1) + slot_sequence - 1
            child = table[slot]
            if child < 0:
                child = bisect_left(idents, neighbor_ident)
                if child == count:
                    child = 0
                table[slot] = child
                fills += 1
            else:
                hits += 1
            offset = (idents[child] - ident) % size
            if 0 < offset <= remaining:
                if parent_index[child] != UNREACHED:
                    raise DuplicateDeliveryError(
                        f"node {idents[child]} received the message twice "
                        f"(parents {idents[parent_index[child]]} and {ident})"
                    )
                parent_index[child] = i
                depths[child] = hop
                deliver(child)
                push((child, sublimit))
                children += 1
                sublimit = (neighbor_ident - 1) % size
                remaining = (sublimit - ident) % size
        if children:
            child_count[i] = children

    perf.COUNTERS.kernel_resolves += fills
    perf.COUNTERS.kernel_resolves_saved += hits
    return _finish(snapshot, source.ident, parent_index, depths, child_count, order)


def _finish(
    snapshot: RingSnapshot,
    source_ident: int,
    parent_index: array,
    depths: array,
    child_count: array,
    order: array,
) -> FlatTree:
    """Wrap finished arrays, book the counters, emit the tree event."""
    tree = FlatTree(snapshot, source_ident, parent_index, depths, child_count, order)
    perf.COUNTERS.multicast_trees += 1
    perf.COUNTERS.kernel_trees += 1
    perf.COUNTERS.deliveries += tree.messages_sent
    if TRACER.enabled:
        # Structural trees have no clock and up to 100k edges — one
        # summary event per tree keeps tracing affordable at scale.
        TRACER.emit(0.0, "mc", "tree", source=source_ident, edges=tree.messages_sent)
    return tree
