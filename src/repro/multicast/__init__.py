"""Multicast dissemination routines over the overlays.

Four routines, matching the four systems of the paper's evaluation:

* :func:`cam_chord_multicast` — Section 3.4: recursive region
  splitting along the capacity-aware neighbor table (implicit balanced
  degree-varying tree, at most ``c_x`` children per node);
* :func:`cam_koorde_multicast` — Section 4.3: flooding with duplicate
  suppression over CAM-Koorde's evenly-spread neighbors;
* :func:`chord_broadcast` — the El-Ansary et al. broadcast on plain
  Chord (capacity-oblivious baseline);
* :func:`koorde_flood` — flooding over plain Koorde's clustered de
  Bruijn links (capacity-oblivious baseline).

The snapshot-driven routines (:func:`cam_chord_multicast`,
:func:`cam_koorde_multicast`, :func:`koorde_flood`) execute in the
flat-array kernel (:mod:`repro.multicast.kernel`) and return a
:class:`FlatTree` — a lazy view speaking the full
:class:`MulticastResult` vocabulary.  The traced/live data plane
(protocol peers, the reliable-multicast service) still records object
trees via :class:`MulticastResult`.
"""

from repro.multicast.delivery import MulticastResult
from repro.multicast.kernel import FlatTree, flood_tree, region_split_tree
from repro.multicast.cam_chord import cam_chord_multicast, reference_multicast
from repro.multicast.cam_koorde import cam_koorde_multicast, flood_multicast
from repro.multicast.chord_broadcast import chord_broadcast
from repro.multicast.koorde_flood import koorde_flood
from repro.multicast.session import MulticastGroup, SystemKind
from repro.multicast.service import MulticastService
from repro.multicast.plane import (
    PlaneReport,
    SendReceipt,
    SequenceAudit,
    SequenceLedger,
    ServicePlane,
)
from repro.multicast.tree_building import SharedTree, build_shared_tree

__all__ = [
    "MulticastService",
    "ServicePlane",
    "PlaneReport",
    "SendReceipt",
    "SequenceAudit",
    "SequenceLedger",
    "SharedTree",
    "build_shared_tree",
    "MulticastResult",
    "FlatTree",
    "flood_tree",
    "region_split_tree",
    "cam_chord_multicast",
    "reference_multicast",
    "cam_koorde_multicast",
    "flood_multicast",
    "chord_broadcast",
    "koorde_flood",
    "MulticastGroup",
    "SystemKind",
]
