"""Multicast dissemination routines over the overlays.

Four routines, matching the four systems of the paper's evaluation:

* :func:`cam_chord_multicast` — Section 3.4: recursive region
  splitting along the capacity-aware neighbor table (implicit balanced
  degree-varying tree, at most ``c_x`` children per node);
* :func:`cam_koorde_multicast` — Section 4.3: flooding with duplicate
  suppression over CAM-Koorde's evenly-spread neighbors;
* :func:`chord_broadcast` — the El-Ansary et al. broadcast on plain
  Chord (capacity-oblivious baseline);
* :func:`koorde_flood` — flooding over plain Koorde's clustered de
  Bruijn links (capacity-oblivious baseline).

Every routine returns a :class:`MulticastResult` recording the implicit
tree that the collective execution traced out.
"""

from repro.multicast.delivery import MulticastResult
from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.cam_koorde import cam_koorde_multicast, flood_multicast
from repro.multicast.chord_broadcast import chord_broadcast
from repro.multicast.koorde_flood import koorde_flood
from repro.multicast.session import MulticastGroup, SystemKind
from repro.multicast.service import MulticastService
from repro.multicast.tree_building import SharedTree, build_shared_tree

__all__ = [
    "MulticastService",
    "SharedTree",
    "build_shared_tree",
    "MulticastResult",
    "cam_chord_multicast",
    "cam_koorde_multicast",
    "flood_multicast",
    "chord_broadcast",
    "koorde_flood",
    "MulticastGroup",
    "SystemKind",
]
