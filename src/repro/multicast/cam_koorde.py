"""Flooding multicast with duplicate suppression (Section 4.3).

"When a node receives a multicast message, it forwards the message to
all neighbors except those that have received or are receiving the
message."  Neighbor links are bidirectional, so the check is a short
control handshake; the data message itself is sent at most once per
receiver.

The structural simulation models the distributed execution as a
breadth-first wave: all nodes that received the message at hop ``h``
forward during hop ``h + 1``.  Breadth-first order is the right model
because every node starts forwarding as soon as the first packet of a
message arrives (the paper's per-packet pipelining), so a node is
always reached along a shortest overlay path from the source.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro import perf
from repro.multicast.delivery import MulticastResult
from repro.overlay.base import Node, Overlay
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.trace.tracer import TRACER


def flood_multicast(
    overlay: Overlay,
    source: Node,
    fanout_limit: Callable[[Node], int] | None = None,
) -> MulticastResult:
    """Flood from ``source`` over ``overlay``'s neighbor relation.

    ``fanout_limit`` optionally caps how many *new* receivers a node
    may serve (a node never forwards to more than that many children).
    CAM-Koorde needs no cap — a node's neighbor count *is* its capacity
    — but the plain-Koorde baseline uses the cap to model nodes that
    refuse work beyond their configured degree.

    This is the ``record_delivery``-built object-tree path, kept as the
    executable specification of the flood (the kernel in
    :mod:`repro.multicast.kernel` is property-tested against it) and
    for capped floods, which the kernel does not model.
    """
    result = MulticastResult(source_ident=source.ident)
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        budget = fanout_limit(node) if fanout_limit is not None else None
        for neighbor in overlay.neighbors(node):
            if budget is not None and budget <= 0:
                break
            if result.was_delivered(neighbor.ident):
                continue
            result.record_delivery(neighbor.ident, node.ident)
            queue.append(neighbor)
            if budget is not None:
                budget -= 1
    perf.COUNTERS.multicast_trees += 1
    perf.COUNTERS.deliveries += result.messages_sent
    if TRACER.enabled:
        # One summary event per structural tree (see cam_chord note).
        TRACER.emit(
            0.0, "mc", "tree", source=source.ident, edges=result.messages_sent
        )
    return result


def cam_koorde_multicast(overlay: CamKoordeOverlay, source: Node):
    """Section 4.3 MULTICAST: flood over the CAM-Koorde links.

    The out-degree of every node in the implicit tree is bounded by its
    capacity automatically: a node has exactly ``c_x`` neighbors and
    one of them (its parent) already holds the message.  Executed by
    the flat-array kernel over the overlay's memoized CSR adjacency,
    edge-for-edge identical to :func:`flood_multicast`.
    """
    from repro.multicast.kernel import flood_tree

    return flood_tree(overlay, source)
