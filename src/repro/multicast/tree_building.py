"""The tree-building architecture of Section 5.1, for comparison.

"In the approach of tree building, nodes from different multicast
groups participate in a single overlay network, and each group forms a
multicast tree on top of the overlay network by using reverse path
forwarding."  (This is the Scribe/Bayeux family the paper contrasts
its flooding approach with.)

Construction: the group key hashes to a *rendezvous* node (the tree
root).  Every member routes a JOIN toward the key; the reverse of its
lookup path becomes its branch, stopping at the first node that is
already on the tree.  Any source unicasts its message to the root,
which disseminates down the shared tree.

Two properties the paper's Section 5.1 analysis predicts — and this
module lets experiments measure — distinguish it from the CAM
approach:

* forwarding load concentrates on interior nodes while leaf members
  (the majority for fanout > 2) forward nothing;
* node degrees follow routing convergence, **not** capacities: a node
  near the root aggregates the branches of everyone behind it, so its
  out-degree routinely exceeds its capacity ("the multicast tree is
  constrained by the node capacities but the global overlay is not" —
  the open problem the paper's Section 5.1 closes with).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.overlay.base import Node, Overlay, RingSnapshot


@dataclass
class SharedTree:
    """One group's shared multicast tree on a global overlay.

    ``parent`` maps member identifiers to their tree parent (root maps
    to ``None``); ``depth`` is the distance to the root.
    """

    root_ident: int
    parent: dict[int, int | None] = field(default_factory=dict)
    depth: dict[int, int] = field(default_factory=dict)

    def children_counts(self) -> dict[int, int]:
        """Out-degree of every tree node."""
        counts: dict[int, int] = {ident: 0 for ident in self.parent}
        for child, parent in self.parent.items():
            if parent is not None:
                counts[parent] += 1
        return counts

    def capacity_violations(self, snapshot: RingSnapshot) -> dict[int, int]:
        """Nodes whose tree out-degree exceeds their capacity, with the
        excess — the §5.1 "disparity" made concrete."""
        violations: dict[int, int] = {}
        for ident, count in self.children_counts().items():
            capacity = snapshot.node_at(ident).capacity
            if count > capacity:
                violations[ident] = count - capacity
        return violations

    def delivery_path_length(self, source_ident: int, member_ident: int) -> int:
        """Overlay hops from ``source`` to ``member`` through the root:
        up the source's branch, down the member's."""
        if source_ident not in self.depth or member_ident not in self.depth:
            raise KeyError("both endpoints must be tree members")
        return self.depth[source_ident] + self.depth[member_ident]

    def forwarding_load(
        self, message_count: int, message_kbits: float = 1.0
    ) -> Mapping[int, float]:
        """Kilobits each member relays when ``message_count`` messages
        (from arbitrary sources) all traverse the shared tree downward.

        The root-ward unicast legs are excluded, as in the paper's
        Section 5.1 accounting (they are ordinary unicast traffic).
        """
        return {
            ident: count * message_count * message_kbits
            for ident, count in self.children_counts().items()
        }


def build_shared_tree(overlay: Overlay, group_key: int) -> SharedTree:
    """Reverse-path-forwarding construction over every member.

    Each member's JOIN follows the overlay's LOOKUP route toward the
    group key; the traversed nodes are grafted onto the tree in root-to-
    member order (so parents always exist before their children), and a
    branch stops growing where it meets the existing tree.
    """
    snapshot = overlay.snapshot
    root = snapshot.resolve(group_key)
    tree = SharedTree(root_ident=root.ident)
    tree.parent[root.ident] = None
    tree.depth[root.ident] = 0
    for member in snapshot:
        if member.ident in tree.parent:
            continue
        route = _join_route(overlay, member, group_key, root)
        # route runs member -> ... -> root; graft from the root end down
        for position in range(len(route) - 2, -1, -1):
            node = route[position]
            towards_root = route[position + 1]
            if node.ident in tree.parent:
                continue
            tree.parent[node.ident] = towards_root.ident
            tree.depth[node.ident] = tree.depth[towards_root.ident] + 1
    return tree


def _join_route(
    overlay: Overlay, member: Node, group_key: int, root: Node
) -> list[Node]:
    """The member's lookup path toward the rendezvous, ending at the
    root (appended if the route stopped one short of it)."""
    result = overlay.lookup(member, group_key)
    route = list(result.path)
    if route[-1].ident != root.ident:
        route.append(root)
    if route[0].ident != member.ident:  # pragma: no cover - lookup contract
        route.insert(0, member)
    return route
