"""Delivery accounting: the implicit multicast tree of one message.

"No explicit tree is built" (Section 3.4) — the tree exists only as
the union of forwarding decisions.  :class:`MulticastResult` records
those decisions so the metrics layer can measure what the paper plots:
path lengths (= tree depths), children counts, and the bottleneck
bandwidth that determines sustainable throughput.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


class DuplicateDeliveryError(AssertionError):
    """A node received the same multicast message twice.

    For CAM-Chord this is an algorithm-invariant violation (the region
    splitting is supposed to partition ``(x, k]``); the recorder raises
    rather than silently double-counting.
    """


@dataclass
class MulticastResult:
    """The implicit tree traced by one multicast from ``source_ident``.

    ``parent`` maps every receiver to the node it got the message from
    (the source maps to ``None``); ``depth`` is the overlay hop count
    from the source, i.e. the paper's *multicast path length*.
    ``messages_sent`` counts data transmissions (equals the number of
    receivers for duplicate-free dissemination).
    """

    source_ident: int
    parent: dict[int, int | None] = field(default_factory=dict)
    depth: dict[int, int] = field(default_factory=dict)
    messages_sent: int = 0

    def __post_init__(self) -> None:
        if not self.parent:
            self.parent[self.source_ident] = None
            self.depth[self.source_ident] = 0

    # -- recording ----------------------------------------------------

    def record_delivery(self, child_ident: int, parent_ident: int) -> None:
        """Record that ``parent_ident`` forwarded the message to
        ``child_ident`` (one overlay hop)."""
        if child_ident in self.parent:
            raise DuplicateDeliveryError(
                f"node {child_ident} received the message twice "
                f"(parents {self.parent[child_ident]} and {parent_ident})"
            )
        if parent_ident not in self.parent:
            raise ValueError(
                f"parent {parent_ident} forwarded before receiving the message"
            )
        self.parent[child_ident] = parent_ident
        self.depth[child_ident] = self.depth[parent_ident] + 1
        self.messages_sent += 1

    def was_delivered(self, ident: int) -> bool:
        """True when the node already received (or is receiving) the
        message — the CAM-Koorde Section 4.3 forwarding check."""
        return ident in self.parent

    # -- tree structure -----------------------------------------------

    @property
    def receiver_count(self) -> int:
        """Number of nodes that received the message, source included."""
        return len(self.parent)

    def children_counts(self) -> Counter[int]:
        """Out-degree of every node in the implicit tree (zero-degree
        leaves are included with count 0)."""
        counts: Counter[int] = Counter({ident: 0 for ident in self.parent})
        for child, parent in self.parent.items():
            if parent is not None:
                counts[parent] += 1
        return counts

    def internal_nodes(self) -> list[int]:
        """Identifiers of nodes with at least one child."""
        return [ident for ident, count in self.children_counts().items() if count > 0]

    def path_length_histogram(self) -> Counter[int]:
        """The Figure 9/10 statistic: #nodes reached at each hop count."""
        return Counter(self.depth.values())

    def average_path_length(self) -> float:
        """Mean hops from the source over all receivers except itself."""
        others = [hops for ident, hops in self.depth.items() if ident != self.source_ident]
        if not others:
            return 0.0
        return sum(others) / len(others)

    def max_path_length(self) -> int:
        """Tree depth: the longest source-to-member path."""
        return max(self.depth.values())

    def path_to_source(self, ident: int) -> list[int]:
        """The delivery path from ``ident`` back to the source."""
        if ident not in self.parent:
            raise KeyError(f"node {ident} never received the message")
        path = [ident]
        current: int | None = ident
        while True:
            current = self.parent[current]
            if current is None:
                return path
            path.append(current)

    def verify_exactly_once(self, member_idents: set[int]) -> None:
        """Assert the headline invariant: every member received the
        message exactly once (Section 3.4: "every member node will
        receive one and only one copy")."""
        received = set(self.parent)
        missing = member_idents - received
        extra = received - member_idents
        if missing:
            sample = sorted(missing)[:5]
            raise AssertionError(
                f"{len(missing)} members never received the message, e.g. {sample}"
            )
        if extra:
            sample = sorted(extra)[:5]
            raise AssertionError(
                f"{len(extra)} non-members received the message, e.g. {sample}"
            )
