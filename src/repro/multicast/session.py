"""High-level public API: build a group, multicast from any member.

A :class:`MulticastGroup` bundles one membership snapshot with one of
the registered overlay systems and its dissemination routine.  This is
the facade most library users (and all examples) interact with::

    group = MulticastGroup.build(
        "cam-chord",                    # or SystemKind.CAM_CHORD
        bandwidths_kbps=[550, 900, 410, ...],
        per_link_kbps=100,
        seed=7,
    )
    result = group.multicast_from(group.random_member())
    print(result.average_path_length())

Which systems exist, how their overlays are built and which routine
disseminates a message all live in the :mod:`repro.systems` registry —
the group just resolves its :class:`~repro.systems.SystemDescriptor`
and delegates.

Any member can be the source ("any source multicast"): each source
implicitly gets its own tree, which is how the flooding approach
spreads forwarding load across the whole group (Section 5.1).
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.capacity.model import CapacityModel
from repro.idspace.ring import IdentifierSpace
from repro.multicast.delivery import MulticastResult
from repro.overlay.base import Node, Overlay, RingSnapshot, build_snapshot
from repro.systems import (
    DEFAULT_UNIFORM_FANOUT,
    MemberSpec,
    SystemDescriptor,
    SystemKind,
    resolve,
)

#: Identifier-space width used throughout the paper's evaluation.
DEFAULT_SPACE_BITS = 19

#: Fallback stream for callers that do not pass their own ``rng``.
#: Seeded, so two runs of the same process draw the same sequence —
#: nothing in the library may consume entropy the seed-determinism
#: audit cannot replay.
_DEFAULT_RNG = Random(0x5EED)

__all__ = ["DEFAULT_SPACE_BITS", "MulticastGroup", "SystemKind"]


class MulticastGroup:
    """One multicast group with its dedicated overlay network.

    "A dedicated CAM-Chord or CAM-Koorde overlay network is established
    for each multicast group" (Section 2) — hence group == overlay.
    """

    def __init__(
        self,
        kind: "SystemKind | SystemDescriptor | str",
        overlay: Overlay,
    ) -> None:
        self._system = resolve(kind)
        self._overlay = overlay

    # -- construction ---------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        kind: "SystemKind | SystemDescriptor | str",
        snapshot: RingSnapshot,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    ) -> "MulticastGroup":
        """Wrap an existing membership snapshot.

        ``uniform_fanout`` configures the capacity-oblivious baselines
        (Chord base / Koorde degree) and is ignored by the CAM systems.
        """
        system = resolve(kind)
        overlay = system.build_overlay(snapshot, uniform_fanout=uniform_fanout)
        return cls(system, overlay)

    @classmethod
    def from_member_spec(
        cls,
        kind: "SystemKind | SystemDescriptor | str",
        spec: MemberSpec,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    ) -> "MulticastGroup":
        """Materialize the static world of a frozen membership spec.

        The same spec handed to a :class:`~repro.protocol.cluster.Cluster`
        yields the live world of the same members — the basis of the
        static-vs-live parity harness (:mod:`repro.systems.parity`).
        """
        system = resolve(kind)
        snapshot = spec.snapshot(min_capacity=system.min_capacity)
        return cls.from_snapshot(system, snapshot, uniform_fanout=uniform_fanout)

    @classmethod
    def build(
        cls,
        kind: "SystemKind | SystemDescriptor | str",
        bandwidths_kbps: Sequence[float],
        per_link_kbps: float,
        space_bits: int = DEFAULT_SPACE_BITS,
        uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
        seed: int = 0,
    ) -> "MulticastGroup":
        """Build a group from member upload bandwidths.

        Capacities follow the paper's rule ``c_x = floor(B_x / p)``
        with ``p = per_link_kbps``, clamped to the overlay's floor.
        Members are placed at hash-uniform identifiers drawn with
        ``seed``.
        """
        system = resolve(kind)
        model = CapacityModel(per_link_kbps, minimum=system.min_capacity)
        capacities = model.capacities(list(bandwidths_kbps))
        snapshot = build_snapshot(
            IdentifierSpace(space_bits),
            capacities,
            bandwidths=list(bandwidths_kbps),
            rng=Random(seed),
        )
        return cls.from_snapshot(system, snapshot, uniform_fanout=uniform_fanout)

    # -- introspection ----------------------------------------------------

    @property
    def kind(self) -> SystemKind:
        """Which of the registered systems this group runs."""
        return self._system.kind

    @property
    def system(self) -> SystemDescriptor:
        """The full descriptor of the system this group runs."""
        return self._system

    @property
    def overlay(self) -> Overlay:
        """The underlying overlay network."""
        return self._overlay

    @property
    def snapshot(self) -> RingSnapshot:
        """The membership view."""
        return self._overlay.snapshot

    def __len__(self) -> int:
        return len(self.snapshot)

    def random_member(self, rng: Random | None = None) -> Node:
        """A uniformly random member (e.g. to act as multicast source).

        Without an explicit ``rng`` the draw comes from a process-global
        *seeded* stream, so repeated runs of the same program pick the
        same members (experiments that need independent streams pass
        their own ``Random``)."""
        return self.snapshot.random_node(rng if rng is not None else _DEFAULT_RNG)

    # -- the service ------------------------------------------------------

    def multicast_from(self, source: Node) -> MulticastResult:
        """Deliver one message from ``source`` to every other member.

        Returns the implicit tree the dissemination traced.  Raises if
        ``source`` is not a member.
        """
        if source.ident not in self.snapshot:
            raise KeyError(f"source {source.ident} is not a group member")
        return self._system.run_multicast(self._overlay, source)

    def lookup(self, start: Node, key: int):
        """Resolve the member responsible for ``key`` starting at
        ``start`` (used by join/leave in the live protocols)."""
        return self._overlay.lookup(start, key)
