"""High-level public API: build a group, multicast from any member.

A :class:`MulticastGroup` bundles one membership snapshot with one of
the four overlay systems and its dissemination routine.  This is the
facade most library users (and all examples) interact with::

    group = MulticastGroup.build(
        SystemKind.CAM_CHORD,
        bandwidths_kbps=[550, 900, 410, ...],
        per_link_kbps=100,
        seed=7,
    )
    result = group.multicast_from(group.random_member())
    print(result.average_path_length())

Any member can be the source ("any source multicast"): each source
implicitly gets its own tree, which is how the flooding approach
spreads forwarding load across the whole group (Section 5.1).
"""

from __future__ import annotations

import enum
from random import Random
from typing import Sequence

from repro.capacity.model import (
    CAM_CHORD_MIN_CAPACITY,
    CAM_KOORDE_MIN_CAPACITY,
    CapacityModel,
)
from repro.idspace.ring import IdentifierSpace
from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.cam_koorde import cam_koorde_multicast
from repro.multicast.delivery import MulticastResult
from repro.multicast.koorde_flood import koorde_flood
from repro.overlay.base import Node, Overlay, RingSnapshot, build_snapshot
from repro.overlay.cam_chord import CamChordOverlay
from repro.overlay.cam_koorde import CamKoordeOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.koorde import KoordeOverlay

#: Identifier-space width used throughout the paper's evaluation.
DEFAULT_SPACE_BITS = 19


class SystemKind(enum.Enum):
    """The four systems compared in Section 6."""

    CAM_CHORD = "cam-chord"
    CAM_KOORDE = "cam-koorde"
    CHORD = "chord"
    KOORDE = "koorde"

    @property
    def capacity_aware(self) -> bool:
        """True for the paper's contributions, False for the baselines."""
        return self in (SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE)

    @property
    def min_capacity(self) -> int:
        """The smallest capacity the overlay construction accepts."""
        if self is SystemKind.CAM_KOORDE:
            return CAM_KOORDE_MIN_CAPACITY
        if self is SystemKind.CAM_CHORD:
            return CAM_CHORD_MIN_CAPACITY
        return 1


class MulticastGroup:
    """One multicast group with its dedicated overlay network.

    "A dedicated CAM-Chord or CAM-Koorde overlay network is established
    for each multicast group" (Section 2) — hence group == overlay.
    """

    def __init__(self, kind: SystemKind, overlay: Overlay) -> None:
        self._kind = kind
        self._overlay = overlay

    # -- construction ---------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        kind: SystemKind,
        snapshot: RingSnapshot,
        uniform_fanout: int = 2,
    ) -> "MulticastGroup":
        """Wrap an existing membership snapshot.

        ``uniform_fanout`` configures the capacity-oblivious baselines
        (Chord base / Koorde degree) and is ignored by the CAM systems.
        """
        overlay: Overlay
        if kind is SystemKind.CAM_CHORD:
            overlay = CamChordOverlay(snapshot)
        elif kind is SystemKind.CAM_KOORDE:
            overlay = CamKoordeOverlay(snapshot)
        elif kind is SystemKind.CHORD:
            overlay = ChordOverlay(snapshot, base=uniform_fanout)
        elif kind is SystemKind.KOORDE:
            overlay = KoordeOverlay(snapshot, degree=uniform_fanout)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown system kind: {kind}")
        return cls(kind, overlay)

    @classmethod
    def build(
        cls,
        kind: SystemKind,
        bandwidths_kbps: Sequence[float],
        per_link_kbps: float,
        space_bits: int = DEFAULT_SPACE_BITS,
        uniform_fanout: int = 2,
        seed: int = 0,
    ) -> "MulticastGroup":
        """Build a group from member upload bandwidths.

        Capacities follow the paper's rule ``c_x = floor(B_x / p)``
        with ``p = per_link_kbps``, clamped to the overlay's floor.
        Members are placed at hash-uniform identifiers drawn with
        ``seed``.
        """
        model = CapacityModel(per_link_kbps, minimum=kind.min_capacity)
        capacities = model.capacities(list(bandwidths_kbps))
        snapshot = build_snapshot(
            IdentifierSpace(space_bits),
            capacities,
            bandwidths=list(bandwidths_kbps),
            rng=Random(seed),
        )
        return cls.from_snapshot(kind, snapshot, uniform_fanout=uniform_fanout)

    # -- introspection ----------------------------------------------------

    @property
    def kind(self) -> SystemKind:
        """Which of the four systems this group runs."""
        return self._kind

    @property
    def overlay(self) -> Overlay:
        """The underlying overlay network."""
        return self._overlay

    @property
    def snapshot(self) -> RingSnapshot:
        """The membership view."""
        return self._overlay.snapshot

    def __len__(self) -> int:
        return len(self.snapshot)

    def random_member(self, rng: Random | None = None) -> Node:
        """A uniformly random member (e.g. to act as multicast source)."""
        return self.snapshot.random_node(rng if rng is not None else Random())

    # -- the service ------------------------------------------------------

    def multicast_from(self, source: Node) -> MulticastResult:
        """Deliver one message from ``source`` to every other member.

        Returns the implicit tree the dissemination traced.  Raises if
        ``source`` is not a member.
        """
        if source.ident not in self.snapshot:
            raise KeyError(f"source {source.ident} is not a group member")
        if self._kind is SystemKind.CAM_CHORD:
            assert isinstance(self._overlay, CamChordOverlay)
            return cam_chord_multicast(self._overlay, source)
        if self._kind is SystemKind.CAM_KOORDE:
            assert isinstance(self._overlay, CamKoordeOverlay)
            return cam_koorde_multicast(self._overlay, source)
        if self._kind is SystemKind.CHORD:
            assert isinstance(self._overlay, ChordOverlay)
            # The Figure 6 "Chord" baseline: the paper's balanced
            # region-splitting multicast with a *uniform* fanout equal
            # to the finger base, ignoring node bandwidth.  (El-Ansary's
            # unbalanced broadcast is available separately as
            # ``chord_broadcast`` and compared in the balance ablation.)
            return cam_chord_multicast(self._overlay, source)
        assert isinstance(self._overlay, KoordeOverlay)
        return koorde_flood(self._overlay, source)

    def lookup(self, start: Node, key: int):
        """Resolve the member responsible for ``key`` starting at
        ``start`` (used by join/leave in the live protocols)."""
        return self._overlay.lookup(start, key)
