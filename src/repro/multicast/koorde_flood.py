"""Flooding multicast over plain Koorde — the de Bruijn baseline.

Identical dissemination rule to CAM-Koorde (Section 4.3), but over
Koorde's left-shift neighbor links.  Because those links differ only in
their low-order bits, a node's neighbors cluster on the ring and often
resolve to the same physical node: the effective fanout collapses, the
implicit trees get deep, and — since the degree is uniform regardless
of upload bandwidth — a slow node with full fanout throttles the whole
session.  Both effects are exactly what Figures 6 and 11 hold against
Koorde.
"""

from __future__ import annotations

from repro.overlay.base import Node
from repro.overlay.koorde import KoordeOverlay


def koorde_flood(overlay: KoordeOverlay, source: Node):
    """Flood from ``source`` over the Koorde links.

    Connectivity note: de Bruijn links plus the ring (every node knows
    predecessor and successor) keep the overlay connected, so the flood
    always reaches every member even when the de Bruijn pointers of a
    whole region collapse onto one node.  Executed by the flat-array
    kernel (:mod:`repro.multicast.kernel`) over the overlay's memoized
    CSR adjacency.
    """
    from repro.multicast.kernel import flood_tree

    return flood_tree(overlay, source)
