"""Shared-memory membership buffers: one flat copy per sweep point.

A :class:`MemberBuffer` freezes one membership snapshot as three
contiguous 8-byte columns — identifiers (``Q``), capacities (``q``)
and upload bandwidths (``d``) — packed back to back in a single
``multiprocessing.shared_memory`` segment.  The parent creates the
segment once per distinct member request; every ``--jobs`` worker then
*attaches* it (an mmap of the same physical pages, no copy, no pickle)
and reads the columns through zero-copy ``memoryview`` casts wrapped
in an array-backed :class:`~repro.overlay.base.RingSnapshot`.

Lifecycle: the creating process owns the segment and must
:meth:`destroy` it (close + unlink) — the parallel engine does so in a
``finally`` block, so segments never outlive a sweep even when a task
raises.  Workers keep their attachment for the life of the process;
the OS reclaims the mapping when the pool shuts down, and the segment
itself disappears with the parent's unlink.

When shared memory is unavailable (platform, permissions, exhausted
``/dev/shm``) — or explicitly disabled via ``REPRO_NO_SHM=1`` — the
buffer falls back to carrying its columns *by value*: the handle then
holds the raw column bytes and travels through the ordinary pickling
path.  Results are identical either way; only the copy count differs.

Python < 3.13 registers every ``SharedMemory`` — attached segments
included — with the ``resource_tracker``, which would unlink the
parent's segment when the first worker exits (and warn about leaks).
:func:`_attach_untracked` undoes that registration on attach; only the
owner unlinks.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Sequence

from repro import perf
from repro.idspace.ring import IdentifierSpace
from repro.overlay.base import RingSnapshot

#: Set to "1" to force the by-value fallback even where shm works.
DISABLE_ENV = "REPRO_NO_SHM"

#: Every column uses 8-byte elements: Q (idents), q (capacities), d (bw).
_WORD = 8


@dataclass(frozen=True)
class ShmHandle:
    """Picklable reference to a shared-memory-backed buffer."""

    shm_name: str
    count: int
    space_bits: int


@dataclass(frozen=True)
class InlineHandle:
    """Fallback handle carrying the columns by value (the pickling path)."""

    idents: bytes
    capacities: bytes
    bandwidths: bytes
    count: int
    space_bits: int


BufferHandle = ShmHandle | InlineHandle


def _shared_memory_enabled() -> bool:
    return os.environ.get(DISABLE_ENV, "") != "1"


def _attach_untracked(name: str):
    """Attach an existing segment without resource-tracker ownership."""
    from multiprocessing.shared_memory import SharedMemory

    try:
        return SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        shm = SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        return shm


class MemberBuffer:
    """Frozen flat membership columns, shared-memory backed when possible.

    Construct through :meth:`from_snapshot` (owner side) or
    :meth:`attach` (worker side); never directly.  :meth:`snapshot`
    wraps the columns in an array-backed ring snapshot — one snapshot
    object per buffer, so every consumer in a worker shares it.
    """

    __slots__ = (
        "count",
        "space_bits",
        "idents",
        "capacities",
        "bandwidths",
        "_shm",
        "_owner",
        "_views",
        "_snapshot",
    )

    def __init__(
        self,
        count: int,
        space_bits: int,
        idents: Sequence[int],
        capacities: Sequence[int],
        bandwidths: Sequence[float],
        shm=None,
        owner: bool = False,
        views: tuple = (),
    ) -> None:
        self.count = count
        self.space_bits = space_bits
        self.idents = idents
        self.capacities = capacities
        self.bandwidths = bandwidths
        self._shm = shm
        self._owner = owner
        self._views = list(views)
        self._snapshot: RingSnapshot | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: RingSnapshot) -> "MemberBuffer":
        """Pack a snapshot's columns into a fresh buffer (owner side)."""
        count = len(snapshot)
        space_bits = snapshot.space.bits
        idents = array("Q", snapshot.identifiers)
        capacities = array("q", snapshot.capacities)
        bandwidths = array("d", snapshot.bandwidths)
        if _shared_memory_enabled():
            try:
                return cls._create_shared(
                    count, space_bits, idents, capacities, bandwidths
                )
            except (ImportError, OSError):
                pass
        perf.COUNTERS.shm_fallbacks += 1
        return cls(count, space_bits, idents, capacities, bandwidths)

    @classmethod
    def _create_shared(
        cls,
        count: int,
        space_bits: int,
        idents: array,
        capacities: array,
        bandwidths: array,
    ) -> "MemberBuffer":
        from multiprocessing.shared_memory import SharedMemory

        shm = SharedMemory(create=True, size=3 * _WORD * count)
        try:
            base = shm.buf
            column = _WORD * count
            base[0:column] = memoryview(idents).cast("B")
            base[column : 2 * column] = memoryview(capacities).cast("B")
            base[2 * column : 3 * column] = memoryview(bandwidths).cast("B")
            views = cls._column_views(shm, count)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        perf.COUNTERS.shm_creates += 1
        return cls(count, space_bits, *views, shm=shm, owner=True, views=views)

    @classmethod
    def attach(cls, handle: BufferHandle) -> "MemberBuffer":
        """Materialize a buffer from a handle (worker side).

        Shared-memory handles attach zero-copy (counted in
        ``shm_attaches``); inline handles rebuild their arrays from the
        carried bytes.
        """
        if isinstance(handle, InlineHandle):
            idents = array("Q")
            idents.frombytes(handle.idents)
            capacities = array("q")
            capacities.frombytes(handle.capacities)
            bandwidths = array("d")
            bandwidths.frombytes(handle.bandwidths)
            return cls(handle.count, handle.space_bits, idents, capacities, bandwidths)
        shm = _attach_untracked(handle.shm_name)
        views = cls._column_views(shm, handle.count)
        perf.COUNTERS.shm_attaches += 1
        return cls(
            handle.count, handle.space_bits, *views, shm=shm, owner=False, views=views
        )

    @staticmethod
    def _column_views(shm, count: int) -> tuple:
        """Zero-copy typed views over the three packed columns."""
        base = shm.buf
        column = _WORD * count
        return (
            base[0:column].cast("Q"),
            base[column : 2 * column].cast("q"),
            base[2 * column : 3 * column].cast("d"),
        )

    # -- use -------------------------------------------------------------

    @property
    def shared(self) -> bool:
        """True when backed by a shared-memory segment."""
        return self._shm is not None

    def handle(self) -> BufferHandle:
        """The picklable reference workers attach (or rebuild) from."""
        if self._shm is not None:
            return ShmHandle(self._shm.name, self.count, self.space_bits)
        return InlineHandle(
            array("Q", self.idents).tobytes(),
            array("q", self.capacities).tobytes(),
            array("d", self.bandwidths).tobytes(),
            self.count,
            self.space_bits,
        )

    def snapshot(self) -> RingSnapshot:
        """The array-backed ring snapshot over this buffer's columns.

        Cached: one snapshot object per buffer, so groups built for
        different systems over the same members share it (preserving
        the snapshot-identity property of the keyed caches).
        """
        if self._snapshot is None:
            self._snapshot = RingSnapshot._from_arrays(
                IdentifierSpace(self.space_bits),
                self.idents,
                self.capacities,
                self.bandwidths,
            )
        return self._snapshot

    # -- lifecycle -------------------------------------------------------

    def destroy(self) -> None:
        """Release the columns and, when owner, unlink the segment.

        Counted in ``shm_detaches`` (shared buffers only), so a
        parent-side sweep balances ``shm_creates == shm_detaches``.
        Safe to call twice; after the first call the buffer (and any
        snapshot served from it) must not be touched again.
        """
        if self._shm is None:
            return
        self._snapshot = None
        for view in self._views:
            view.release()
        self._views.clear()
        shm, self._shm = self._shm, None
        shm.close()
        if self._owner:
            shm.unlink()
        perf.COUNTERS.shm_detaches += 1
