"""Process-global exchange of published membership buffers.

The parallel engine moves membership data to workers in three steps:

* **publish** (parent, before the pool starts): one
  :class:`~repro.membership.buffer.MemberBuffer` per distinct member
  request, created from the already-built snapshot;
* **install** (worker, pool initializer): the picklable handle map
  from :func:`export_handles` — nothing attaches yet, so no counter
  moves outside a task's observability delta window;
* **acquire** (worker, inside a task): the snapshot for one request.
  The first touch of a buffer attaches it (zero-copy) and caches the
  attachment for the worker's lifetime; every later acquire is a dict
  hit.  Summing per-task deltas across the pool therefore counts each
  physical attach exactly once.

:func:`acquire` returns ``None`` for unpublished requests — callers
fall back to their local build path, which is also what the serial
engine (nothing published) and the fallback buffers exercise.
:func:`release_all` closes and unlinks everything published; the
engine calls it in a ``finally`` so segments cannot leak past a sweep.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.membership.buffer import BufferHandle, MemberBuffer
from repro.overlay.base import RingSnapshot

#: parent side: request -> owned buffer (created via publish)
_published: dict[Hashable, MemberBuffer] = {}

#: worker side: request -> handle (installed by the pool initializer)
_handles: dict[Hashable, BufferHandle] = {}

#: worker side: request -> attached buffer (first-touch cache)
_attached: dict[Hashable, MemberBuffer] = {}


def publish(key: Hashable, snapshot: RingSnapshot) -> None:
    """Create (once) and register the buffer for one member request."""
    if key not in _published:
        _published[key] = MemberBuffer.from_snapshot(snapshot)


def export_handles() -> dict[Hashable, BufferHandle]:
    """Picklable handles of everything published (pool initargs)."""
    return {key: buffer.handle() for key, buffer in _published.items()}


def install(handles: Mapping[Hashable, BufferHandle]) -> None:
    """Adopt a parent's handle map (runs in the pool initializer).

    Existing attachments are destroyed, not just dropped: their typed
    views must be released before the segment mapping can close.
    ``_attached`` only ever holds non-owning buffers, so destroying
    them never unlinks a segment some other process still needs.
    """
    _handles.clear()
    while _attached:
        _, buffer = _attached.popitem()
        buffer.destroy()
    _handles.update(handles)


def acquire(key: Hashable) -> RingSnapshot | None:
    """The shared snapshot for one request, or None when unpublished.

    Worker processes attach lazily on first touch; the publishing
    process answers from its own buffer directly (fork-inherited
    copies of ``_published`` behave the same way, but explicitly
    installed handles take precedence so attaches are counted).
    """
    buffer = _attached.get(key)
    if buffer is None:
        handle = _handles.get(key)
        if handle is not None:
            buffer = MemberBuffer.attach(handle)
            _attached[key] = buffer
        else:
            buffer = _published.get(key)
            if buffer is None:
                return None
    return buffer.snapshot()


def release_all() -> None:
    """Destroy every published buffer (close + unlink, idempotent)."""
    while _published:
        _, buffer = _published.popitem()
        buffer.destroy()
