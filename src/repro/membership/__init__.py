"""Shared membership representation for the million-member scale tier.

One contiguous buffer per sweep point (:mod:`repro.membership.buffer`)
plus the publish/install/acquire exchange the parallel engine moves it
through (:mod:`repro.membership.exchange`).
"""

from repro.membership.buffer import (
    DISABLE_ENV,
    BufferHandle,
    InlineHandle,
    MemberBuffer,
    ShmHandle,
)

__all__ = [
    "DISABLE_ENV",
    "BufferHandle",
    "InlineHandle",
    "MemberBuffer",
    "ShmHandle",
]
