"""Message-passing network over the event simulator.

Endpoints register under their overlay identifier; ``send`` delivers a
:class:`Message` after the latency model's one-way delay, or silently
drops it when the destination has crashed / departed (exactly how a UDP
datagram to a dead host behaves), when the loss model fires, or when
the pair is partitioned.  A lightweight request/response facility with
timeouts is layered on top — the building block for the Chord-style
maintenance RPCs in :mod:`repro.protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Protocol

from repro.sim.engine import Future, Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.trace.tracer import TRACER


@dataclass(frozen=True)
class Message:
    """One datagram on the simulated network."""

    sender: int
    recipient: int
    kind: str
    payload: Any = None
    request_id: int | None = None
    is_reply: bool = False


class Endpoint(Protocol):
    """What the network expects of a registered host."""

    def handle_message(self, message: Message) -> None:
        """Process one delivered datagram."""


@dataclass
class NetworkStats:
    """Counters for everything the network did.

    Besides the global totals, drops and timeouts are broken down by
    message *kind* — ``drops_by_kind[kind][reason]`` and
    ``timeouts_by_kind[kind]`` — so an experiment footer can say which
    traffic class (maintenance RPCs vs multicast data) the network
    actually ate.
    """

    sent: int = 0
    delivered: int = 0
    dropped_dead: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    timeouts: int = 0
    drops_by_kind: dict[str, dict[str, int]] = field(default_factory=dict)
    timeouts_by_kind: dict[str, int] = field(default_factory=dict)
    delivered_by_kind: dict[str, int] = field(default_factory=dict)

    def count_drop(self, kind: str, reason: str) -> None:
        """Record one dropped datagram of ``kind`` for ``reason``."""
        per_kind = self.drops_by_kind.setdefault(kind, {})
        per_kind[reason] = per_kind.get(reason, 0) + 1

    def count_delivered(self, kind: str) -> None:
        """Record one delivered datagram of ``kind``.

        The per-kind delivery totals give the fault-injection oracles an
        exact accounting identity to check: every delivered ``mc_flood``
        datagram is either a first delivery or a suppressed duplicate.
        """
        self.delivered_by_kind[kind] = self.delivered_by_kind.get(kind, 0) + 1

    def count_timeout(self, kind: str) -> None:
        """Record one expired request of ``kind``."""
        self.timeouts_by_kind[kind] = self.timeouts_by_kind.get(kind, 0) + 1

    def by_kind_summary(self) -> str:
        """One compact footer line of per-kind drops and timeouts."""
        parts = []
        for kind in sorted(self.drops_by_kind):
            reasons = self.drops_by_kind[kind]
            detail = " ".join(
                f"{reason}={reasons[reason]}" for reason in sorted(reasons)
            )
            parts.append(f"{kind}[{detail}]")
        drops = " ".join(parts) if parts else "none"
        timeouts = (
            " ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.timeouts_by_kind.items())
            )
            or "none"
        )
        return f"drops: {drops} | timeouts: {timeouts}"


class Network:
    """Unreliable datagram network with request/response support."""

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        self._sim = simulator
        self._latency = latency if latency is not None else ConstantLatency()
        self._loss_rate = loss_rate
        self._rng = Random(seed)
        self._endpoints: dict[int, Endpoint] = {}
        self._pending: dict[int, Future] = {}
        self._next_request_id = 1
        self._partitioned: set[frozenset[int]] = set()
        self._kind_loss: dict[str, float] = {}
        self.stats = NetworkStats()

    @property
    def simulator(self) -> Simulator:
        """The event loop this network schedules on."""
        return self._sim

    # -- membership -----------------------------------------------------

    def register(self, address: int, endpoint: Endpoint) -> None:
        """Attach a host under ``address`` (rejects duplicates)."""
        if address in self._endpoints:
            raise ValueError(f"address {address} already registered")
        self._endpoints[address] = endpoint

    def unregister(self, address: int) -> None:
        """Detach a host: all in-flight traffic to it is dropped."""
        self._endpoints.pop(address, None)

    def is_registered(self, address: int) -> bool:
        """True while the host is attached."""
        return address in self._endpoints

    # -- fault injection --------------------------------------------------

    def partition(self, a: int, b: int) -> None:
        """Silently drop all traffic between two hosts (both ways)."""
        self._partitioned.add(frozenset((a, b)))
        if TRACER.enabled:
            TRACER.emit(self._sim.now, "net", "partition", a=a, b=b)

    def heal(self, a: int, b: int) -> None:
        """Undo :meth:`partition`."""
        self._partitioned.discard(frozenset((a, b)))
        if TRACER.enabled:
            TRACER.emit(self._sim.now, "net", "heal", a=a, b=b)

    def heal_all(self) -> None:
        """Undo every active partition (deterministic pair order)."""
        for pair in sorted(self._partitioned, key=sorted):
            a, b = sorted(pair)
            self.heal(a, b)

    def partitions(self) -> tuple[tuple[int, int], ...]:
        """The currently severed host pairs, sorted."""
        return tuple(sorted(tuple(sorted(pair)) for pair in self._partitioned))

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the iid message-loss probability."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        self._loss_rate = loss_rate

    def set_kind_loss(self, kind: str, loss_rate: float) -> None:
        """Lossy-by-kind: drop ``kind`` datagrams iid at ``loss_rate``.

        Layered on top of the global loss model — the fault-injection
        primitive behind timeout storms (starve the maintenance RPC
        kinds) and selective multicast loss.  A rate of ``0`` removes
        the kind's entry.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if loss_rate == 0.0:
            self._kind_loss.pop(kind, None)
        else:
            self._kind_loss[kind] = loss_rate

    def clear_kind_loss(self) -> None:
        """Remove every per-kind loss rate."""
        self._kind_loss.clear()

    # -- datagrams --------------------------------------------------------

    @staticmethod
    def _trace_fields(message_kind: str, payload: Any) -> dict[str, Any]:
        """Multicast routing fields worth lifting into trace events.

        Only called on the tracing-enabled path: the causal
        reconstructor needs the message id (and, for region handoffs,
        the covered span) without parsing opaque payloads.
        """
        if not isinstance(payload, dict):
            return {}
        fields_out: dict[str, Any] = {}
        for key in ("mid", "limit", "depth"):
            value = payload.get(key)
            if value is not None:
                fields_out[key] = value
        return fields_out

    def send(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        request_id: int | None = None,
        is_reply: bool = False,
    ) -> None:
        """Fire-and-forget datagram."""
        self.stats.sent += 1
        if frozenset((sender, recipient)) in self._partitioned:
            self.stats.dropped_partition += 1
            self.stats.count_drop(kind, "partition")
            if TRACER.enabled:
                TRACER.emit(
                    self._sim.now, "net", "drop",
                    src=sender, dst=recipient, kind=kind, reason="partition",
                    **self._trace_fields(kind, payload),
                )
            return
        kind_rate = self._kind_loss.get(kind, 0.0)
        if kind_rate and self._rng.random() < kind_rate:
            self.stats.dropped_loss += 1
            self.stats.count_drop(kind, "loss")
            if TRACER.enabled:
                TRACER.emit(
                    self._sim.now, "net", "drop",
                    src=sender, dst=recipient, kind=kind, reason="loss",
                    **self._trace_fields(kind, payload),
                )
            return
        if self._loss_rate and self._rng.random() < self._loss_rate:
            self.stats.dropped_loss += 1
            self.stats.count_drop(kind, "loss")
            if TRACER.enabled:
                TRACER.emit(
                    self._sim.now, "net", "drop",
                    src=sender, dst=recipient, kind=kind, reason="loss",
                    **self._trace_fields(kind, payload),
                )
            return
        message = Message(sender, recipient, kind, payload, request_id, is_reply)
        delay = self._latency.delay(sender, recipient, self._rng)
        if TRACER.enabled:
            extra = self._trace_fields(kind, payload)
            if is_reply:
                extra["reply"] = True
            TRACER.emit(
                self._sim.now, "net", "send",
                src=sender, dst=recipient, kind=kind, delay=delay, **extra,
            )
        self._sim.call_later(delay, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        if message.is_reply and message.request_id is not None:
            future = self._pending.pop(message.request_id, None)
            if future is not None and not future.done:
                self.stats.delivered += 1
                self.stats.count_delivered(message.kind)
                if TRACER.enabled:
                    TRACER.emit(
                        self._sim.now, "net", "deliver",
                        src=message.sender, dst=message.recipient,
                        kind=message.kind, reply=True,
                    )
                future.resolve(message.payload)
            return
        endpoint = self._endpoints.get(message.recipient)
        if endpoint is None:
            self.stats.dropped_dead += 1
            self.stats.count_drop(message.kind, "dead")
            if TRACER.enabled:
                TRACER.emit(
                    self._sim.now, "net", "drop",
                    src=message.sender, dst=message.recipient,
                    kind=message.kind, reason="dead",
                    **self._trace_fields(message.kind, message.payload),
                )
            return
        self.stats.delivered += 1
        self.stats.count_delivered(message.kind)
        if TRACER.enabled:
            TRACER.emit(
                self._sim.now, "net", "deliver",
                src=message.sender, dst=message.recipient, kind=message.kind,
                **self._trace_fields(message.kind, message.payload),
            )
        endpoint.handle_message(message)

    # -- request / response ------------------------------------------------

    def request(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        timeout: float = 2.0,
    ) -> Future:
        """Send a request datagram; the future resolves with the reply
        payload or fails after ``timeout`` simulated seconds."""
        request_id = self._next_request_id
        self._next_request_id += 1
        future = Future()
        self._pending[request_id] = future

        def expire() -> None:
            pending = self._pending.pop(request_id, None)
            if pending is not None and not pending.done:
                self.stats.timeouts += 1
                self.stats.count_timeout(kind)
                if TRACER.enabled:
                    TRACER.emit(
                        self._sim.now, "net", "timeout",
                        src=sender, dst=recipient, kind=kind, rid=request_id,
                    )
                pending.fail(f"request {kind} to {recipient} timed out")

        self._sim.call_later(timeout, expire)
        self.send(sender, recipient, kind, payload, request_id=request_id)
        return future

    def respond(self, request: Message, payload: Any = None) -> None:
        """Reply to a request message (routes back to the waiter)."""
        if request.request_id is None:
            raise ValueError("cannot respond to a fire-and-forget message")
        self.send(
            request.recipient,
            request.sender,
            request.kind,
            payload,
            request_id=request.request_id,
            is_reply=True,
        )
