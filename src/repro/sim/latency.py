"""Link-latency models for the message-passing network.

The paper measures latency in overlay hops, so the figure harness uses
:class:`ConstantLatency`.  The Section 5.2 discussion (Proximity
Neighbor Selection / Geographic Layout) motivates the
:class:`GeographicLatency` model: hosts live at coordinates on a unit
torus and the link delay grows with distance — "two neighbors may be
separated by transcontinental links, or they may be on the same LAN".
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random


class LatencyModel(ABC):
    """Delay (in simulated seconds) of one message between endpoints."""

    @abstractmethod
    def delay(self, source: int, destination: int, rng: Random) -> float:
        """One-way delay from ``source`` to ``destination``."""


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every link has the same one-way delay (hop-count semantics)."""

    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"latency must be >= 0, got {self.seconds}")

    def delay(self, source: int, destination: int, rng: Random) -> float:
        return self.seconds


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Independent uniform delay per message — cheap jitter model."""

    low: float = 0.02
    high: float = 0.2

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid latency range [{self.low}, {self.high}]")

    def delay(self, source: int, destination: int, rng: Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class GeographicLatency(LatencyModel):
    """Delay proportional to torus distance between host coordinates.

    Coordinates are assigned lazily (seeded by the endpoint identifier
    so that placement is stable across simulator restarts).  The delay
    is ``base + distance * per_unit`` with optional multiplicative
    jitter.
    """

    base: float = 0.01
    per_unit: float = 0.2
    jitter: float = 0.1
    placement_seed: int = 0
    _coords: dict[int, tuple[float, float]] = field(default_factory=dict, repr=False)

    def place(self, endpoint: int, x: float, y: float) -> None:
        """Pin a host's position explicitly (e.g. Geographic Layout
        experiments, where identifiers derive from real coordinates)."""
        self._coords[endpoint] = (x, y)

    def coordinates(self, endpoint: int) -> tuple[float, float]:
        """The host's position on the unit torus."""
        if endpoint not in self._coords:
            rng = Random((self.placement_seed << 32) ^ endpoint)
            self._coords[endpoint] = (rng.random(), rng.random())
        return self._coords[endpoint]

    def distance(self, source: int, destination: int) -> float:
        """Torus distance between two hosts' coordinates."""
        ax, ay = self.coordinates(source)
        bx, by = self.coordinates(destination)
        dx = min(abs(ax - bx), 1 - abs(ax - bx))
        dy = min(abs(ay - by), 1 - abs(ay - by))
        return math.hypot(dx, dy)

    def delay(self, source: int, destination: int, rng: Random) -> float:
        noise = 1.0 + rng.uniform(-self.jitter, self.jitter) if self.jitter else 1.0
        return (self.base + self.distance(source, destination) * self.per_unit) * noise
