"""Event-queue simulator with generator-based processes.

A :class:`Simulator` owns a priority queue of timestamped events.
Protocol code is written as generator *processes*::

    def stabilizer(sim: Simulator):
        while True:
            yield 30.0                 # sleep 30 simulated seconds
            reply = yield rpc_future   # wait for a Future
            ...

    sim.spawn(stabilizer(sim))

Yielding a number sleeps; yielding a :class:`Future` suspends the
process until the future resolves (its value is sent back into the
generator, and a failed future raises inside it).  Event ordering is
deterministic: ties break by insertion order, so a seeded simulation
replays identically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

from repro.trace.tracer import TRACER

#: The process type protocol code implements.
Process = Generator[Any, Any, None]


class FutureError(Exception):
    """Raised inside a process that waits on a failed future."""


class Future:
    """A one-shot value that a process can wait on.

    Resolve with :meth:`resolve` or fail with :meth:`fail`; both are
    idempotent errors if called twice.  Callbacks fire synchronously at
    resolution time (within the event that resolved the future).
    """

    __slots__ = ("_state", "_value", "_callbacks")

    _PENDING, _DONE, _FAILED = 0, 1, 2

    def __init__(self) -> None:
        self._state = Future._PENDING
        self._value: Any = None
        self._callbacks: list[Callable[[Future], None]] = []

    @property
    def done(self) -> bool:
        """True once resolved or failed."""
        return self._state != Future._PENDING

    @property
    def failed(self) -> bool:
        """True when the future failed."""
        return self._state == Future._FAILED

    @property
    def value(self) -> Any:
        """The resolved value (raises if pending or failed)."""
        if self._state == Future._DONE:
            return self._value
        if self._state == Future._FAILED:
            raise FutureError(str(self._value))
        raise RuntimeError("future is still pending")

    def resolve(self, value: Any = None) -> None:
        """Deliver the value and wake every waiter."""
        self._settle(Future._DONE, value)

    def fail(self, reason: str) -> None:
        """Fail the future; waiters see :class:`FutureError`."""
        self._settle(Future._FAILED, reason)

    def _settle(self, state: int, value: Any) -> None:
        if self._state != Future._PENDING:
            raise RuntimeError("future already settled")
        self._state = state
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` at settlement (immediately if settled)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)


def gather(futures: "Sequence[Future]") -> Future:
    """A future that resolves with every input's value, in input order.

    Resolves to a list once all inputs resolve; fails as soon as any
    input fails (first failure wins, later settlements are ignored).
    An empty sequence resolves immediately — so a caller can always
    ``yield gather(batch)`` without special-casing idle batches.
    """
    combined = Future()
    inputs = list(futures)
    remaining = len(inputs)
    if remaining == 0:
        combined.resolve([])
        return combined

    def on_settle(settled: Future) -> None:
        nonlocal remaining
        if combined.done:
            return
        if settled.failed:
            combined.fail(str(settled._value))
            return
        remaining -= 1
        if remaining == 0:
            combined.resolve([future._value for future in inputs])

    for future in inputs:
        future.add_callback(on_settle)
    return combined


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellation handle for a scheduled callback."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already did)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class ProcessHandle:
    """Handle to a spawned process: observe completion, or kill it."""

    __slots__ = ("_generator", "_alive", "completion", "pid", "name")

    def __init__(self, generator: Process, pid: int = 0) -> None:
        self._generator = generator
        self._alive = True
        #: Process identity for trace events (assigned by the simulator).
        self.pid = pid
        self.name = getattr(generator, "__name__", type(generator).__name__)
        #: Resolves when the process returns; fails if it raises.
        self.completion = Future()

    @property
    def alive(self) -> bool:
        """True while the process can still run."""
        return self._alive

    def kill(self) -> None:
        """Stop the process; it never resumes (completion resolves None)."""
        if self._alive:
            self._alive = False
            self._generator.close()
            if not self.completion.done:
                self.completion.resolve(None)


class Simulator:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._next_pid = 1
        self._run_bound = float("inf")

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostics)."""
        return self._processed

    @property
    def run_bound(self) -> float:
        """The time limit of the active :meth:`run` call (``inf`` when
        draining or idle).  Batch schedulers — the service plane's
        wavefront commits — cap their look-ahead here so a bounded
        ``run(until)`` observes exactly the state an event-per-delivery
        execution would have produced at ``until``."""
        return self._run_bound

    def next_event_time(self) -> float | None:
        """The timestamp of the earliest live event (None when idle).

        Cancelled events are lazily discarded from the head of the
        queue, so the peek is amortized O(1) and keeps the heap from
        accumulating dead entries.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].time if queue else None

    def call_later(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action()`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        event = _Event(self._now + delay, self._sequence, action)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_at(self, when: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action()`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        return self.call_later(when - self._now, action)

    # -- processes ------------------------------------------------------

    def spawn(self, process: Process, delay: float = 0.0) -> ProcessHandle:
        """Start a generator process after ``delay``."""
        handle = ProcessHandle(process, pid=self._next_pid)
        self._next_pid += 1
        if TRACER.enabled:
            TRACER.emit(
                self._now, "sim", "spawn", pid=handle.pid, name=handle.name, delay=delay
            )
        self.call_later(delay, lambda: self._step(handle, None, None))
        return handle

    def _step(self, handle: ProcessHandle, value: Any, error: str | None) -> None:
        if not handle.alive:
            return
        try:
            if error is not None:
                yielded = handle._generator.throw(FutureError(error))
            else:
                yielded = handle._generator.send(value)
        except StopIteration as stop:
            handle._alive = False
            if TRACER.enabled:
                TRACER.emit(self._now, "sim", "exit", pid=handle.pid, outcome="return")
            handle.completion.resolve(stop.value)
            return
        except FutureError as exc:
            # an unhandled RPC failure terminates the process
            handle._alive = False
            if TRACER.enabled:
                TRACER.emit(self._now, "sim", "exit", pid=handle.pid, outcome="error")
            handle.completion.fail(str(exc))
            return
        self._wait(handle, yielded)

    def _wait(self, handle: ProcessHandle, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if TRACER.enabled:
                TRACER.emit(
                    self._now, "sim", "sleep", pid=handle.pid, delay=float(yielded)
                )
            self.call_later(float(yielded), lambda: self._step(handle, None, None))
        elif isinstance(yielded, Future):
            if TRACER.enabled:
                TRACER.emit(self._now, "sim", "wait", pid=handle.pid)
            def on_settle(future: Future) -> None:
                if future.failed:
                    self._step(handle, None, str(future._value))
                else:
                    self._step(handle, future._value, None)

            yielded.add_callback(on_settle)
        else:
            raise TypeError(
                f"process yielded {type(yielded).__name__}; "
                "yield a delay (number) or a Future"
            )

    def every(
        self, interval: float, action: Callable[[], None], jitter_first: float = 0.0
    ) -> ProcessHandle:
        """Run ``action()`` every ``interval`` until the handle is killed."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")

        def ticker() -> Process:
            yield jitter_first
            while True:
                action()
                yield interval

        return self.spawn(ticker())

    # -- execution ------------------------------------------------------

    def run(self, until: float) -> None:
        """Execute events up to and including time ``until``."""
        previous = self._run_bound
        self._run_bound = until
        try:
            while self._queue and self._queue[0].time <= until:
                self._pop_and_run()
            self._now = max(self._now, until)
        finally:
            self._run_bound = previous

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Execute events until the queue drains (or the budget is hit)."""
        budget = max_events
        while self._queue:
            if budget is not None:
                if budget == 0:
                    raise RuntimeError(
                        f"simulation did not go idle within {max_events} events"
                    )
                budget -= 1
            self._pop_and_run()

    def _pop_and_run(self) -> None:
        event = heapq.heappop(self._queue)
        if event.cancelled:
            return
        self._now = event.time
        self._processed += 1
        event.action()
