"""Timed, packet-level message transfer over an implicit multicast tree.

Section 6.1 *models* sustainable throughput analytically: each node
divides its upload bandwidth evenly among its tree children, and the
session rate is the smallest allocation anywhere.  This module checks
that model against an explicit store-and-forward simulation: the
message is cut into packets, every node forwards packet ``i`` to each
child as soon as (a) the packet has fully arrived and (b) the child's
share of the uplink is free — the per-packet pipelining Section 4.3
describes ("a node does not have to wait for the entire message to
arrive before forwarding it").

For a message much longer than the tree is deep, the measured session
rate converges to the analytic bottleneck; for short messages the
propagation term dominates.  Experiment extH sweeps both regimes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.multicast.delivery import MulticastResult
from repro.overlay.base import RingSnapshot

#: per-hop one-way latency in seconds: (parent_ident, child_ident) -> s
HopLatency = Callable[[int, int], float]


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one timed tree transfer.

    ``completion_time`` maps each member to the instant its *last*
    packet arrived (the source maps to 0.0).  ``session_completion``
    is the slowest member's completion; ``measured_throughput_kbps``
    is the end-to-end rate the slowest member experienced.
    """

    message_kbits: float
    packet_count: int
    completion_time: Mapping[int, float]
    first_packet_time: Mapping[int, float]

    @property
    def session_completion(self) -> float:
        """When the last member finished receiving."""
        return max(self.completion_time.values())

    @property
    def measured_throughput_kbps(self) -> float:
        """Worst member's effective receive rate, message/(completion)."""
        if self.session_completion <= 0:
            return float("inf")
        return self.message_kbits / self.session_completion

    def member_throughput_kbps(self, ident: int) -> float:
        """One member's effective receive rate."""
        elapsed = self.completion_time[ident]
        if elapsed <= 0:
            return float("inf")
        return self.message_kbits / elapsed

    def startup_delay(self, ident: int) -> float:
        """When the member's *first* packet arrived (stream start-up)."""
        return self.first_packet_time[ident]


def simulate_tree_transfer(
    tree: MulticastResult,
    snapshot: RingSnapshot,
    message_kbits: float,
    packet_count: int = 32,
    hop_latency: HopLatency | None = None,
) -> TransferResult:
    """Pipeline ``message_kbits`` through ``tree`` and time every member.

    Per the Section 6.1 allocation, a node with ``d`` children and
    upload bandwidth ``B`` sends to each child over a dedicated
    ``B/d``-kbps share; packet ``i`` leaves for a child once the packet
    has arrived *and* the previous packet to that child has finished
    serializing.  Packets traverse the tree breadth-first (parents
    strictly before children), so one pass computes all times exactly
    — the computation is deterministic, no event queue needed.
    """
    if message_kbits <= 0:
        raise ValueError(f"message size must be positive, got {message_kbits}")
    if packet_count < 1:
        raise ValueError(f"packet count must be >= 1, got {packet_count}")
    latency = hop_latency if hop_latency is not None else (lambda a, b: 0.0)
    packet_kbits = message_kbits / packet_count

    children: dict[int, list[int]] = {ident: [] for ident in tree.parent}
    for child, parent in tree.parent.items():
        if parent is not None:
            children[parent].append(child)

    # arrival[v][i] = when packet i has fully arrived at v
    source = tree.source_ident
    arrival: dict[int, list[float]] = {source: [0.0] * packet_count}
    completion: dict[int, float] = {source: 0.0}
    first: dict[int, float] = {source: 0.0}

    queue: deque[int] = deque([source])
    while queue:
        parent = queue.popleft()
        kids = children[parent]
        if not kids:
            continue
        node = snapshot.node_at(parent)
        if node.bandwidth_kbps <= 0:
            raise ValueError(
                f"node {parent} has no bandwidth; timed transfer needs "
                "per-node bandwidths"
            )
        share = node.bandwidth_kbps / len(kids)
        serialize = packet_kbits / share
        parent_arrivals = arrival[parent]
        for child in kids:
            delay = latency(parent, child)
            times = [0.0] * packet_count
            previous_done = 0.0
            for index in range(packet_count):
                start = max(parent_arrivals[index], previous_done)
                previous_done = start + serialize
                times[index] = previous_done + delay
            arrival[child] = times
            completion[child] = times[-1]
            first[child] = times[0]
            queue.append(child)

    return TransferResult(
        message_kbits=message_kbits,
        packet_count=packet_count,
        completion_time=completion,
        first_packet_time=first,
    )


def analytic_bottleneck_kbps(tree: MulticastResult, snapshot: RingSnapshot) -> float:
    """The Section 6.1 model: ``min over internal x of B_x / d_x``."""
    best: float | None = None
    for ident, count in tree.children_counts().items():
        if count == 0:
            continue
        allocation = snapshot.node_at(ident).bandwidth_kbps / count
        best = allocation if best is None else min(best, allocation)
    if best is None:
        return snapshot.node_at(tree.source_ident).bandwidth_kbps
    return best
