"""Timed, packet-level message transfer over an implicit multicast tree.

Section 6.1 *models* sustainable throughput analytically: each node
divides its upload bandwidth evenly among its tree children, and the
session rate is the smallest allocation anywhere.  This module checks
that model against an explicit store-and-forward simulation: the
message is cut into packets, every node forwards packet ``i`` to each
child as soon as (a) the packet has fully arrived and (b) the child's
share of the uplink is free — the per-packet pipelining Section 4.3
describes ("a node does not have to wait for the entire message to
arrive before forwarding it").

For a message much longer than the tree is deep, the measured session
rate converges to the analytic bottleneck; for short messages the
propagation term dominates.  Experiment extH sweeps both regimes.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.multicast.delivery import MulticastResult
from repro.overlay.base import RingSnapshot

#: per-hop one-way latency in seconds: (parent_ident, child_ident) -> s
HopLatency = Callable[[int, int], float]


class UplinkBudget:
    """One serialization ledger per host uplink, shared across groups.

    A host that belongs to three multicast groups sits on three
    overlays, but it owns exactly *one* physical uplink — the Section 2
    deployment model.  The budget tracks, per host key, the instant its
    uplink next frees up; every transmission any group wants the host
    to make must :meth:`reserve` a slot, and a reservation that cannot
    start immediately is a **deferral** (the backpressure signal the
    service plane reports per group).

    Keys are arbitrary hashables (the service plane uses host names,
    the transfer simulation uses ring identifiers).  All methods are
    deterministic: the ledger never draws randomness, so event-driven
    callers replay identically.
    """

    __slots__ = ("_free_at", "_deferrals", "_reservations")

    def __init__(self) -> None:
        self._free_at: dict[Hashable, float] = {}
        self._deferrals: Counter[Hashable] = Counter()
        self._reservations: Counter[Hashable] = Counter()

    def free_at(self, host: Hashable) -> float:
        """When the host's uplink next goes idle (0.0 if never used)."""
        return self._free_at.get(host, 0.0)

    def backlog(self, host: Hashable, now: float) -> float:
        """Seconds of queued serialization ahead of a reservation at
        ``now`` — the queue-depth measure in time units."""
        return max(0.0, self.free_at(host) - now)

    def reserve(
        self, host: Hashable, now: float, duration: float
    ) -> tuple[float, float]:
        """Claim ``duration`` seconds of uplink at the earliest instant
        ``>= now``; returns ``(start, done)``.

        ``start > now`` means the slot was deferred behind traffic the
        host is already serializing (for this group or any other).
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        start = max(now, self._free_at.get(host, 0.0))
        if start > now:
            self._deferrals[host] += 1
        done = start + duration
        self._free_at[host] = done
        self._reservations[host] += 1
        return start, done

    def deferrals(self, host: Hashable | None = None) -> int:
        """Deferred reservations for one host (or the whole ledger)."""
        if host is not None:
            return self._deferrals[host]
        return sum(self._deferrals.values())

    def reservations(self, host: Hashable | None = None) -> int:
        """Total reservations for one host (or the whole ledger)."""
        if host is not None:
            return self._reservations[host]
        return sum(self._reservations.values())


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one timed tree transfer.

    ``completion_time`` maps each member to the instant its *last*
    packet arrived (the source maps to 0.0).  ``session_completion``
    is the slowest member's completion; ``measured_throughput_kbps``
    is the end-to-end rate the slowest member experienced.
    """

    message_kbits: float
    packet_count: int
    completion_time: Mapping[int, float]
    first_packet_time: Mapping[int, float]

    @property
    def session_completion(self) -> float:
        """When the last member finished receiving."""
        return max(self.completion_time.values())

    @property
    def measured_throughput_kbps(self) -> float:
        """Worst member's effective receive rate, message/(completion)."""
        if self.session_completion <= 0:
            return float("inf")
        return self.message_kbits / self.session_completion

    def member_throughput_kbps(self, ident: int) -> float:
        """One member's effective receive rate."""
        elapsed = self.completion_time[ident]
        if elapsed <= 0:
            return float("inf")
        return self.message_kbits / elapsed

    def startup_delay(self, ident: int) -> float:
        """When the member's *first* packet arrived (stream start-up)."""
        return self.first_packet_time[ident]


def simulate_tree_transfer(
    tree: MulticastResult,
    snapshot: RingSnapshot,
    message_kbits: float,
    packet_count: int = 32,
    hop_latency: HopLatency | None = None,
    budget: UplinkBudget | None = None,
    start_time: float = 0.0,
    host_key: Callable[[int], Hashable] | None = None,
) -> TransferResult:
    """Pipeline ``message_kbits`` through ``tree`` and time every member.

    Per the Section 6.1 allocation, a node with ``d`` children and
    upload bandwidth ``B`` sends to each child over a dedicated
    ``B/d``-kbps share; packet ``i`` leaves for a child once the packet
    has arrived *and* the previous packet to that child has finished
    serializing.  Packets traverse the tree breadth-first (parents
    strictly before children), so one pass computes all times exactly
    — the computation is deterministic, no event queue needed.

    With a ``budget``, the private per-child share is replaced by the
    shared-uplink model: every packet transmission reserves the *whole*
    uplink for ``packet_kbits / B`` seconds from the host's shared
    :class:`UplinkBudget` ledger (packet-major, children in tree
    order), so a host forwarding in several trees defers behind its own
    earlier traffic.  ``start_time`` places the send on the shared
    clock and ``host_key`` maps a ring identifier to the ledger key
    (identity by default; the service plane keys by host name, since
    one host holds a different identifier in every group).  Successive
    calls against one budget model *batched* sends — the event-driven
    service plane (:mod:`repro.multicast.plane`) interleaves at true
    event granularity instead.
    """
    if message_kbits <= 0:
        raise ValueError(f"message size must be positive, got {message_kbits}")
    if packet_count < 1:
        raise ValueError(f"packet count must be >= 1, got {packet_count}")
    latency = hop_latency if hop_latency is not None else (lambda a, b: 0.0)
    key = host_key if host_key is not None else (lambda ident: ident)
    packet_kbits = message_kbits / packet_count

    children: dict[int, list[int]] = {ident: [] for ident in tree.parent}
    for child, parent in tree.parent.items():
        if parent is not None:
            children[parent].append(child)

    # arrival[v][i] = when packet i has fully arrived at v
    source = tree.source_ident
    arrival: dict[int, list[float]] = {source: [start_time] * packet_count}
    completion: dict[int, float] = {source: start_time}
    first: dict[int, float] = {source: start_time}

    queue: deque[int] = deque([source])
    while queue:
        parent = queue.popleft()
        kids = children[parent]
        if not kids:
            continue
        node = snapshot.node_at(parent)
        if node.bandwidth_kbps <= 0:
            raise ValueError(
                f"node {parent} has no bandwidth; timed transfer needs "
                "per-node bandwidths"
            )
        parent_arrivals = arrival[parent]
        if budget is not None and packet_count == 1:
            # single-packet fast path: message-granularity store-and-
            # forward (the service plane's model) needs no per-packet
            # lists — one reservation per child, same float expressions
            # as the general loop below (packet_kbits == message_kbits
            # exactly when packet_count is 1), so the two paths are
            # byte-identical
            serialize = packet_kbits / node.bandwidth_kbps
            host = key(parent)
            when = parent_arrivals[0]
            for child in kids:
                _, done = budget.reserve(host, when, serialize)
                landed = done + latency(parent, child)
                arrival[child] = [landed]
                completion[child] = landed
                first[child] = landed
                queue.append(child)
            continue
        if budget is not None:
            # shared-uplink model: whole uplink per transmission, FIFO
            # through the host's cross-group ledger, packet-major so
            # every child's stream starts as early as possible
            serialize = packet_kbits / node.bandwidth_kbps
            host = key(parent)
            times = {child: [0.0] * packet_count for child in kids}
            for index in range(packet_count):
                for child in kids:
                    _, done = budget.reserve(
                        host, parent_arrivals[index], serialize
                    )
                    times[child][index] = done + latency(parent, child)
            for child in kids:
                arrival[child] = times[child]
                completion[child] = times[child][-1]
                first[child] = times[child][0]
                queue.append(child)
            continue
        share = node.bandwidth_kbps / len(kids)
        serialize = packet_kbits / share
        for child in kids:
            delay = latency(parent, child)
            times = [0.0] * packet_count
            previous_done = 0.0
            for index in range(packet_count):
                start = max(parent_arrivals[index], previous_done)
                previous_done = start + serialize
                times[index] = previous_done + delay
            arrival[child] = times
            completion[child] = times[-1]
            first[child] = times[0]
            queue.append(child)

    return TransferResult(
        message_kbits=message_kbits,
        packet_count=packet_count,
        completion_time=completion,
        first_packet_time=first,
    )


def delivery_timeline(
    tree: MulticastResult,
    snapshot: RingSnapshot,
    message_kbits: float,
    hop_latency: HopLatency | None = None,
    budget: UplinkBudget | None = None,
    start_time: float = 0.0,
    host_key: Callable[[int], Hashable] | None = None,
) -> dict[int, float]:
    """Per-member delivery times for one message-granularity transfer.

    The service plane's dissemination model — store-and-forward at
    message granularity over a shared uplink ledger — is exactly the
    ``packet_count=1`` case of :func:`simulate_tree_transfer`.  This
    wrapper runs it in one pass and returns ``ident -> absolute
    delivery time`` (the source maps to ``start_time``).

    Against a **fresh** budget the result is the send's *uncontended
    schedule*: within one tree every host forwards from a single
    parent position, so its reservations are self-contained and the
    times are byte-identical to what the event-driven plane commits
    for an isolated send — which is what makes the timeline usable as
    a schedule preview (``ServicePlane.schedule_preview``) and as the
    oracle the epoch-cache equivalence tests compare against.  With a
    shared, pre-loaded budget the timeline instead shows how the send
    would defer behind traffic already serialized on those uplinks.
    """
    shared = budget if budget is not None else UplinkBudget()
    result = simulate_tree_transfer(
        tree,
        snapshot,
        message_kbits,
        packet_count=1,
        hop_latency=hop_latency,
        budget=shared,
        start_time=start_time,
        host_key=host_key,
    )
    return dict(result.completion_time)


def analytic_bottleneck_kbps(tree: MulticastResult, snapshot: RingSnapshot) -> float:
    """The Section 6.1 model: ``min over internal x of B_x / d_x``."""
    best: float | None = None
    for ident, count in tree.children_counts().items():
        if count == 0:
            continue
        allocation = snapshot.node_at(ident).bandwidth_kbps / count
        best = allocation if best is None else min(best, allocation)
    if best is None:
        return snapshot.node_at(tree.source_ident).bandwidth_kbps
    return best
