"""Discrete-event simulation substrate.

The paper's resilience story — "dynamic membership", "the robustness of
the system comes from the maintenance protocol of Chord" — is about
*live* protocols exchanging messages under churn.  ``simpy`` is not
available in this offline environment, so this package provides the
equivalent machinery from scratch: an event-queue simulator with
generator-based processes (:mod:`repro.sim.engine`), a message-passing
network with configurable latency and loss (:mod:`repro.sim.network`),
and latency models including a geographic one for the Section 5.2
proximity experiments (:mod:`repro.sim.latency`).
"""

from repro.sim.engine import Future, ProcessHandle, Simulator
from repro.sim.latency import (
    ConstantLatency,
    GeographicLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.network import Endpoint, Message, Network

__all__ = [
    "Future",
    "ProcessHandle",
    "Simulator",
    "ConstantLatency",
    "GeographicLatency",
    "LatencyModel",
    "UniformLatency",
    "Endpoint",
    "Message",
    "Network",
]
