"""Lightweight performance observability: wall timers + hot-path counters.

The experiment harness spends nearly all of its time in two loops —
identifier resolution (one bisect per neighbor identifier) and implicit
tree extraction (one resolution sweep per member).  This module keeps a
process-global :class:`PerfCounters` that those hot paths increment,
so the experiment runner can print, per figure, how much resolution and
multicast work actually happened and how often the snapshot/group
caches saved a rebuild.

Counters are plain integer attributes on one module-level instance:
cheap enough to leave permanently enabled (an increment costs well
under a tenth of the bisect it accompanies).  Parallel workers each
own a fork of the counter state; the engine snapshots around every
task and ships the *delta* back with the task result, so per-figure
totals add up correctly across processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields, replace


@dataclass
class PerfCounters:
    """Cumulative hot-path event counts for one process.

    ``resolves`` counts :meth:`RingSnapshot.resolve_index` calls (every
    scalar ``resolve`` funnels through it); ``multicast_trees`` full
    implicit tree extractions; ``deliveries`` tree edges recorded.  The
    cache pairs track the keyed snapshot/group cache in
    ``repro.experiments.common``.

    The ``kernel_*`` counters instrument the flat-array multicast
    kernel (:mod:`repro.multicast.kernel`): ``kernel_trees`` trees
    built by it, ``kernel_resolves`` identifier resolutions spent
    filling its per-overlay memoized neighbor/slot tables (one-time
    cost per overlay), ``kernel_resolves_saved`` slot lookups answered
    from a table that the legacy data plane would have re-resolved,
    ``kernel_state_evictions`` memoized neighbor states dropped by the
    kernel's bounded LRU (long campaigns over many overlays re-fill
    instead of leaking), and ``array_passes`` fused single-pass metric
    sweeps over the kernel's arrays.

    The ``schedule_cache_*`` / ``wavefront_commits`` counters
    instrument the service plane's epoch-cached dissemination
    schedules (:mod:`repro.multicast.plane`): ``schedule_cache_hits``
    sends served by a cached (group, membership-epoch, source)
    schedule template, ``schedule_cache_misses`` templates built,
    ``schedule_cache_invalidations`` templates discarded because the
    group's membership epoch moved on (join/leave/drop rebuilt the
    overlay), and ``wavefront_commits`` batched wavefront events
    executed — each one commits a contiguous run of deliveries that
    the uncached plane would have run as individual engine events.

    The ``shm_*`` counters track shared-memory membership buffers
    (:mod:`repro.membership`): segments created/unlinked by the parent
    (``shm_creates`` / ``shm_detaches``), zero-copy attaches performed
    by workers (``shm_attaches`` — each worker attaches a published
    buffer at most once, inside a task's delta window, so pool-summed
    deltas count every attach exactly once), and ``shm_fallbacks``
    buffers that fell back to carrying their arrays by value because
    shared memory was unavailable or disabled.
    """

    resolves: int = 0
    multicast_trees: int = 0
    deliveries: int = 0
    kernel_trees: int = 0
    kernel_resolves: int = 0
    kernel_resolves_saved: int = 0
    kernel_state_evictions: int = 0
    array_passes: int = 0
    schedule_cache_hits: int = 0
    schedule_cache_misses: int = 0
    schedule_cache_invalidations: int = 0
    wavefront_commits: int = 0
    group_cache_hits: int = 0
    group_cache_misses: int = 0
    draw_cache_hits: int = 0
    draw_cache_misses: int = 0
    shm_creates: int = 0
    shm_attaches: int = 0
    shm_detaches: int = 0
    shm_fallbacks: int = 0

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def summary(self) -> str:
        """One compact report line (used in the runner footer)."""
        return (
            f"resolves={self.resolves} trees={self.multicast_trees} "
            f"deliveries={self.deliveries} "
            f"kernel[trees {self.kernel_trees} fills {self.kernel_resolves} "
            f"saved {self.kernel_resolves_saved} passes {self.array_passes} "
            f"evict {self.kernel_state_evictions}] "
            f"cache[group {self.group_cache_hits}h/{self.group_cache_misses}m "
            f"draw {self.draw_cache_hits}h/{self.draw_cache_misses}m "
            f"sched {self.schedule_cache_hits}h/{self.schedule_cache_misses}m/"
            f"{self.schedule_cache_invalidations}i] "
            f"wavefronts={self.wavefront_commits} "
            f"shm[{self.shm_creates}c/{self.shm_attaches}a/"
            f"{self.shm_detaches}d/{self.shm_fallbacks}f]"
        )


#: The process-global counter block the hot paths increment.
COUNTERS = PerfCounters()


def snapshot() -> PerfCounters:
    """An immutable copy of the current counter values."""
    return replace(COUNTERS)


def since(start: PerfCounters) -> PerfCounters:
    """Counter deltas accumulated after ``start`` was snapshotted."""
    return snapshot() - start


def reset() -> None:
    """Zero all counters (tests and benchmark harness)."""
    for f in fields(COUNTERS):
        setattr(COUNTERS, f.name, 0)


class scoped:
    """Context manager measuring the counter delta of one block.

    The counters are process-global and monotone; anything that wants
    per-figure (or per-benchmark-repetition) attribution must work in
    deltas.  ``with perf.scoped() as scope: ...; scope.delta`` is that
    pattern, named::

        with perf.scoped() as scope:
            run_figure()
        print(scope.delta.summary())

    ``delta`` is also live *inside* the block (counts so far).
    """

    def __init__(self) -> None:
        self._start = snapshot()

    @property
    def delta(self) -> PerfCounters:
        return since(self._start)

    def __enter__(self) -> "scoped":
        self._start = snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


def peak_rss() -> int | None:
    """This process's peak resident set size in **bytes**, or None.

    On Linux this prefers ``VmHWM`` from ``/proc/self/status``: the
    high-water mark of the *current* address space, which resets on
    ``exec``.  ``ru_maxrss`` does not — a child forked from a large
    parent inherits the parent's mark through the signal struct even
    across ``exec``, so subprocess-isolated measurements (the extL
    scale CLI) would report the parent's footprint instead of their
    own.  Either way the value is a high-water mark that only grows
    within one process, so per-phase attribution needs a fresh process.

    Fallback is ``resource.getrusage(RUSAGE_SELF).ru_maxrss``, whose
    unit POSIX leaves unspecified — Linux reports kibibytes, macOS
    reports bytes; both are normalized to bytes here.  On platforms
    without the ``resource`` module (Windows) the helper returns
    ``None`` and callers must skip the measurement.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return None
    import sys

    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return maxrss
    return maxrss * 1024


def peak_rss_mb() -> float | None:
    """:func:`peak_rss` in mebibytes (rounded), or None when unavailable."""
    rss = peak_rss()
    if rss is None:  # pragma: no cover - Windows
        return None
    return round(rss / (1024 * 1024), 1)


class StopWatch:
    """Context-manager wall-clock timer (monotonic)."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started = 0.0

    def __enter__(self) -> "StopWatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._started
