"""Terminal rendering of experiment results (no plotting dependencies)."""

from repro.viz.ascii_chart import render_figure, render_histogram, render_xy

__all__ = ["render_figure", "render_histogram", "render_xy"]
