"""ASCII charts for figure results.

The offline environment has no matplotlib, and the harness output
should be readable where it runs: in a terminal.  ``render_xy`` draws
multiple series on one axes grid with per-series glyphs and a legend;
``render_histogram`` draws horizontal bars (used for the Figure 9/10
path-length distributions).  Output is deterministic, so examples can
assert against it.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.common import FigureResult, Series

#: one glyph per series, recycled if a figure has more series
GLYPHS = "ox+*#@%&"


def _ticks(low: float, high: float, count: int) -> list[float]:
    """A few round-ish tick values covering [low, high]."""
    if high <= low:
        return [low]
    step = (high - low) / max(count - 1, 1)
    return [low + i * step for i in range(count)]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10_000 or magnitude < 0.01:
        return f"{value:.1e}"
    if magnitude >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def render_xy(
    series_list: Sequence[Series],
    width: int = 64,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    logy: bool = False,
) -> str:
    """Plot series as scatter glyphs on a character grid."""
    points = [(x, y) for series in series_list for x, y in series.points]
    if not points:
        return f"{title}\n(no data)"
    if logy and any(y <= 0 for _, y in points):
        raise ValueError("log-scale y requires positive values")

    def transform(y: float) -> float:
        return math.log10(y) if logy else y

    xs = [x for x, _ in points]
    ys = [transform(y) for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in series.points:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((transform(y) - y_low) / y_span * (height - 1))
            grid[row][column] = glyph

    margin = 10
    lines: list[str] = []
    if title:
        lines.append(title)
    y_ticks = {
        height - 1 - round((tick - y_low) / y_span * (height - 1)): tick
        for tick in _ticks(y_low, y_high, 5)
    }
    for row_index, row in enumerate(grid):
        if row_index in y_ticks:
            raw = y_ticks[row_index]
            shown = 10**raw if logy else raw
            label = _format_tick(shown).rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * (margin - 1) + "+" + "-" * width)
    tick_values = _ticks(x_low, x_high, 4)
    tick_line = [" "] * (margin + width)
    for tick in tick_values:
        column = margin + round((tick - x_low) / x_span * (width - 1))
        text = _format_tick(tick)
        start = min(max(0, column - len(text) // 2), margin + width - len(text))
        for offset, char in enumerate(text):
            tick_line[start + offset] = char
    lines.append("".join(tick_line).rstrip())
    lines.append(f"{'':>{margin}}{x_label}   (y: {y_label}{', log' if logy else ''})")
    for index, series in enumerate(series_list):
        glyph = GLYPHS[index % len(GLYPHS)]
        lines.append(f"{'':>{margin}}{glyph} = {series.label}")
    return "\n".join(lines)


def render_histogram(
    series: Series,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal-bar rendering of one (bucket, count) series."""
    if not series.points:
        return f"{title}\n(no data)"
    peak = max(y for _, y in series.points) or 1.0
    lines = [title] if title else []
    for x, y in series.points:
        bar = "#" * max(0, round(y / peak * width))
        lines.append(f"{_format_tick(x):>8} | {bar} {_format_tick(y)}")
    return "\n".join(lines)


def render_figure(result: FigureResult, width: int = 64, height: int = 20) -> str:
    """Chart a whole figure result: one shared plot for all series."""
    body = render_xy(
        result.series,
        width=width,
        height=height,
        title=f"{result.figure}: {result.title}",
    )
    notes = "\n".join(f"note: {note}" for note in result.notes)
    return f"{body}\n{notes}" if notes else body
