"""repro — Resilient Capacity-Aware Multicast on Overlay Networks.

A full reimplementation of CAM-Chord and CAM-Koorde (Zhang, Chen,
Ling, Chow — ICDCS 2005) together with the plain Chord / Koorde
baselines, the bottleneck-throughput model, a discrete-event protocol
simulator for churn/resilience studies, and the harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from random import Random
    from repro import MulticastGroup

    rng = Random(42)
    bandwidths = [rng.uniform(400, 1000) for _ in range(1000)]
    group = MulticastGroup.build(
        "cam-chord", bandwidths, per_link_kbps=100, seed=42
    )
    tree = group.multicast_from(group.random_member(rng))
    print(tree.receiver_count, tree.average_path_length())

Which systems exist — and everything about them — lives in the
:mod:`repro.systems` registry: ``get_system("cam-koorde")`` returns the
frozen :class:`~repro.systems.SystemDescriptor` that every layer
(structural overlays, live protocol clusters, the experiment harness)
dispatches through.
"""

from repro.capacity import (
    CapacityModel,
    FixedCapacity,
    UniformBandwidth,
    UniformCapacity,
)
from repro.idspace import IdentifierSpace
from repro.metrics import (
    TreeStats,
    summarize_tree,
    sustainable_throughput,
)
from repro.multicast import (
    MulticastGroup,
    MulticastResult,
    SystemKind,
    cam_chord_multicast,
    cam_koorde_multicast,
    chord_broadcast,
    koorde_flood,
)
from repro.overlay import (
    CamChordOverlay,
    CamKoordeOverlay,
    ChordOverlay,
    KoordeOverlay,
    Node,
    RingSnapshot,
)
from repro.systems import (
    MemberSpec,
    SystemDescriptor,
    all_descriptors,
    get_system,
)
from repro.workloads import GroupSpec, generate_group

__version__ = "1.0.0"

__all__ = [
    "CapacityModel",
    "FixedCapacity",
    "UniformBandwidth",
    "UniformCapacity",
    "IdentifierSpace",
    "TreeStats",
    "summarize_tree",
    "sustainable_throughput",
    "MemberSpec",
    "MulticastGroup",
    "MulticastResult",
    "SystemDescriptor",
    "SystemKind",
    "all_descriptors",
    "get_system",
    "cam_chord_multicast",
    "cam_koorde_multicast",
    "chord_broadcast",
    "koorde_flood",
    "CamChordOverlay",
    "CamKoordeOverlay",
    "ChordOverlay",
    "KoordeOverlay",
    "Node",
    "RingSnapshot",
    "GroupSpec",
    "generate_group",
    "__version__",
]
