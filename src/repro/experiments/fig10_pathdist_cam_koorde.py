"""Figure 10: multicast path-length distribution in CAM-Koorde.

Same setup as Figure 9 but flooding over CAM-Koorde; the paper's
legend omits [4..60] for this figure, so the sweep does too.
"""

from __future__ import annotations

from repro.capacity.distributions import (
    CapacityDistribution,
    FixedCapacity,
    UniformCapacity,
)
from repro.experiments.common import ExperimentScale, FigureResult
from repro.experiments.fig09_pathdist_cam_chord import run as run_fig9
from repro.multicast.session import SystemKind

CAPACITY_RANGES: tuple[CapacityDistribution, ...] = (
    FixedCapacity(4),
    UniformCapacity(4, 6),
    UniformCapacity(4, 8),
    UniformCapacity(4, 10),
    UniformCapacity(4, 20),
    UniformCapacity(4, 40),
    UniformCapacity(4, 100),
    UniformCapacity(4, 200),
)


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 10 curves."""
    result = run_fig9(
        scale,
        seed=seed,
        kind=SystemKind.CAM_KOORDE,
        capacity_ranges=CAPACITY_RANGES,
        figure="fig10",
    )
    result.notes.append(
        "Compared with Figure 9, CAM-Koorde's peaks sit further right "
        "for small capacities (flooding wastes some fanout on already-"
        "served neighbors) and catch up as capacities grow."
    )
    return result
