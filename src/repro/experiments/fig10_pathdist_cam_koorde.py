"""Figure 10: multicast path-length distribution in CAM-Koorde.

Same setup as Figure 9 but flooding over CAM-Koorde; the paper's
legend omits [4..60] for this figure, so the sweep does too.
"""

from __future__ import annotations

from typing import Sequence

from repro.capacity.distributions import (
    CapacityDistribution,
    FixedCapacity,
    UniformCapacity,
)
from repro.experiments import fig09_pathdist_cam_chord as fig09
from repro.experiments.common import ExperimentScale, FigureResult, run_sweep
from repro.multicast.session import SystemKind

CAPACITY_RANGES: tuple[CapacityDistribution, ...] = (
    FixedCapacity(4),
    UniformCapacity(4, 6),
    UniformCapacity(4, 8),
    UniformCapacity(4, 10),
    UniformCapacity(4, 20),
    UniformCapacity(4, 40),
    UniformCapacity(4, 100),
    UniformCapacity(4, 200),
)


def sweep(scale: ExperimentScale) -> list[fig09.PathDistPoint]:
    """One point per capacity range (Figure 10: CAM-Koorde flooding)."""
    return [("fig10", SystemKind.CAM_KOORDE, d) for d in CAPACITY_RANGES]


#: identical per-point measurement to Figure 9, over the Koorde links
run_point = fig09.run_point


def assemble(
    scale: ExperimentScale,
    seed: int,
    partials: Sequence[tuple[str, list[tuple[int, int]]]],
) -> FigureResult:
    """Collect the per-range histograms into the Figure 10 curves."""
    result = fig09.build_figure("fig10", SystemKind.CAM_KOORDE, partials)
    result.notes.append(
        "Compared with Figure 9, CAM-Koorde's peaks sit further right "
        "for small capacities (flooding wastes some fanout on already-"
        "served neighbors) and catch up as capacities grow."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 10 curves."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
