"""Extension K: fault-injection campaign over all registered systems.

The churn study (extA) measures delivery degradation *during* faults;
this experiment asserts correctness *after* them.  Each sweep point is
one seed-deterministic :class:`~repro.faults.FaultPlan` — crashes,
leaves, joins, partitions, loss bursts, timeout storms — executed by
:func:`repro.faults.run_plan`: inject the schedule, quiesce, wait for
the ring to repair, then multicast and judge every invariant oracle
(delivery completeness, exactly-once for tree systems, fanout within
capacity, successor-ring ground truth, flood datagram accounting).

Expected shape: every point at 1.0 (oracles pass) for every system —
a repaired ring delivers perfectly, so any violation is a protocol
bug, with the failing plan's description carried in the notes for
``python -m repro.faults`` to shrink and replay.

The module is sweep-decomposed: ``--jobs N`` fans plans over worker
processes (:mod:`repro.experiments.parallel`) with byte-identical
output, because plans are frozen values and outcomes plain data.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.common import ExperimentScale, FigureResult, Series, run_sweep
from repro.faults import generate_plan, run_plan
from repro.systems import system_names

#: plans per system at each scale (the campaign CLI goes far bigger)
PLANS_PER_SYSTEM = {"bench": 2, "quick": 3, "default": 6, "paper": 10}


def sweep(scale: ExperimentScale) -> Sequence[tuple[str, int]]:
    """One point per (system, plan index)."""
    count = PLANS_PER_SYSTEM.get(scale.name, 6)
    return [
        (system, index)
        for system in system_names()
        for index in range(count)
    ]


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[str, int]
) -> dict[str, Any]:
    """Execute one generated plan; returns plain picklable data."""
    system, index = point
    plan = generate_plan(system, index, campaign_seed=seed)
    outcome = run_plan(plan)
    report = outcome.report()
    return {
        "system": system,
        "index": index,
        "passed": outcome.passed,
        "violations": [str(violation) for violation in outcome.violations],
        "describe": plan.describe(),
        # NaN-guarded: a plan that never reached its multicast phase has
        # no delivery evidence and must not poison the aggregate.
        "mean_delivery": (
            report.mean_delivery_ratio if report.has_measurements else None
        ),
    }


def assemble(
    scale: ExperimentScale, seed: int, partials: Sequence[dict[str, Any]]
) -> FigureResult:
    """Fold per-plan outcomes into one pass/fail series per system."""
    result = FigureResult(
        figure="extK",
        title="Fault-injection oracle verdicts per plan (1.0 = all pass)",
    )
    by_system: dict[str, list[dict[str, Any]]] = {}
    for partial in partials:
        by_system.setdefault(partial["system"], []).append(partial)
    for system, outcomes in by_system.items():
        series = Series(label=system)
        for outcome in outcomes:
            series.add(float(outcome["index"]), 1.0 if outcome["passed"] else 0.0)
        result.series.append(series)
        measured = [
            outcome["mean_delivery"]
            for outcome in outcomes
            if outcome["mean_delivery"] is not None
        ]
        mean = sum(measured) / len(measured) if measured else None
        failures = [outcome for outcome in outcomes if not outcome["passed"]]
        result.notes.append(
            f"{system}: {len(outcomes) - len(failures)}/{len(outcomes)} plans "
            f"pass, mean delivery "
            f"{f'{mean:.4f}' if mean is not None else 'n/a'}"
        )
        for failure in failures:
            result.notes.append(f"  FAILING {failure['describe']}")
            result.notes.extend(
                f"    {violation}" for violation in failure["violations"]
            )
    result.notes.append(
        "Every plan must score 1.0: after quiesce and ring repair the "
        "oracles (delivery, duplicates, fanout, ring, flood accounting) "
        "all hold; shrink any failure with `python -m repro.faults`."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Serial composition of the sweep (the parallel engine maps it)."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
