"""Extension I: FastTrack-style session churn (§5.1's motivation).

Section 5.1 motivates the per-group-overlay design with measured P2P
behavior: "over 20% of the connections last 1 minute or less and 60%
of the IP addresses keep active in the FastTrack P2P system for no
more than 10 minutes".  This experiment drives the live protocol with
that workload shape — Poisson arrivals, exponential session lifetimes
— and sweeps the mean lifetime from sticky (30 min) down to brutal
(1 min), measuring delivery for both CAM systems.

Expected shape: delivery falls as sessions shorten; CAM-Koorde's
flooding stays close to 1.0 far longer than CAM-Chord's trees — the
conclusion's "CAM-Koorde works better with relatively large frequency
of membership change", driven by the workload the paper itself cites.
"""

from __future__ import annotations

import math
from random import Random

from repro.churn.runner import ChurnExperiment
from repro.churn.trace import session_trace
from repro.experiments.common import ExperimentScale, FigureResult, Series
from repro.systems import capacity_aware_systems

#: mean session lifetimes in simulated seconds (30 min .. 1 min)
MEAN_LIFETIMES = (1800.0, 600.0, 180.0, 60.0)

DURATION = 150.0


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the session-churn series."""
    result = FigureResult(
        figure="extI",
        title="Delivery ratio vs mean session lifetime (FastTrack-style churn)",
    )
    rng = Random(seed)
    base_size = scale.protocol_size
    capacities = [rng.randint(4, 10) for _ in range(base_size)]
    for system in capacity_aware_systems():
        name = system.name
        series = Series(label=name)
        for lifetime in MEAN_LIFETIMES:
            # arrivals sized so the group roughly sustains its size:
            # n / lifetime joins per second
            arrival_rate = base_size / lifetime
            trace = session_trace(
                DURATION,
                arrival_rate=arrival_rate,
                mean_lifetime=lifetime,
                rng=Random(seed + int(lifetime)),
            )
            experiment = ChurnExperiment(
                system,
                capacities,
                space_bits=16,
                seed=seed,
            )
            report = experiment.run(
                trace,
                multicast_interval=10.0,
                propagation_window=4.0,
                system_name=name,
            )
            if not math.isnan(report.mean_delivery_ratio):
                series.add(lifetime, report.mean_delivery_ratio)
        series.points.sort()
        result.series.append(series)
    result.notes.append(
        "Shorter sessions mean faster membership turnover; flooding "
        "(cam-koorde) should degrade far more slowly than the implicit "
        "trees (cam-chord)."
    )
    return result
