"""Shared experiment plumbing: scales, results, group builders, caches.

The group builders memoize their outputs in keyed caches: sweep points
that share ``(n, space_bits, seed, distribution)`` reuse the ring and
the bandwidth/capacity draws instead of regenerating them.  Groups are
deterministic values of their key, so cache reuse never changes a
result — it only skips identical work (Figure 11 re-sweeps the exact
capacity ranges of Figures 9/10, and every Figure 7 sweep point shares
one bandwidth draw per upper bound).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Sequence

from repro import perf
from repro.capacity.distributions import (
    BandwidthDistribution,
    CapacityDistribution,
    UniformBandwidth,
)
from repro.capacity.model import CapacityModel
from repro.idspace.ring import IdentifierSpace
from repro.membership import exchange
from repro.multicast.delivery import MulticastResult
from repro.multicast.session import MulticastGroup, SystemKind
from repro.overlay.base import RingSnapshot, build_snapshot
from repro.systems import DEFAULT_UNIFORM_FANOUT, SystemDescriptor, resolve
from repro.workloads.groups import GroupSpec, generate_group


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing of one harness run.

    ``group_size`` is the paper's n (default 100,000); ``sources`` is
    how many random roots each measurement averages over;
    ``protocol_size`` bounds the live-protocol (churn) experiments,
    which simulate real message exchanges and are far more expensive
    per member than the structural figures.
    """

    name: str
    group_size: int
    sources: int
    protocol_size: int
    space_bits: int = 19


# space_bits shrinks with the group so that the member density n/N stays
# near the paper's 100,000 / 2**19 ~ 0.19 — identifier-window occupancy,
# and with it tree fanout at the deep levels, depends on that density.
SCALES = {
    "bench": ExperimentScale("bench", 2_500, 2, 40, space_bits=14),
    "quick": ExperimentScale("quick", 5_000, 2, 60, space_bits=15),
    "default": ExperimentScale("default", 30_000, 3, 120, space_bits=17),
    "paper": ExperimentScale("paper", 100_000, 3, 200, space_bits=19),
}


def resolve_scale(name: str | None = None) -> ExperimentScale:
    """Pick a scale by name, CLI argument, or ``REPRO_SCALE`` env var."""
    chosen = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[chosen]
    except KeyError:
        raise ValueError(
            f"unknown scale {chosen!r}; choose from {sorted(SCALES)}"
        ) from None


@dataclass
class Series:
    """One plotted line: (x, y) pairs plus a label."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    def ys(self) -> list[float]:
        return [y for _, y in self.points]


@dataclass
class FigureResult:
    """Everything one figure module produces.

    ``rows`` is the printable table (the "same rows the paper reports");
    ``series`` carries the raw data for assertions in the benchmarks.
    """

    figure: str
    title: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def get_series(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.figure}")

    def render(self) -> str:
        """Human-readable block: title, one table per series, notes."""
        lines = [f"== {self.figure}: {self.title} =="]
        for series in self.series:
            lines.append(f"-- {series.label}")
            for x, y in series.points:
                lines.append(f"   {x:>12.4g}  {y:>12.4g}")
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)


# -- deterministic per-point randomness -------------------------------------


def point_rng(seed: int, *parts: object) -> Random:
    """An independent, deterministic RNG stream for one sweep point.

    Seeding with a string routes through SHA-512, so the stream is
    stable across processes and platforms (no ``PYTHONHASHSEED``
    dependence) — this is what makes parallel sweep execution
    bit-for-bit identical to the serial run: every point draws from its
    own stream instead of sharing one cursor with its predecessors.
    """
    return Random(":".join([str(seed), *map(str, parts)]))


#: Shared ``--seed`` help text for every CLI in the repo, so the seed
#: contract reads identically everywhere it is offered.
SEED_HELP = (
    "base seed (default 0); each cell derives an independent stream by "
    "string-seeding Random with 'seed:part:...' (SHA-512 underneath), so "
    "--jobs N output is byte-identical to the serial run"
)


# -- sweepable experiments ---------------------------------------------------


def run_sweep(
    sweep: Callable[[ExperimentScale], Sequence[Any]],
    run_point: Callable[[ExperimentScale, int, Any], Any],
    assemble: Callable[[ExperimentScale, int, Sequence[Any]], FigureResult],
    scale: ExperimentScale,
    seed: int,
) -> FigureResult:
    """Serial execution of a sweep-decomposed experiment.

    A figure module that defines ``sweep`` / ``run_point`` / ``assemble``
    implements ``run`` as exactly this composition, so the parallel
    engine (which maps ``run_point`` over worker processes and feeds the
    ordered partials to ``assemble``) produces byte-identical output by
    construction.
    """
    points = sweep(scale)
    partials = [run_point(scale, seed, point) for point in points]
    return assemble(scale, seed, partials)


# -- keyed snapshot / group caches -------------------------------------------

_DRAW_CACHE: dict[tuple, tuple[float, ...]] = {}
_SNAPSHOT_CACHE: dict[Any, RingSnapshot] = {}
_GROUP_CACHE: dict[tuple, MulticastGroup] = {}

#: caches are bounded FIFO so unbounded sweeps cannot exhaust memory
_DRAW_CACHE_MAX = 64
_SNAPSHOT_CACHE_MAX = 24
_GROUP_CACHE_MAX = 32


def clear_caches() -> None:
    """Drop all memoized draws, snapshots and groups (tests, benchmarks)."""
    _DRAW_CACHE.clear()
    _SNAPSHOT_CACHE.clear()
    _GROUP_CACHE.clear()


def _cache_put(cache: dict, key: tuple, value: Any, maximum: int) -> None:
    if len(cache) >= maximum:
        cache.pop(next(iter(cache)))
    cache[key] = value


def bandwidth_draws(
    bandwidth: BandwidthDistribution, count: int, seed: int
) -> tuple[float, ...]:
    """Memoized bandwidth draws: one sample vector per (law, n, seed)."""
    key = (bandwidth, count, seed)
    cached = _DRAW_CACHE.get(key)
    if cached is not None:
        perf.COUNTERS.draw_cache_hits += 1
        return cached
    perf.COUNTERS.draw_cache_misses += 1
    draws = tuple(bandwidth.sample_many(count, Random(seed)))
    _cache_put(_DRAW_CACHE, key, draws, _DRAW_CACHE_MAX)
    return draws


# -- member requests ---------------------------------------------------------
#
# A *member request* is a frozen, picklable value object that fully
# determines one membership snapshot.  Requests are the currency of the
# shared-memory exchange: the parent resolves each distinct request
# once, publishes the snapshot as a flat buffer, and workers attach it
# zero-copy instead of rebuilding (or unpickling) the members per task.
# Two systems whose snapshots only differ by overlay parameters — e.g.
# the Chord and Koorde baselines, which share ``min_capacity = 1`` —
# map to the *same* request and therefore the same physical buffer.


@dataclass(frozen=True)
class BandwidthMembers:
    """Members of the Figures 6-8 setup: capacities from bandwidths.

    ``build`` replicates :meth:`MulticastGroup.build` exactly — same
    draws, same capacity model, same identifier placement RNG — so a
    snapshot resolved through a request is byte-identical to one built
    through the facade.
    """

    bandwidth: BandwidthDistribution
    count: int
    space_bits: int
    per_link_kbps: float
    min_capacity: int
    seed: int

    def build(self) -> RingSnapshot:
        draws = bandwidth_draws(self.bandwidth, self.count, self.seed)
        model = CapacityModel(self.per_link_kbps, minimum=self.min_capacity)
        capacities = model.capacities(list(draws))
        return build_snapshot(
            IdentifierSpace(self.space_bits),
            capacities,
            bandwidths=list(draws),
            rng=Random(self.seed),
        )


@dataclass(frozen=True)
class CapacityMembers:
    """Members of the Figures 9-11 setup: capacities drawn directly."""

    spec: GroupSpec
    seed: int

    def build(self) -> RingSnapshot:
        return generate_group(self.spec, seed=self.seed)


MemberRequest = BandwidthMembers | CapacityMembers


def bandwidth_members(
    kind: "SystemKind | SystemDescriptor | str",
    scale: ExperimentScale,
    per_link_kbps: float,
    bandwidth: UniformBandwidth | None = None,
    seed: int = 0,
) -> BandwidthMembers:
    """The member request behind :func:`bandwidth_group`'s snapshot."""
    system = resolve(kind)
    bandwidth = bandwidth if bandwidth is not None else UniformBandwidth()
    return BandwidthMembers(
        bandwidth=bandwidth,
        count=scale.group_size,
        space_bits=scale.space_bits,
        per_link_kbps=per_link_kbps,
        min_capacity=system.min_capacity,
        seed=seed,
    )


def members_snapshot(request: MemberRequest) -> RingSnapshot:
    """Resolve a member request to its snapshot.

    Resolution order: a published shared-memory buffer (workers attach
    zero-copy), then the process-local snapshot cache, then a fresh
    deterministic build.  All three produce the same members, so the
    path taken never changes a result — only how the bytes got here.
    """
    shared = exchange.acquire(request)
    if shared is not None:
        return shared
    cached = _SNAPSHOT_CACHE.get(request)
    if cached is not None:
        return cached
    snapshot = request.build()
    _cache_put(_SNAPSHOT_CACHE, request, snapshot, _SNAPSHOT_CACHE_MAX)
    return snapshot


# -- group construction -----------------------------------------------------


def bandwidth_group(
    kind: "SystemKind | SystemDescriptor | str",
    scale: ExperimentScale,
    per_link_kbps: float,
    bandwidth: UniformBandwidth | None = None,
    uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    seed: int = 0,
) -> MulticastGroup:
    """A group in the Figures 6-8 setup: capacities from bandwidths."""
    system = resolve(kind)
    bandwidth = bandwidth if bandwidth is not None else UniformBandwidth()
    key = (
        system.kind,
        bandwidth,
        per_link_kbps,
        scale.group_size,
        scale.space_bits,
        uniform_fanout,
        seed,
    )
    cached = _GROUP_CACHE.get(key)
    if cached is not None:
        perf.COUNTERS.group_cache_hits += 1
        return cached
    perf.COUNTERS.group_cache_misses += 1
    request = BandwidthMembers(
        bandwidth=bandwidth,
        count=scale.group_size,
        space_bits=scale.space_bits,
        per_link_kbps=per_link_kbps,
        min_capacity=system.min_capacity,
        seed=seed,
    )
    snapshot = members_snapshot(request)
    group = MulticastGroup.from_snapshot(system, snapshot, uniform_fanout=uniform_fanout)
    _cache_put(_GROUP_CACHE, key, group, _GROUP_CACHE_MAX)
    return group


def capacity_group(
    kind: "SystemKind | SystemDescriptor | str",
    scale: ExperimentScale,
    capacities: CapacityDistribution,
    uniform_fanout: int = DEFAULT_UNIFORM_FANOUT,
    seed: int = 0,
) -> MulticastGroup:
    """A group in the Figures 9-11 setup: capacities drawn directly."""
    system = resolve(kind)
    spec = GroupSpec(
        size=scale.group_size,
        space_bits=scale.space_bits,
        capacities=capacities,
        min_capacity=system.min_capacity,
    )
    key = (system.kind, spec, uniform_fanout, seed)
    cached = _GROUP_CACHE.get(key)
    if cached is not None:
        perf.COUNTERS.group_cache_hits += 1
        return cached
    perf.COUNTERS.group_cache_misses += 1
    # The ring itself only depends on (spec, seed): overlays with the
    # same capacity floor (e.g. Chord and Koorde baselines) share it.
    snapshot = members_snapshot(CapacityMembers(spec=spec, seed=seed))
    group = MulticastGroup.from_snapshot(system, snapshot, uniform_fanout=uniform_fanout)
    _cache_put(_GROUP_CACHE, key, group, _GROUP_CACHE_MAX)
    return group


def averaged_over_sources(
    group: MulticastGroup,
    scale: ExperimentScale,
    metric: Callable[[MulticastResult, RingSnapshot], float],
    seed: int = 0,
) -> float:
    """Run one multicast per source and average a tree metric."""
    rng = Random(seed)
    values = []
    for _ in range(scale.sources):
        source = group.random_member(rng)
        result = group.multicast_from(source)
        values.append(metric(result, group.snapshot))
    return sum(values) / len(values)


def merged_histogram(results: Sequence[MulticastResult]) -> dict[int, int]:
    """Sum of per-tree path-length histograms, averaged per tree."""
    total: dict[int, int] = {}
    for result in results:
        for hops, count in result.path_length_histogram().items():
            total[hops] = total.get(hops, 0) + count
    return {
        hops: round(count / len(results)) for hops, count in sorted(total.items())
    }
