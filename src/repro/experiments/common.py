"""Shared experiment plumbing: scales, result containers, group builders."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Sequence

from repro.capacity.distributions import CapacityDistribution, UniformBandwidth
from repro.multicast.delivery import MulticastResult
from repro.multicast.session import MulticastGroup, SystemKind
from repro.overlay.base import RingSnapshot
from repro.workloads.groups import GroupSpec, generate_group


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing of one harness run.

    ``group_size`` is the paper's n (default 100,000); ``sources`` is
    how many random roots each measurement averages over;
    ``protocol_size`` bounds the live-protocol (churn) experiments,
    which simulate real message exchanges and are far more expensive
    per member than the structural figures.
    """

    name: str
    group_size: int
    sources: int
    protocol_size: int
    space_bits: int = 19


# space_bits shrinks with the group so that the member density n/N stays
# near the paper's 100,000 / 2**19 ~ 0.19 — identifier-window occupancy,
# and with it tree fanout at the deep levels, depends on that density.
SCALES = {
    "quick": ExperimentScale("quick", 5_000, 2, 60, space_bits=15),
    "default": ExperimentScale("default", 30_000, 3, 120, space_bits=17),
    "paper": ExperimentScale("paper", 100_000, 3, 200, space_bits=19),
}


def resolve_scale(name: str | None = None) -> ExperimentScale:
    """Pick a scale by name, CLI argument, or ``REPRO_SCALE`` env var."""
    chosen = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[chosen]
    except KeyError:
        raise ValueError(
            f"unknown scale {chosen!r}; choose from {sorted(SCALES)}"
        ) from None


@dataclass
class Series:
    """One plotted line: (x, y) pairs plus a label."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    def ys(self) -> list[float]:
        return [y for _, y in self.points]


@dataclass
class FigureResult:
    """Everything one figure module produces.

    ``rows`` is the printable table (the "same rows the paper reports");
    ``series`` carries the raw data for assertions in the benchmarks.
    """

    figure: str
    title: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def get_series(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.figure}")

    def render(self) -> str:
        """Human-readable block: title, one table per series, notes."""
        lines = [f"== {self.figure}: {self.title} =="]
        for series in self.series:
            lines.append(f"-- {series.label}")
            for x, y in series.points:
                lines.append(f"   {x:>12.4g}  {y:>12.4g}")
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)


# -- group construction -----------------------------------------------------


def bandwidth_group(
    kind: SystemKind,
    scale: ExperimentScale,
    per_link_kbps: float,
    bandwidth: UniformBandwidth | None = None,
    uniform_fanout: int = 2,
    seed: int = 0,
) -> MulticastGroup:
    """A group in the Figures 6-8 setup: capacities from bandwidths."""
    bandwidth = bandwidth if bandwidth is not None else UniformBandwidth()
    rng = Random(seed)
    draws = bandwidth.sample_many(scale.group_size, rng)
    return MulticastGroup.build(
        kind,
        draws,
        per_link_kbps=per_link_kbps,
        space_bits=scale.space_bits,
        uniform_fanout=uniform_fanout,
        seed=seed,
    )


def capacity_group(
    kind: SystemKind,
    scale: ExperimentScale,
    capacities: CapacityDistribution,
    uniform_fanout: int = 2,
    seed: int = 0,
) -> MulticastGroup:
    """A group in the Figures 9-11 setup: capacities drawn directly."""
    spec = GroupSpec(
        size=scale.group_size,
        space_bits=scale.space_bits,
        capacities=capacities,
        min_capacity=kind.min_capacity,
    )
    snapshot = generate_group(spec, seed=seed)
    return MulticastGroup.from_snapshot(kind, snapshot, uniform_fanout=uniform_fanout)


def averaged_over_sources(
    group: MulticastGroup,
    scale: ExperimentScale,
    metric: Callable[[MulticastResult, RingSnapshot], float],
    seed: int = 0,
) -> float:
    """Run one multicast per source and average a tree metric."""
    rng = Random(seed)
    values = []
    for _ in range(scale.sources):
        source = group.random_member(rng)
        result = group.multicast_from(source)
        values.append(metric(result, group.snapshot))
    return sum(values) / len(values)


def merged_histogram(results: Sequence[MulticastResult]) -> dict[int, int]:
    """Sum of per-tree path-length histograms, averaged per tree."""
    total: dict[int, int] = {}
    for result in results:
        for hops, count in result.path_length_histogram().items():
            total[hops] = total.get(hops, 0) + count
    return {
        hops: round(count / len(results)) for hops, count in sorted(total.items())
    }
