"""Extension J: static-vs-live parity for every registered system.

The figures run the structural world; the resilience studies run the
live protocol.  This experiment certifies they are the *same* system:
one frozen :class:`~repro.systems.MemberSpec` is materialized as both a
structural overlay and a converged live cluster, one multicast runs in
each from the same source, and the live dissemination tree (rebuilt
from the structured trace by :func:`repro.trace.causal.reconstruct`)
is compared against the implicit structural tree — exact parent edges
for the single-tree systems, receiver set and depth profile for the
floods.

Expected shape: parity = 1.0 for every registered system at every
seed.  Anything below 1.0 means the live tables, the structural
resolver or the descriptor wiring diverged — a regression, not a
tuning issue.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentScale, FigureResult, Series
from repro.systems import MemberSpec, all_descriptors
from repro.systems.parity import check_parity

#: live convergence is the cost driver, so the parity group stays small
GROUP_SIZE = 64
SPACE_BITS = 12
SEEDS = (0, 1)
UNIFORM_FANOUT = 4


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Check parity for all registered systems over a few specs."""
    result = FigureResult(
        figure="extJ",
        title="Static-vs-live parity (1.0 = identical trees) per system",
    )
    size = min(GROUP_SIZE, scale.protocol_size)
    for system in all_descriptors():
        series = Series(label=system.name)
        for offset in SEEDS:
            spec = MemberSpec.generate(
                size, space_bits=SPACE_BITS, seed=seed + offset
            )
            report = check_parity(
                system,
                spec,
                uniform_fanout=UNIFORM_FANOUT,
                seed=seed + offset,
            )
            series.add(float(seed + offset), 1.0 if report.ok else 0.0)
            result.notes.append(report.summary())
        result.series.append(series)
    result.notes.append(
        "Every point must be 1.0: the live protocol on a converged ring "
        "reproduces the structural tree exactly (edges for tree systems, "
        "receivers+depths for floods)."
    )
    return result
