"""Extension M: the scenario matrix as a registered experiment.

Each sweep point is one (scenario, system) cell of the declarative
scenario library (:mod:`repro.scenarios`): the compiler lowers the
spec's topology / workload / fault axes into a fault plan plus an
explicit membership, :func:`repro.scenarios.compile.run_cell` executes
the live quiesce-then-check phase and the static throughput/load
measurement, and every PR-5 oracle judges the result.

Expected shape: every cell at 1.0 — the library pins its chaos where
a healthy protocol must recover, so any violation is a protocol bug
(replay and shrink it with ``python -m repro.scenarios``).

Scales: ``bench``/``quick`` sample a 2 x 2 corner of the matrix (the
CI smoke shape); ``default``/``paper`` run the full 5-scenario x
4-system matrix.  Sweep-decomposed, so ``--jobs N`` fans cells over
the parallel engine with byte-identical output.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.common import ExperimentScale, FigureResult, Series, run_sweep
from repro.systems import system_names

#: The sampled sub-matrix at each scale; None means the full matrix.
SAMPLED_SCENARIOS = {"bench": 2, "quick": 2, "default": None, "paper": None}
SAMPLED_SYSTEMS = {"bench": 2, "quick": 2, "default": None, "paper": None}


def sweep(scale: ExperimentScale) -> Sequence[tuple[str, str]]:
    """One point per (scenario, system) cell."""
    from repro.scenarios import scenario_names

    scenarios = scenario_names()
    systems = system_names()
    scenario_cap = SAMPLED_SCENARIOS.get(scale.name)
    system_cap = SAMPLED_SYSTEMS.get(scale.name)
    if scenario_cap is not None:
        scenarios = scenarios[:scenario_cap]
    if system_cap is not None:
        systems = systems[:system_cap]
    return [
        (scenario, system) for scenario in scenarios for system in systems
    ]


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[str, str]
) -> dict[str, Any]:
    """Compile and execute one cell; returns plain picklable data."""
    from repro.scenarios import compile_cell, get_scenario, run_cell

    scenario, system = point
    outcome = run_cell(compile_cell(get_scenario(scenario), system, seed))
    row = outcome.row()
    row["describe"] = outcome.outcome.plan.describe()
    return row


def assemble(
    scale: ExperimentScale, seed: int, partials: Sequence[dict[str, Any]]
) -> FigureResult:
    """Fold cell outcomes into one pass/fail series per scenario."""
    result = FigureResult(
        figure="extM",
        title="Scenario-matrix oracle verdicts per cell (1.0 = all pass)",
    )
    by_scenario: dict[str, list[dict[str, Any]]] = {}
    for partial in partials:
        by_scenario.setdefault(partial["scenario"], []).append(partial)
    for scenario, rows in by_scenario.items():
        series = Series(label=scenario)
        for index, row in enumerate(rows):
            series.add(float(index), 1.0 if row["passed"] else 0.0)
        result.series.append(series)
        for row in rows:
            delivery = row["mean_delivery"]
            throughput = row["throughput_kbps"]
            result.notes.append(
                f"{scenario} x {row['system']}: "
                f"{'ok' if row['passed'] else 'FAIL'}, delivery "
                f"{f'{delivery:.4f}' if delivery is not None else 'n/a'}, "
                f"throughput "
                f"{f'{throughput:.1f} kbps' if throughput is not None else 'n/a'}, "
                f"load max/mean {row['load_max_over_mean']:.2f}"
            )
            if not row["passed"]:
                result.notes.append(f"  FAILING {row['describe']}")
                result.notes.extend(f"    {v}" for v in row["violations"])
    result.notes.append(
        "Every cell must score 1.0: the library scenarios pin their chaos "
        "where a repaired ring must deliver perfectly; replay and shrink "
        "failures with `python -m repro.scenarios`."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Serial composition of the sweep (the parallel engine maps it)."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
