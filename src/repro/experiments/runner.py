"""Command-line entry point: regenerate any or all figures.

Usage::

    python -m repro.experiments [--scale quick|default|paper] [--seed N] \
        [--jobs N] [fig6 fig7 fig8 fig9 fig10 fig11 extA ... extI | all]

Each figure prints its series as aligned (x, y) tables — the rows the
paper plots — plus shape notes.  ``--out DIR`` additionally writes one
``<figure>.txt`` per result.  ``--jobs N`` fans figure runs,
replication seeds and per-figure sweep points out over N worker
processes; the tables are bit-for-bit identical to the serial run.
``--profile`` wraps each figure in cProfile and prints the top 20
functions by cumulative time.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from repro.experiments import registry
from repro.experiments.common import ExperimentScale, FigureResult, resolve_scale
from repro.experiments.parallel import run_experiments

#: name -> run callable (kept as a mapping for backwards compatibility
#: with library users and tests; the registry is the source of truth).
EXPERIMENTS: dict[str, Callable[[ExperimentScale, int], FigureResult]] = {
    name: registry.load(name).run for name in registry.REGISTRY
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the CAM-Chord/CAM-Koorde paper.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help=f"which experiments to run: {', '.join(registry.REGISTRY)} or 'all'",
    )
    parser.add_argument("--scale", default=None, help="bench | quick | default | paper")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None, help="directory for .txt dumps")
    parser.add_argument(
        "--plot", action="store_true", help="also draw ASCII charts of each figure"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for figure/seed/sweep-point fan-out (default: serial)",
    )
    parser.add_argument(
        "--replicate",
        type=int,
        default=1,
        metavar="N",
        help="run each experiment over N seeds and report mean ± sd",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record structured trace events and write them as JSONL to PATH"
        " (inspect with: python -m repro.trace summarize PATH)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each figure under cProfile and print the top 20 functions"
        " by cumulative time (forces --jobs 1: the profiler only sees"
        " this process)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the experiment names with descriptions and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        width = max(len(name) for name in registry.REGISTRY)
        for info in registry.REGISTRY.values():
            print(f"{info.name:<{width}}  {info.description}")
        return 0
    if args.replicate < 1:
        parser.error("--replicate must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    names = list(registry.REGISTRY) if "all" in args.figures else args.figures
    unknown = [name for name in names if name not in registry.REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiments: {unknown}; choose from {list(registry.REGISTRY)}"
        )

    if args.profile and args.jobs > 1:
        print("# --profile forces --jobs 1 (cProfile cannot see worker processes)")
        args.jobs = 1

    scale = resolve_scale(args.scale)
    print(f"# scale={scale.name} n={scale.group_size} sources={scale.sources}")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    if args.trace is not None:
        from repro.trace.tracer import TRACER

        TRACER.enable()

    # The perf counters are process-global: without this, a second
    # main() call in the same interpreter (tests, notebooks) would start
    # mid-count and any absolute reading would misattribute earlier
    # work.  The footer itself is delta-based per task, so this is
    # belt-and-braces for everything *else* that reads the counters.
    from repro import perf

    perf.reset()

    total_started = time.time()
    seeds = [args.seed + offset for offset in range(args.replicate)]
    if args.profile:
        import cProfile
        import pstats

        runs = []
        for name in names:
            profiler = cProfile.Profile()
            profiler.enable()
            runs.extend(run_experiments([name], scale, seeds=seeds, jobs=1))
            profiler.disable()
            print(f"# profile[{name}]: top 20 by cumulative time")
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        runs = run_experiments(names, scale, seeds=seeds, jobs=args.jobs)
    by_name: dict[str, list] = {}
    for run in runs:
        by_name.setdefault(run.name, []).append(run)

    for name in names:
        figure_runs = by_name[name]
        if args.replicate > 1:
            from repro.experiments.replication import aggregate

            rendered = aggregate([run.result for run in figure_runs]).render()
        else:
            result = figure_runs[0].result
            rendered = result.render()
            if args.plot:
                from repro.viz.ascii_chart import render_figure

                rendered += "\n" + render_figure(result)
        print(rendered)
        counters = figure_runs[0].counters
        work = figure_runs[0].work_seconds
        for run in figure_runs[1:]:
            counters = counters + run.counters
            work += run.work_seconds
        print(f"# {name} done: work={work:.1f}s {counters.summary()}\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(rendered + "\n")

    elapsed = time.time() - total_started
    # peak RSS is the process high-water mark (see repro.perf.peak_rss)
    # — under --jobs N the workers' footprints are not included, only
    # the parent that assembled the results.
    rss_mb = perf.peak_rss_mb()
    rss_suffix = f" peak_rss={rss_mb}MB" if rss_mb is not None else ""
    print(
        f"# total: {len(names)} experiment(s) x {args.replicate} seed(s) "
        f"in {elapsed:.1f}s (jobs={args.jobs}){rss_suffix}"
    )

    if args.trace is not None:
        from repro.trace.export import write_jsonl
        from repro.trace.tracer import resequence

        # FigureRun.events slices are in deterministic task-plan order,
        # so serial and --jobs N runs write identical files.
        events = resequence(
            event for run in runs for event in run.events
        )
        write_jsonl(events, args.trace)
        print(f"# trace: {len(events)} events -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
