"""Command-line entry point: regenerate any or all figures.

Usage::

    python -m repro.experiments [--scale quick|default|paper] [--seed N] \
        [fig6 fig7 fig8 fig9 fig10 fig11 extA extB extC extD extE | all]

Each figure prints its series as aligned (x, y) tables — the rows the
paper plots — plus shape notes.  ``--out DIR`` additionally writes one
``<figure>.txt`` per result.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from repro.experiments import (
    fig06_throughput,
    fig07_ratio,
    fig08_tradeoff,
    fig09_pathdist_cam_chord,
    fig10_pathdist_cam_koorde,
    fig11_avg_path_length,
    ext_balance,
    ext_churn,
    ext_load,
    ext_lookup,
    ext_proximity,
    ext_geography,
    ext_reliability,
    ext_sessions,
    ext_timed,
)
from repro.experiments.common import ExperimentScale, FigureResult, resolve_scale

EXPERIMENTS: dict[str, Callable[[ExperimentScale, int], FigureResult]] = {
    "fig6": fig06_throughput.run,
    "fig7": fig07_ratio.run,
    "fig8": fig08_tradeoff.run,
    "fig9": fig09_pathdist_cam_chord.run,
    "fig10": fig10_pathdist_cam_koorde.run,
    "fig11": fig11_avg_path_length.run,
    "extA": ext_churn.run,
    "extB": ext_load.run,
    "extC": ext_lookup.run,
    "extD": ext_proximity.run,
    "extE": ext_balance.run,
    "extF": ext_reliability.run,
    "extG": ext_geography.run,
    "extH": ext_timed.run,
    "extI": ext_sessions.run,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the CAM-Chord/CAM-Koorde paper.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help=f"which experiments to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument("--scale", default=None, help="quick | default | paper")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None, help="directory for .txt dumps")
    parser.add_argument(
        "--plot", action="store_true", help="also draw ASCII charts of each figure"
    )
    parser.add_argument(
        "--replicate",
        type=int,
        default=1,
        metavar="N",
        help="run each experiment over N seeds and report mean ± sd",
    )
    args = parser.parse_args(argv)
    if args.replicate < 1:
        parser.error("--replicate must be >= 1")

    names = list(EXPERIMENTS) if "all" in args.figures else args.figures
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; choose from {list(EXPERIMENTS)}")

    scale = resolve_scale(args.scale)
    print(f"# scale={scale.name} n={scale.group_size} sources={scale.sources}")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.time()
        if args.replicate > 1:
            from repro.experiments.replication import replicate

            seeds = [args.seed + offset for offset in range(args.replicate)]
            rendered = replicate(EXPERIMENTS[name], scale, seeds).render()
        else:
            result = EXPERIMENTS[name](scale, args.seed)
            rendered = result.render()
            if args.plot:
                from repro.viz.ascii_chart import render_figure

                rendered += "\n" + render_figure(result)
        print(rendered)
        print(f"# {name} done in {time.time() - started:.1f}s\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(rendered + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
