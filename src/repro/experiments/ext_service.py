"""Extension N: sustained service-plane throughput vs group count x churn.

The paper establishes one group's dissemination tree; a deployment
runs *hundreds* of groups concurrently over one shared host population
(Section 2's per-group overlays).  This experiment drives the
event-driven service plane (:class:`repro.multicast.plane.ServicePlane`)
with generated multi-group workloads — groups arriving over time with
exponential holding times, per-group send cadences, and poisson member
join/leave churn firing **mid-dissemination** — and measures the
sustained delivery rate the plane achieves as the group count and the
churn rate grow.

Every point is judged by the plane's quiesce oracles before it may
report a number: every send must complete against its frozen send-time
membership (mid-stream leavers still receive in-flight sends; joiners
are obligated only from the next sequence), every per-member sequence
cursor must audit to zero gaps, and no duplicate deliveries may occur.
At ``default``/``paper`` scales the heaviest cell must sustain at
least :data:`CONCURRENCY_TARGET` concurrent groups with churn active.

Sweep-decomposed (``sweep`` / ``run_point`` / ``assemble``), so
``--jobs N`` fans points over the parallel engine with byte-identical
output.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    point_rng,
)
from repro.experiments.common import run_sweep

#: group-count sweep per scale
GROUP_COUNTS = {
    "bench": (12, 30),
    "quick": (30, 60),
    "default": (60, 240),
    "paper": (120, 240, 480),
}

#: churn-rate sweep (member join/leave events per group-second)
CHURN_RATES = {
    "bench": (0.0, 0.1),
    "quick": (0.0, 0.1),
    "default": (0.0, 0.08),
    "paper": (0.0, 0.08),
}

#: concurrent-group floor the heaviest churned cell must sustain
CONCURRENCY_TARGET = {"bench": None, "quick": None, "default": 200, "paper": 200}

#: host population per scale (groups share these uplinks)
HOSTS = {"bench": 150, "quick": 250, "default": 600, "paper": 1000}

#: simulated seconds of workload per scale
HORIZON_S = {"bench": 40.0, "quick": 60.0, "default": 60.0, "paper": 90.0}

GROUP_SIZE = 6
SEND_INTERVAL_S = 5.0
MESSAGE_KBITS = 8.0


def sweep(scale: ExperimentScale) -> Sequence[tuple[int, float]]:
    """One point per (group count, churn rate) cell."""
    return [
        (groups, churn)
        for churn in CHURN_RATES[scale.name]
        for groups in GROUP_COUNTS[scale.name]
    ]


def _workload_spec(scale: ExperimentScale, groups: int, churn: float):
    from repro.workloads import ServiceWorkloadSpec

    horizon = HORIZON_S[scale.name]
    return ServiceWorkloadSpec(
        groups=groups,
        hosts=HOSTS[scale.name],
        group_size=GROUP_SIZE,
        horizon_s=horizon,
        send_interval_s=SEND_INTERVAL_S,
        churn_rate=churn,
        # exponential holding, mean 3x the horizon: arrivals stack up
        # near-fully concurrent while a tail of groups still drops
        # mid-run, exercising teardown under load
        mean_hold_s=horizon * 3.0,
        message_kbits=MESSAGE_KBITS,
    )


def _peak_concurrency(events) -> int:
    """Most groups alive at once (events are time-ordered)."""
    alive = 0
    peak = 0
    for event in events:
        if event.action == "create":
            alive += 1
            peak = max(peak, alive)
        elif event.action == "drop":
            alive -= 1
    return peak


def execute_point(
    scale: ExperimentScale, seed: int, point: tuple[int, float]
) -> tuple[dict[str, Any], dict[str, float]]:
    """Generate, replay and audit one workload cell.

    Returns ``(row, timings)``.  The row holds only deterministic
    metrics — including the schedule-cache attribution from a
    :func:`repro.perf.scoped` delta around the plane phase, which is
    replay-exact and therefore identical whether the cell ran serially
    or inside a ``--jobs N`` worker.  Wall-clock measurements live in
    ``timings`` so they never leak into diffable experiment output;
    the benchmark harness reports them separately.
    """
    from repro import perf
    from repro.multicast.plane import ServicePlane
    from repro.workloads import generate_service_workload

    groups, churn = point
    spec = _workload_spec(scale, groups, churn)
    workload_seed = point_rng(seed, "extN", groups, churn).randrange(1 << 31)
    workload = generate_service_workload(spec, seed=workload_seed)

    with perf.scoped() as scope:
        plane = ServicePlane(space_bits=scale.space_bits)
        for name, kbps in workload.hosts:
            plane.register_host(name, kbps)
        plane.replay(workload.events)
        plane.drain()
        plane.verify_quiesced()  # completeness + zero gaps + zero dups
    delta = scope.delta

    report = plane.report()
    counts = workload.counts()
    churn_events = counts.get("join", 0) + counts.get("leave", 0)
    lookups = delta.schedule_cache_hits + delta.schedule_cache_misses
    row = {
        "groups": groups,
        "churn": churn,
        "peak_concurrent": _peak_concurrency(workload.events),
        "sends": counts.get("send", 0),
        "churn_events": churn_events,
        "drops": counts.get("drop", 0),
        "deliveries": report.total_deliveries,
        "deliveries_per_sec": report.deliveries_per_sec(),
        "deferrals": report.total_deferrals,
        "max_queue_depth": max(
            (row["max_queue_depth"] for row in report.rows), default=0
        ),
        "sched_cache": {
            "hits": delta.schedule_cache_hits,
            "misses": delta.schedule_cache_misses,
            "invalidations": delta.schedule_cache_invalidations,
            "wavefront_commits": delta.wavefront_commits,
            "hit_rate": (
                round(delta.schedule_cache_hits / lookups, 4)
                if lookups
                else 0.0
            ),
        },
        "audited": True,  # verify_quiesced raised otherwise
    }
    timings = {
        "plane_wall_s": report.wall_s,
        "deliveries_per_sec_wall": report.wall_deliveries_per_sec(),
    }
    return row, timings


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[int, float]
) -> dict[str, Any]:
    """The sweep-facing face of :func:`execute_point` (row only)."""
    row, _ = execute_point(scale, seed, point)
    return row


def assemble(
    scale: ExperimentScale, seed: int, partials: Sequence[dict[str, Any]]
) -> FigureResult:
    """Fold cells into one deliveries/sec curve per churn rate."""
    result = FigureResult(
        figure="extN",
        title=(
            "Sustained service-plane deliveries/sec vs concurrent group "
            "count, per churn rate"
        ),
    )
    by_churn: dict[float, list[dict[str, Any]]] = {}
    for partial in partials:
        by_churn.setdefault(partial["churn"], []).append(partial)
    for churn in sorted(by_churn):
        rows = sorted(by_churn[churn], key=lambda row: row["groups"])
        series = Series(label=f"churn={churn:g}/group-s")
        for row in rows:
            series.add(float(row["groups"]), row["deliveries_per_sec"])
        result.series.append(series)
        for row in rows:
            result.notes.append(
                f"churn={churn:g} groups={row['groups']} "
                f"(peak concurrent {row['peak_concurrent']}): "
                f"{row['sends']} sends, {row['deliveries']} deliveries "
                f"({row['deliveries_per_sec']:.1f}/s), "
                f"{row['churn_events']} mid-stream join/leave, "
                f"{row['drops']} teardowns, "
                f"{row['deferrals']} uplink deferrals, "
                f"max queue {row['max_queue_depth']}"
            )
            cache = row.get("sched_cache")
            if cache and (cache["hits"] + cache["misses"]):
                result.notes.append(
                    f"churn={churn:g} groups={row['groups']} schedule "
                    f"cache: {cache['hits']}h/{cache['misses']}m "
                    f"({cache['hit_rate'] * 100:.0f}% hits, "
                    f"{cache['invalidations']} invalidated) over "
                    f"{cache['wavefront_commits']} wavefront commits"
                )
    target = CONCURRENCY_TARGET[scale.name]
    if target is not None:
        churned = [row for row in partials if row["churn"] > 0]
        best = max(row["peak_concurrent"] for row in churned)
        if best < target:
            raise AssertionError(
                f"extN must sustain >= {target} concurrent groups under "
                f"churn at scale {scale.name!r}; best cell peaked at {best}"
            )
        result.notes.append(
            f"Concurrency floor met: {best} concurrent groups under "
            f"churn (target {target})."
        )
    result.notes.append(
        "Every cell passed the quiesce oracles: all sends complete "
        "against frozen send-time membership, every sequence cursor "
        "audits to zero gaps, zero duplicate deliveries."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Serial composition of the sweep (the parallel engine maps it)."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
