"""The experiment registry: names, descriptions, module paths.

Kept separate from the CLI runner so the parallel engine's worker
processes can resolve a figure name to its module without importing the
argument-parsing layer.  Modules are imported lazily: a worker that
only ever executes ``fig9`` sweep points never pays for the others.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from types import ModuleType

_PACKAGE = "repro.experiments"


@dataclass(frozen=True)
class ExperimentInfo:
    """One registered experiment: CLI name, module, one-line summary."""

    name: str
    module: str
    description: str


REGISTRY: dict[str, ExperimentInfo] = {
    info.name: info
    for info in (
        ExperimentInfo(
            "fig6", "fig06_throughput",
            "throughput vs average number of children (all four systems)",
        ),
        ExperimentInfo(
            "fig7", "fig07_ratio",
            "CAM/baseline throughput improvement ratio vs bandwidth range",
        ),
        ExperimentInfo(
            "fig8", "fig08_tradeoff",
            "throughput vs average path length trade-off (p sweep)",
        ),
        ExperimentInfo(
            "fig9", "fig09_pathdist_cam_chord",
            "multicast path-length distributions in CAM-Chord",
        ),
        ExperimentInfo(
            "fig10", "fig10_pathdist_cam_koorde",
            "multicast path-length distributions in CAM-Koorde",
        ),
        ExperimentInfo(
            "fig11", "fig11_avg_path_length",
            "average path length vs average capacity + 1.5*ln(n)/ln(c) bound",
        ),
        ExperimentInfo(
            "extA", "ext_churn",
            "delivery ratio under churn on the live protocol (Section 7)",
        ),
        ExperimentInfo(
            "extB", "ext_load",
            "flooding vs shared-tree forwarding-load balance (Section 5.1)",
        ),
        ExperimentInfo(
            "extC", "ext_lookup",
            "lookup hop scaling vs group size (Theorems 1, 2 and 5)",
        ),
        ExperimentInfo(
            "extD", "ext_proximity",
            "proximity neighbor selection ablation (Section 5.2)",
        ),
        ExperimentInfo(
            "extE", "ext_balance",
            "balanced splitter vs El-Ansary broadcast (Section 3.4)",
        ),
        ExperimentInfo(
            "extF", "ext_reliability",
            "acked repair for CAM-Chord multicast (our extension)",
        ),
        ExperimentInfo(
            "extG", "ext_geography",
            "geographic layout (Hilbert) vs PNS vs random (Section 5.2)",
        ),
        ExperimentInfo(
            "extH", "ext_timed",
            "timed packet pipelining vs the Section 6.1 analytic model",
        ),
        ExperimentInfo(
            "extI", "ext_sessions",
            "FastTrack-style session churn workload (Section 5.1)",
        ),
        ExperimentInfo(
            "extJ", "ext_parity",
            "static-vs-live parity: one MemberSpec, two worlds, same tree",
        ),
        ExperimentInfo(
            "extK", "ext_faults",
            "fault-injection campaign: invariant oracles after ring repair",
        ),
        ExperimentInfo(
            "extL", "ext_scale",
            "scale sweep over decades of n: build/multicast/metrics time + RSS",
        ),
        ExperimentInfo(
            "extM", "ext_scenarios",
            "scenario matrix: workload x fault x topology cells under oracles",
        ),
        ExperimentInfo(
            "extN", "ext_service",
            "service plane: sustained deliveries/sec vs group count x churn",
        ),
        ExperimentInfo(
            "extO", "ext_failover",
            "repair vs precomputed-backup failover: delivery-gap distributions",
        ),
    )
}


def load(name: str) -> ModuleType:
    """Import (once) and return the module behind an experiment name."""
    try:
        info = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {list(REGISTRY)}"
        ) from None
    return importlib.import_module(f"{_PACKAGE}.{info.module}")


def is_sweepable(module: ModuleType) -> bool:
    """True when the module decomposes into parallelizable sweep points."""
    return all(
        callable(getattr(module, attr, None))
        for attr in ("sweep", "run_point", "assemble")
    )
