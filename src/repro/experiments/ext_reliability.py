"""Extension F: acknowledged repair for CAM-Chord multicast.

The Section 3.4 routine is fire-and-forget: under churn, the subtree
behind a stale neighbor-table entry is silently lost (extA quantifies
how much).  The repair extension acks every region handoff; a silent
child is pinged, declared dead, purged, and its region re-resolved via
a lookup once stabilization has absorbed the failure.  This experiment
sweeps churn rates with repair off/on.

Expected shape: repair recovers most of the loss the baseline suffers
— approaching flooding's delivery ratio at a tiny fraction of its
duplicate-traffic cost — while adding latency only on the repaired
paths.
"""

from __future__ import annotations

import math
from random import Random

from repro.churn.runner import ChurnExperiment
from repro.churn.trace import poisson_trace
from repro.experiments.common import ExperimentScale, FigureResult, Series
from repro.protocol.config import ProtocolConfig
from repro.systems import SystemKind

CHURN_RATES = (0.0, 0.05, 0.15, 0.3)
DURATION = 120.0


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the repair ablation series."""
    result = FigureResult(
        figure="extF",
        title="CAM-Chord delivery ratio vs churn: baseline vs acked repair",
    )
    rng = Random(seed)
    capacities = [rng.randint(4, 10) for _ in range(scale.protocol_size)]
    variants = (
        ("baseline", ProtocolConfig(reliable_multicast=False)),
        ("acked-repair", ProtocolConfig(reliable_multicast=True)),
    )
    dup_series = {name: Series(label=f"{name} dups/msg") for name, _ in variants}
    for name, config in variants:
        series = Series(label=name)
        for rate in CHURN_RATES:
            trace = poisson_trace(
                DURATION,
                join_rate=rate,
                depart_rate=rate,
                rng=Random(seed + int(rate * 1000)),
            )
            experiment = ChurnExperiment(
                SystemKind.CAM_CHORD,
                capacities,
                space_bits=16,
                seed=seed,
                config=config,
            )
            report = experiment.run(
                trace,
                multicast_interval=10.0,
                # repair needs timeout+stabilize+lookup rounds to finish
                propagation_window=20.0 if config.reliable_multicast else 4.0,
                system_name=name,
            )
            if not math.isnan(report.mean_delivery_ratio):
                series.add(rate, report.mean_delivery_ratio)
            dup_series[name].add(rate, report.mean_duplicates)
        result.series.append(series)
    result.series.extend(dup_series.values())
    result.notes.append(
        "Acked repair should close most of the baseline's churn loss "
        "with orders of magnitude fewer duplicates than flooding "
        "(compare extA's cam-koorde dups/msg)."
    )
    return result
