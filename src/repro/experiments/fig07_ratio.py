"""Figure 7: throughput improvement ratio vs upload-bandwidth range.

Setup: the bandwidth lower bound is pinned at a = 400 kbps and the
upper bound b sweeps 800..1600 kbps.  For each range the CAM system
(p = 100 kbps) is compared against its baseline run at the *matched*
uniform fanout — the rounded mean CAM capacity — so both trees have
comparable average children and only capacity-awareness differs.

Expected shape (paper): the ratio grows with the range width and is
"roughly proportional to (a + b) / 2a" — the degree of bandwidth
heterogeneity.
"""

from __future__ import annotations

from typing import Sequence

from repro.capacity.distributions import UniformBandwidth
from repro.experiments.common import (
    BandwidthMembers,
    ExperimentScale,
    FigureResult,
    Series,
    averaged_over_sources,
    bandwidth_group,
    bandwidth_members,
    run_sweep,
)
from repro.metrics.throughput import sustainable_throughput
from repro.systems import capacity_aware_systems, descriptor_for

UPPER_BOUNDS = (800.0, 1000.0, 1200.0, 1400.0, 1600.0)
LOWER_BOUND = 400.0
PER_LINK = 100.0

#: (CAM system, its baseline, series label) — each capacity-aware system
#: is compared against the baseline its descriptor names.
PAIRS = tuple(
    (
        system.kind,
        system.baseline,
        f"{system.name} over {descriptor_for(system.baseline).name}",
    )
    for system in capacity_aware_systems()
    if system.baseline is not None
)


def sweep(scale: ExperimentScale) -> list[tuple[float, int]]:
    """One point per (bandwidth upper bound, CAM/baseline pair)."""
    return [
        (upper, pair_index)
        for upper in UPPER_BOUNDS
        for pair_index in range(len(PAIRS))
    ]


def member_requests(
    scale: ExperimentScale, seed: int
) -> list[BandwidthMembers]:
    """Every membership the sweep resolves: per (upper bound, system)
    — CAM and baseline of a pair share a request when their capacity
    floors coincide."""
    requests: list[BandwidthMembers] = []
    for upper, pair_index in sweep(scale):
        bandwidth = UniformBandwidth(LOWER_BOUND, upper)
        for kind in PAIRS[pair_index][:2]:
            request = bandwidth_members(
                kind, scale, per_link_kbps=PER_LINK, bandwidth=bandwidth, seed=seed
            )
            if request not in requests:
                requests.append(request)
    return requests


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[float, int]
) -> tuple[str, float, float]:
    """Measure one ratio point: (series label, upper bound, ratio)."""
    upper, pair_index = point
    cam_kind, base_kind, label = PAIRS[pair_index]
    bandwidth = UniformBandwidth(LOWER_BOUND, upper)
    matched_fanout = max(2, round(bandwidth.mean() / PER_LINK))
    cam_group = bandwidth_group(
        cam_kind, scale, per_link_kbps=PER_LINK, bandwidth=bandwidth, seed=seed
    )
    base_group = bandwidth_group(
        base_kind,
        scale,
        per_link_kbps=PER_LINK,
        bandwidth=bandwidth,
        uniform_fanout=matched_fanout,
        seed=seed,
    )
    cam_throughput = averaged_over_sources(
        cam_group, scale, lambda r, s: sustainable_throughput(r, s)
    )
    base_throughput = averaged_over_sources(
        base_group, scale, lambda r, s: sustainable_throughput(r, s)
    )
    return (label, upper, cam_throughput / base_throughput)


def assemble(
    scale: ExperimentScale,
    seed: int,
    partials: Sequence[tuple[str, float, float]],
) -> FigureResult:
    """Collect the ratio points plus the analytic reference curve."""
    result = FigureResult(
        figure="fig7",
        title="Throughput improvement ratio vs upload bandwidth upper bound",
    )
    ratio_series = {label: Series(label=label) for _, _, label in PAIRS}
    for label, upper, ratio in partials:
        ratio_series[label].add(upper, ratio)
    heterogeneity = Series(label="(a+b)/2a reference")
    for upper in UPPER_BOUNDS:
        heterogeneity.add(upper, UniformBandwidth(LOWER_BOUND, upper).heterogeneity())
    result.series.extend(ratio_series.values())
    result.series.append(heterogeneity)
    result.notes.append(
        "Ratios should increase with the upper bound, tracking (a+b)/2a."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 7 series."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
