"""Extension D: proximity neighbor selection ablation (Section 5.2).

Hosts are placed on a geographic torus (delay grows with distance,
from LAN-scale to transcontinental).  The default CAM-Chord multicast
picks each child as the first member of its neighbor window; the PNS
variant probes up to 16 window members and picks the lowest-delay one.
Both produce exactly-once trees with identical fanout bounds; the
comparison is end-to-end delivery delay.

Expected shape: PNS reduces mean and tail delay substantially (the
hop *count* stays similar — proximity buys cheaper hops, not fewer).
"""

from __future__ import annotations

from random import Random

from repro.experiments.common import ExperimentScale, FigureResult, Series, bandwidth_group
from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.proximity import pns_cam_chord_multicast, tree_delay_statistics
from repro.multicast.session import SystemKind
from repro.overlay.cam_chord import CamChordOverlay
from repro.sim.latency import GeographicLatency


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the proximity ablation."""
    result = FigureResult(
        figure="extD",
        title="Proximity neighbor selection: delivery delay (seconds)",
    )
    # PNS probes cost O(probe_limit) per child, so run this ablation on
    # a moderate group even at paper scale.
    sub_scale = ExperimentScale(
        name=f"{scale.name}-pns",
        group_size=min(scale.group_size, 10_000),
        sources=scale.sources,
        protocol_size=scale.protocol_size,
        space_bits=scale.space_bits,
    )
    group = bandwidth_group(
        SystemKind.CAM_CHORD, sub_scale, per_link_kbps=100, seed=seed
    )
    overlay = group.overlay
    assert isinstance(overlay, CamChordOverlay)
    geo = GeographicLatency(jitter=0.0, placement_seed=seed)

    def delay(a: int, b: int) -> float:
        return geo.delay(a, b, Random(0))

    rng = Random(seed)
    default_series = Series(label="default (mean, max, hops)")
    pns_series = Series(label="pns (mean, max, hops)")
    for index in range(sub_scale.sources):
        source = group.random_member(rng)
        default_tree = cam_chord_multicast(overlay, source)
        pns_tree = pns_cam_chord_multicast(overlay, source, delay)
        members = {n.ident for n in group.snapshot}
        default_tree.verify_exactly_once(members)
        pns_tree.verify_exactly_once(members)
        d_mean, d_max = tree_delay_statistics(default_tree, delay)
        p_mean, p_max = tree_delay_statistics(pns_tree, delay)
        default_series.add(index, d_mean)
        default_series.add(index + 0.25, d_max)
        default_series.add(index + 0.5, default_tree.average_path_length())
        pns_series.add(index, p_mean)
        pns_series.add(index + 0.25, p_max)
        pns_series.add(index + 0.5, pns_tree.average_path_length())
    result.series.extend([default_series, pns_series])
    result.notes.append(
        "Per source: x=k is mean delay, x=k+0.25 max delay, x=k+0.5 "
        "average hop count.  PNS should cut delays while hop counts "
        "stay comparable."
    )
    return result
