"""Figure 8: throughput vs average path length (the p trade-off).

Sweeping the per-link rate ``p`` moves both metrics at once: a smaller
``p`` raises every capacity (shallower trees, lower per-link rate), a
larger ``p`` does the opposite.  The figure plots the resulting
(throughput, average path length) locus for CAM-Chord and CAM-Koorde.

Expected shape (paper): both curves rise (higher throughput costs
longer paths), CAM-Koorde slightly wins at low throughput / large
capacities, CAM-Chord wins at high throughput / small capacities, with
a crossover in the middle (the paper's crossed near 46 kbps).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    averaged_over_sources,
    bandwidth_group,
    run_sweep,
)
from repro.metrics.throughput import sustainable_throughput
from repro.multicast.session import SystemKind

PER_LINK_SWEEP = (10.0, 20.0, 30.0, 45.0, 60.0, 80.0, 100.0, 120.0, 140.0)

SYSTEMS = (SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE)


def sweep(scale: ExperimentScale) -> list[tuple[SystemKind, float]]:
    """One point per (CAM system, per-link rate p)."""
    return [(kind, per_link) for kind in SYSTEMS for per_link in PER_LINK_SWEEP]


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[SystemKind, float]
) -> tuple[str, float, float]:
    """Measure one trade-off point: (label, throughput, path length)."""
    kind, per_link = point
    group = bandwidth_group(kind, scale, per_link_kbps=per_link, seed=seed)
    throughput = averaged_over_sources(
        group, scale, lambda r, s: sustainable_throughput(r, s)
    )
    path = averaged_over_sources(group, scale, lambda r, s: r.average_path_length())
    return (kind.value, throughput, path)


def assemble(
    scale: ExperimentScale,
    seed: int,
    partials: Sequence[tuple[str, float, float]],
) -> FigureResult:
    """Collect the trade-off loci, sorted by throughput per system."""
    result = FigureResult(
        figure="fig8",
        title="Throughput (kbps) vs average multicast path length",
    )
    per_label = {kind.value: Series(label=kind.value) for kind in SYSTEMS}
    for label, throughput, path in partials:
        per_label[label].add(throughput, path)
    for series in per_label.values():
        series.points.sort()
        result.series.append(series)
    result.notes.append(
        "Both curves rise: throughput is bought with latency.  CAM-Koorde "
        "should win (lower path length) on the low-throughput side, "
        "CAM-Chord on the high-throughput side."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 8 series (x = throughput, y = path length)."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
