"""Extension A: delivery ratio under churn (live protocol).

The paper claims — without a figure — that CAM-Chord suits "relatively
small frequency of membership change" while CAM-Koorde works better
under "relatively large frequency of membership change" (Section 7).
This experiment quantifies the claim on the live protocol: both systems
run the same Poisson churn trace while multicasting, and the delivery
ratio (against members alive at send time and still alive at
measurement) is recorded per churn rate.

Expected shape: both near 1.0 at zero churn; as the churn rate grows,
CAM-Chord's single-path implicit trees lose traffic faster than
CAM-Koorde's redundant flooding — which instead pays with duplicate
control traffic.
"""

from __future__ import annotations

import math
from random import Random

from repro.churn.runner import ChurnExperiment
from repro.churn.trace import poisson_trace
from repro.experiments.common import ExperimentScale, FigureResult, Series
from repro.systems import capacity_aware_systems

#: churn event rates (joins/sec == departures/sec), swept
CHURN_RATES = (0.0, 0.05, 0.15, 0.3)

DURATION = 120.0


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the churn-resilience series."""
    result = FigureResult(
        figure="extA",
        title="Mean delivery ratio vs churn rate (live protocol)",
    )
    rng = Random(seed)
    capacities = [rng.randint(4, 10) for _ in range(scale.protocol_size)]
    systems = capacity_aware_systems()
    duplicate_series = {
        system.name: Series(label=f"{system.name} dups/msg") for system in systems
    }
    for system in systems:
        name = system.name
        series = Series(label=name)
        for rate in CHURN_RATES:
            trace = poisson_trace(
                DURATION,
                join_rate=rate,
                depart_rate=rate,
                rng=Random(seed + int(rate * 1000)),
            )
            experiment = ChurnExperiment(
                system,
                capacities,
                space_bits=16,
                seed=seed,
            )
            report = experiment.run(
                trace,
                multicast_interval=10.0,
                propagation_window=4.0,
                system_name=name,
            )
            if not math.isnan(report.mean_delivery_ratio):
                series.add(rate, report.mean_delivery_ratio)
            duplicate_series[name].add(rate, report.mean_duplicates)
        result.series.append(series)
    result.series.extend(duplicate_series.values())
    result.notes.append(
        "Flooding (cam-koorde) should hold delivery near 1.0 as churn "
        "grows while the tree-based cam-chord degrades; the price is "
        "the duplicate traffic in the dups/msg series."
    )
    return result
