"""Multi-seed replication of experiments with summary statistics.

A single seed answers "what happened"; replication answers "how much of
that is noise".  :func:`replicate` reruns an experiment across seeds
and aggregates matching series point-wise into mean and sample
standard deviation — usable by any experiment module since they all
return :class:`FigureResult`.

Series whose x-values differ across seeds (e.g. measured-children
sweeps) are aligned by *rank* rather than by x: the i-th point of each
run is treated as the same sweep position.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.experiments.common import ExperimentScale, FigureResult, Series


@dataclass
class ReplicatedSeries:
    """One series aggregated across seeds."""

    label: str
    xs: list[float] = field(default_factory=list)
    means: list[float] = field(default_factory=list)
    deviations: list[float] = field(default_factory=list)

    def as_series(self) -> Series:
        """Mean values as a plain series (for the chart renderer)."""
        series = Series(label=f"{self.label} (mean of runs)")
        for x, mean in zip(self.xs, self.means):
            series.add(x, mean)
        return series

    def rows(self) -> list[str]:
        return [
            f"   {x:>12.4g}  {mean:>12.4g} ± {dev:<10.4g}"
            for x, mean, dev in zip(self.xs, self.means, self.deviations)
        ]


@dataclass
class ReplicatedResult:
    """A figure aggregated across seeds."""

    figure: str
    title: str
    runs: int
    series: list[ReplicatedSeries] = field(default_factory=list)

    def get_series(self, label: str) -> ReplicatedSeries:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.figure}")

    def render(self) -> str:
        lines = [f"== {self.figure}: {self.title} [{self.runs} seeds, mean ± sd] =="]
        for series in self.series:
            lines.append(f"-- {series.label}")
            lines.extend(series.rows())
        return "\n".join(lines)


def _mean_and_deviation(values: Sequence[float]) -> tuple[float, float]:
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def replicate(
    experiment: Callable[[ExperimentScale, int], FigureResult],
    scale: ExperimentScale,
    seeds: Sequence[int],
) -> ReplicatedResult:
    """Run ``experiment`` once per seed and aggregate point-wise."""
    if not seeds:
        raise ValueError("need at least one seed")
    return aggregate([experiment(scale, seed) for seed in seeds])


def aggregate(results: Sequence[FigureResult]) -> ReplicatedResult:
    """Point-wise mean ± sd over already-computed per-seed results.

    Split out from :func:`replicate` so the parallel engine can fan the
    per-seed runs over worker processes and aggregate afterwards.
    """
    if not results:
        raise ValueError("need at least one result")
    first = results[0]
    aggregated = ReplicatedResult(
        figure=first.figure, title=first.title, runs=len(results)
    )
    for series in first.series:
        label = series.label
        runs = [result.get_series(label) for result in results]
        points = min(len(run.points) for run in runs)
        replicated = ReplicatedSeries(label=label)
        for index in range(points):
            xs = [run.points[index][0] for run in runs]
            ys = [run.points[index][1] for run in runs]
            x_mean, _ = _mean_and_deviation(xs)
            y_mean, y_dev = _mean_and_deviation(ys)
            replicated.xs.append(x_mean)
            replicated.means.append(y_mean)
            replicated.deviations.append(y_dev)
        aggregated.series.append(replicated)
    return aggregated
