"""Extension C: lookup path lengths (Theorems 1, 2 and 5).

Measures average lookup hops for all four overlays across group sizes,
against the theoretical ``log n / log c`` scaling.  The paper proves
the bounds but does not plot them; this experiment closes the gap and
doubles as a regression harness for the routing implementations.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.capacity.distributions import UniformCapacity
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    capacity_group,
    point_rng,
    run_sweep,
)
from repro.multicast.session import SystemKind

LOOKUPS_PER_POINT = 200
SIZE_FRACTIONS = (0.1, 0.3, 1.0)

DISTRIBUTION = UniformCapacity(4, 10)


def _sub_scale(scale: ExperimentScale, fraction: float) -> tuple[ExperimentScale, int]:
    """The shrunken scale for one sweep fraction, at constant density."""
    size = max(64, int(scale.group_size * fraction))
    density = scale.group_size / (1 << scale.space_bits)
    # keep member density constant: de Bruijn hop counts track the
    # number of *bits to inject*, so log(N) must scale with log(n)
    bits = max(8, math.ceil(math.log2(size / density)))
    sub = ExperimentScale(
        name=f"{scale.name}*{fraction}",
        group_size=size,
        sources=scale.sources,
        protocol_size=scale.protocol_size,
        space_bits=bits,
    )
    return sub, size


def sweep(scale: ExperimentScale) -> list[tuple[float, SystemKind]]:
    """One point per (group-size fraction, overlay system)."""
    return [
        (fraction, kind) for fraction in SIZE_FRACTIONS for kind in SystemKind
    ]


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[float, SystemKind]
) -> tuple[str, float, float]:
    """Average lookup hops of one system at one group size."""
    fraction, kind = point
    sub, size = _sub_scale(scale, fraction)
    rng = point_rng(seed, "extC", fraction, kind.value)
    group = capacity_group(kind, sub, DISTRIBUTION, uniform_fanout=8, seed=seed)
    hops = []
    for _ in range(LOOKUPS_PER_POINT):
        start = group.snapshot.random_node(rng)
        key = rng.randrange(group.overlay.space.size)
        hops.append(group.lookup(start, key).hops)
    return (kind.value, float(size), sum(hops) / len(hops))


def assemble(
    scale: ExperimentScale,
    seed: int,
    partials: Sequence[tuple[str, float, float]],
) -> FigureResult:
    """Collect the per-system scalings plus the analytic reference."""
    result = FigureResult(
        figure="extC",
        title="Average lookup hops vs group size (capacities [4..10])",
    )
    per_system = {kind.value: Series(label=kind.value) for kind in SystemKind}
    for label, size, mean_hops in partials:
        per_system[label].add(size, mean_hops)
    reference = Series(label="ln(n)/ln(7) reference")
    for fraction in SIZE_FRACTIONS:
        _, size = _sub_scale(scale, fraction)
        reference.add(size, math.log(size) / math.log(7))
    result.series.extend(per_system.values())
    result.series.append(reference)
    result.notes.append(
        "All systems should grow logarithmically with n; the CAM "
        "overlays should track the ln(n)/ln(mean capacity) reference."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the lookup-scaling series."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
