"""Extension C: lookup path lengths (Theorems 1, 2 and 5).

Measures average lookup hops for all four overlays across group sizes,
against the theoretical ``log n / log c`` scaling.  The paper proves
the bounds but does not plot them; this experiment closes the gap and
doubles as a regression harness for the routing implementations.
"""

from __future__ import annotations

import math
from random import Random

from repro.capacity.distributions import UniformCapacity
from repro.experiments.common import ExperimentScale, FigureResult, Series, capacity_group
from repro.multicast.session import SystemKind

LOOKUPS_PER_POINT = 200
SIZE_FRACTIONS = (0.1, 0.3, 1.0)


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the lookup-scaling series."""
    result = FigureResult(
        figure="extC",
        title="Average lookup hops vs group size (capacities [4..10])",
    )
    rng = Random(seed)
    distribution = UniformCapacity(4, 10)
    reference = Series(label="ln(n)/ln(7) reference")
    per_system = {
        kind: Series(label=kind.value)
        for kind in SystemKind
    }
    density = scale.group_size / (1 << scale.space_bits)
    for fraction in SIZE_FRACTIONS:
        size = max(64, int(scale.group_size * fraction))
        # keep member density constant: de Bruijn hop counts track the
        # number of *bits to inject*, so log(N) must scale with log(n)
        bits = max(8, math.ceil(math.log2(size / density)))
        sub_scale = ExperimentScale(
            name=f"{scale.name}*{fraction}",
            group_size=size,
            sources=scale.sources,
            protocol_size=scale.protocol_size,
            space_bits=bits,
        )
        for kind, series in per_system.items():
            group = capacity_group(kind, sub_scale, distribution, uniform_fanout=8, seed=seed)
            hops = []
            for _ in range(LOOKUPS_PER_POINT):
                start = group.snapshot.random_node(rng)
                key = rng.randrange(group.overlay.space.size)
                hops.append(group.lookup(start, key).hops)
            series.add(size, sum(hops) / len(hops))
        reference.add(size, math.log(size) / math.log(7))
    result.series.extend(per_system.values())
    result.series.append(reference)
    result.notes.append(
        "All systems should grow logarithmically with n; the CAM "
        "overlays should track the ln(n)/ln(mean capacity) reference."
    )
    return result
