"""Extension H: timed transfer vs. the Section 6.1 analytic model.

Figure 6's throughput numbers come from the analytic bottleneck
``min_x B_x / d_x``.  This experiment validates that model with the
packet-level store-and-forward simulation: for each per-link rate
``p`` it pipelines a long message (and a short one) through the
CAM-Chord implicit tree and compares the measured worst-member rate
with the analytic prediction.

Expected shape: for messages much longer than the tree is deep, the
measured/analytic ratio sits near 1.0 (validating Figure 6's model);
for short messages propagation dominates and the ratio collapses —
the regime where latency (Figures 9-11) matters more than throughput.
"""

from __future__ import annotations

from random import Random

from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    bandwidth_group,
)
from repro.multicast.session import SystemKind
from repro.sim.transfer import analytic_bottleneck_kbps, simulate_tree_transfer

PER_LINK_SWEEP = (25.0, 50.0, 100.0)
LONG_MESSAGE_KBITS = 100_000.0  # ~12 MB video segment
SHORT_MESSAGE_KBITS = 8.0       # one small packet burst


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the timed-vs-analytic comparison."""
    result = FigureResult(
        figure="extH",
        title="Timed pipeline throughput vs the analytic bottleneck model",
    )
    # packet-level timing is O(packets * n); keep the group moderate
    sub_scale = ExperimentScale(
        name=f"{scale.name}-timed",
        group_size=min(scale.group_size, 10_000),
        sources=scale.sources,
        protocol_size=scale.protocol_size,
        space_bits=scale.space_bits,
    )
    rng = Random(seed)
    analytic_series = Series(label="analytic bottleneck (kbps)")
    long_series = Series(label="measured long-message (kbps)")
    ratio_series = Series(label="measured/analytic (long)")
    short_series = Series(label="measured short-message (kbps)")
    for per_link in PER_LINK_SWEEP:
        group = bandwidth_group(
            SystemKind.CAM_CHORD, sub_scale, per_link_kbps=per_link, seed=seed
        )
        analytic_values = []
        long_values = []
        short_values = []
        for _ in range(sub_scale.sources):
            source = group.random_member(rng)
            tree = group.multicast_from(source)
            analytic_values.append(analytic_bottleneck_kbps(tree, group.snapshot))
            long = simulate_tree_transfer(
                tree, group.snapshot, LONG_MESSAGE_KBITS, packet_count=64
            )
            long_values.append(long.measured_throughput_kbps)
            short = simulate_tree_transfer(
                tree, group.snapshot, SHORT_MESSAGE_KBITS, packet_count=4
            )
            short_values.append(short.measured_throughput_kbps)
        analytic = sum(analytic_values) / len(analytic_values)
        long_measured = sum(long_values) / len(long_values)
        analytic_series.add(per_link, analytic)
        long_series.add(per_link, long_measured)
        ratio_series.add(per_link, long_measured / analytic)
        short_series.add(per_link, sum(short_values) / len(short_values))
    result.series.extend(
        [analytic_series, long_series, ratio_series, short_series]
    )
    result.notes.append(
        "The measured/analytic ratio should sit in [0.85, 1.0] for the "
        "long message (pipelining converges to the fluid model) and the "
        "short-message rate should fall far below it (startup latency)."
    )
    return result
