"""Extension O: repair vs precomputed-backup failover delivery gaps.

The fault campaign (extK) proves the quiesce-then-repair path correct;
this experiment *compares* the two resilience paths the campaign can
run.  Each sweep point is one seed-deterministic fault plan executed
down both paths under identical seeds and the same early quiesce
instant (:func:`repro.faults.compare_plan`):

* **repair** — wait for the ring to re-stabilize, then multicast;
  each affected member's gap is the stabilization wait plus in-tree
  flight;
* **failover** — multicast straight into the broken ring and switch
  every orphaned subtree onto its precomputed backup
  (:mod:`repro.multicast.backup`); each affected member's gap is loss
  detection plus a couple of overlay hops.

Expected shape, per system: both paths pass every oracle, and the
failover gap distribution sits strictly below the repair one at the
median — detection (~the RPC timeout) is far cheaper than even one
stabilization round, which is the whole argument for installing
backups ahead of failure.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.churn.resilience import percentile
from repro.experiments.common import ExperimentScale, FigureResult, Series, run_sweep
from repro.faults import compare_plan, generate_plan
from repro.systems import system_names

#: plans per system at each scale (the campaign CLI goes far bigger)
PLANS_PER_SYSTEM = {"bench": 2, "quick": 3, "default": 6, "paper": 10}


def sweep(scale: ExperimentScale) -> Sequence[tuple[str, int]]:
    """One point per (system, plan index)."""
    count = PLANS_PER_SYSTEM.get(scale.name, 6)
    return [
        (system, index)
        for system in system_names()
        for index in range(count)
    ]


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[str, int]
) -> dict[str, Any]:
    """Run one plan down both paths; returns plain picklable data."""
    system, index = point
    plan = generate_plan(system, index, campaign_seed=seed)
    comparison = compare_plan(plan)
    pairs = comparison.paired_gaps()
    return {
        "system": system,
        "index": index,
        "passed": comparison.passed,
        "violations": [
            f"[{outcome.mode}] {violation}"
            for outcome in (comparison.repair, comparison.failover)
            for violation in outcome.violations
        ],
        "describe": plan.describe(),
        "repair_gaps": [repair for repair, _failover in pairs],
        "failover_gaps": [failover for _repair, failover in pairs],
        "repair_wait": comparison.repair.repair_wait,
    }


def assemble(
    scale: ExperimentScale, seed: int, partials: Sequence[dict[str, Any]]
) -> FigureResult:
    """Fold per-plan pairs into per-system gap-percentile series."""
    result = FigureResult(
        figure="extO",
        title="Affected-member delivery gap: repair vs precomputed failover",
    )
    by_system: dict[str, list[dict[str, Any]]] = {}
    for partial in partials:
        by_system.setdefault(partial["system"], []).append(partial)
    for system, outcomes in by_system.items():
        repair_gaps = [gap for o in outcomes for gap in o["repair_gaps"]]
        failover_gaps = [gap for o in outcomes for gap in o["failover_gaps"]]
        for label, gaps in (
            (f"{system} repair", repair_gaps),
            (f"{system} failover", failover_gaps),
        ):
            series = Series(label=label)
            for fraction in (0.50, 0.90, 0.99):
                # NaN-guarded: a system whose plans orphaned nobody has
                # no pairs, and NaN must not masquerade as a fast path.
                if gaps:
                    series.add(fraction, percentile(gaps, fraction))
            result.series.append(series)
        failures = [o for o in outcomes if not o["passed"]]
        if repair_gaps:
            result.notes.append(
                f"{system}: {len(repair_gaps)} affected members over "
                f"{len(outcomes)} plans, median gap "
                f"repair={percentile(repair_gaps, 0.5):.3f}s "
                f"failover={percentile(failover_gaps, 0.5):.3f}s, "
                f"{len(outcomes) - len(failures)}/{len(outcomes)} plans pass"
            )
        else:
            result.notes.append(
                f"{system}: no plan orphaned any member at this scale; "
                f"gap comparison n/a"
            )
        for failure in failures:
            result.notes.append(f"  FAILING {failure['describe']}")
            result.notes.extend(
                f"    {violation}" for violation in failure["violations"]
            )
    result.notes.append(
        "Both paths quiesce at the same instant (last fault event + "
        "settle), so the repair-path gap honestly includes the "
        "stabilization wait the installed backups skip; the failover "
        "median must sit strictly below the repair median wherever any "
        "member was orphaned."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Serial composition of the sweep (the parallel engine maps it)."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
