"""Figure 6: multicast throughput vs average number of children.

Setup (Section 6.1): n members, upload bandwidths uniform in
[400, 1000] kbps.  The CAM systems derive capacities as
``c_x = floor(B_x / p)`` and their average fanout is swept through
``p`` (mean capacity = E[B]/p); the capacity-oblivious baselines give
*every* node the same fanout ``k`` regardless of bandwidth and are
swept through ``k``.  The x-axis is the configured average fanout —
the knob the paper sweeps; the out-degree *measured per non-leaf tree
node* is smaller because the tree's bottom layer can never fill its
capacity ("as long as the node is not at the bottom levels of the
tree", Section 3.4).

Throughput is the Section 6.1 bottleneck: ``min_x B_x / children(x)``
over internal tree nodes, averaged over several random sources.

Expected shape (paper): both families decay like ``const / fanout``;
the CAM curves sit 70-80% above their baselines across the sweep
(the constant is E[B] vs the minimum bandwidth a), because a CAM
allocation never drops below ``p`` while a uniform fanout lets a
400-kbps node serve as many children as a 1000-kbps one.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    BandwidthMembers,
    ExperimentScale,
    FigureResult,
    Series,
    averaged_over_sources,
    bandwidth_group,
    bandwidth_members,
    run_sweep,
)
from repro.metrics.throughput import sustainable_throughput
from repro.multicast.session import SystemKind
from repro.systems import all_descriptors, descriptor_for

#: per-link rates swept for the CAM systems (kbps); mean capacity = 700/p
CAM_PER_LINK_SWEEP = (10.0, 15.0, 25.0, 40.0, 70.0, 100.0, 140.0)

#: uniform fanouts swept for the baselines
BASELINE_FANOUT_SWEEP = (4, 8, 16, 32, 64)

#: per-link rate the uniform baselines derive (ignored) capacities with
BASELINE_PER_LINK = 100.0

MEAN_BANDWIDTH = 700.0

SERIES_ORDER = tuple(d.kind for d in all_descriptors())


def sweep(scale: ExperimentScale) -> list[tuple[SystemKind, float]]:
    """One point per (system, sweep knob): p for CAMs, k for baselines.

    Which knob a system sweeps follows its fanout policy — the
    capacity-aware systems sweep the per-link rate ``p``, the uniform
    baselines sweep the fanout ``k``.
    """
    points: list[tuple[SystemKind, float]] = []
    for system in all_descriptors():
        knobs = (
            CAM_PER_LINK_SWEEP
            if system.capacity_aware
            else BASELINE_FANOUT_SWEEP
        )
        points.extend((system.kind, float(knob)) for knob in knobs)
    return points


def member_requests(
    scale: ExperimentScale, seed: int
) -> list[BandwidthMembers]:
    """Every membership the sweep resolves — one request per distinct
    (per-link rate, capacity floor); published before the pool starts
    so workers attach the members instead of rebuilding them."""
    requests: list[BandwidthMembers] = []
    for kind, knob in sweep(scale):
        policy = descriptor_for(kind).fanout
        per_link, _ = policy.group_build_args(knob, BASELINE_PER_LINK)
        request = bandwidth_members(kind, scale, per_link_kbps=per_link, seed=seed)
        if request not in requests:
            requests.append(request)
    return requests


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[SystemKind, float]
) -> tuple[str, float, float]:
    """Measure one sweep point: (series label, x, throughput)."""
    kind, knob = point
    policy = descriptor_for(kind).fanout
    per_link, uniform_fanout = policy.group_build_args(knob, BASELINE_PER_LINK)
    group = bandwidth_group(
        kind,
        scale,
        per_link_kbps=per_link,
        uniform_fanout=uniform_fanout,
        seed=seed,
    )
    x = policy.configured_average_fanout(knob, MEAN_BANDWIDTH)
    throughput = averaged_over_sources(
        group, scale, lambda r, s: sustainable_throughput(r, s)
    )
    return (kind.value, x, throughput)


def assemble(
    scale: ExperimentScale,
    seed: int,
    partials: Sequence[tuple[str, float, float]],
) -> FigureResult:
    """Collect the measured points into the Figure 6 series."""
    result = FigureResult(
        figure="fig6",
        title="Throughput (kbps) vs average number of children",
    )
    per_label = {kind.value: Series(label=kind.value) for kind in SERIES_ORDER}
    for label, x, throughput in partials:
        per_label[label].add(x, throughput)
    for series in per_label.values():
        series.points.sort()
        result.series.append(series)
    result.notes.append(
        "CAM capacity-aware curves should dominate the uniform-fanout "
        "baselines at comparable fanout (paper: +70-80%, the bandwidth-"
        "heterogeneity ratio E[B]/min(B) = 1.75)."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 6 series (x = average fanout, y = kbps)."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
