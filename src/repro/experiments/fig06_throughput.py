"""Figure 6: multicast throughput vs average number of children.

Setup (Section 6.1): n members, upload bandwidths uniform in
[400, 1000] kbps.  The CAM systems derive capacities as
``c_x = floor(B_x / p)`` and their average fanout is swept through
``p`` (mean capacity = E[B]/p); the capacity-oblivious baselines give
*every* node the same fanout ``k`` regardless of bandwidth and are
swept through ``k``.  The x-axis is the configured average fanout —
the knob the paper sweeps; the out-degree *measured per non-leaf tree
node* is smaller because the tree's bottom layer can never fill its
capacity ("as long as the node is not at the bottom levels of the
tree", Section 3.4).

Throughput is the Section 6.1 bottleneck: ``min_x B_x / children(x)``
over internal tree nodes, averaged over several random sources.

Expected shape (paper): both families decay like ``const / fanout``;
the CAM curves sit 70-80% above their baselines across the sweep
(the constant is E[B] vs the minimum bandwidth a), because a CAM
allocation never drops below ``p`` while a uniform fanout lets a
400-kbps node serve as many children as a 1000-kbps one.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    averaged_over_sources,
    bandwidth_group,
)
from repro.metrics.throughput import sustainable_throughput
from repro.multicast.session import SystemKind

#: per-link rates swept for the CAM systems (kbps); mean capacity = 700/p
CAM_PER_LINK_SWEEP = (10.0, 15.0, 25.0, 40.0, 70.0, 100.0, 140.0)

#: uniform fanouts swept for the baselines
BASELINE_FANOUT_SWEEP = (4, 8, 16, 32, 64)

MEAN_BANDWIDTH = 700.0


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 6 series (x = average fanout, y = kbps)."""
    result = FigureResult(
        figure="fig6",
        title="Throughput (kbps) vs average number of children",
    )
    for kind in (SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE):
        series = Series(label=kind.value)
        for per_link in CAM_PER_LINK_SWEEP:
            group = bandwidth_group(kind, scale, per_link_kbps=per_link, seed=seed)
            throughput = averaged_over_sources(
                group, scale, lambda r, s: sustainable_throughput(r, s)
            )
            series.add(MEAN_BANDWIDTH / per_link, throughput)
        series.points.sort()
        result.series.append(series)
    for kind in (SystemKind.CHORD, SystemKind.KOORDE):
        series = Series(label=kind.value)
        for fanout in BASELINE_FANOUT_SWEEP:
            group = bandwidth_group(
                kind, scale, per_link_kbps=100.0, uniform_fanout=fanout, seed=seed
            )
            throughput = averaged_over_sources(
                group, scale, lambda r, s: sustainable_throughput(r, s)
            )
            series.add(float(fanout), throughput)
        series.points.sort()
        result.series.append(series)
    result.notes.append(
        "CAM capacity-aware curves should dominate the uniform-fanout "
        "baselines at comparable fanout (paper: +70-80%, the bandwidth-"
        "heterogeneity ratio E[B]/min(B) = 1.75)."
    )
    return result
