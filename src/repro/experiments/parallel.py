"""Parallel experiment engine: fan sweep points out over processes.

The unit of distribution is one *task*: either a whole experiment run
(for monolithic modules such as the live-protocol churn experiments)
or one sweep point of a sweep-decomposed figure module (``sweep`` /
``run_point`` / ``assemble``).  Figure runs, replication seeds and
sweep points all become tasks in one flat list, so a single
``ProcessPoolExecutor`` keeps every core busy regardless of how the
work is shaped.

Determinism: a sweep-decomposed ``run()`` is *defined* as
``assemble(scale, seed, [run_point(scale, seed, p) for p in sweep])``
and every point draws from its own :func:`~repro.experiments.common.point_rng`
stream, so executing the points on worker processes and assembling the
ordered partials yields bit-for-bit the serial output.  The engine
additionally runs the serial path (``jobs <= 1``) through the exact
same task decomposition, making the equivalence testable byte for
byte.

Workers ship their observability delta — :mod:`repro.perf` counter
increments *and* the trace events the task emitted (see
:mod:`repro.trace.registry`) — back with each payload; the engine
folds counters into per-figure totals for the runner's perf footer and
reassembles trace buffers in deterministic task-plan order, which
extends the byte-identical guarantee to ``--trace`` output.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro import perf
from repro.experiments import registry
from repro.experiments.common import ExperimentScale, FigureResult, members_snapshot
from repro.membership import exchange
from repro.trace import registry as obs
from repro.trace.tracer import TRACER, TraceEvent


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a whole figure or a single sweep point."""

    figure: str
    seed: int
    point_index: int | None  # None = monolithic whole-figure run


@dataclass
class FigureRun:
    """One assembled experiment result with its execution accounting.

    ``work_seconds`` sums the wall-clock of the run's tasks — under
    ``--jobs N`` the figure's elapsed wall time can be up to N times
    smaller than its work time.  ``events`` holds the trace events the
    run's tasks emitted (empty unless tracing was enabled), in task
    order.
    """

    name: str
    seed: int
    result: FigureResult
    counters: perf.PerfCounters
    work_seconds: float
    events: tuple[TraceEvent, ...] = field(default_factory=tuple)


def plan_tasks(
    names: Sequence[str], scale: ExperimentScale, seeds: Sequence[int]
) -> list[Task]:
    """The flat task list for a batch of experiments and seeds."""
    tasks: list[Task] = []
    for name in names:
        module = registry.load(name)
        for seed in seeds:
            if registry.is_sweepable(module):
                count = len(module.sweep(scale))
                tasks.extend(Task(name, seed, index) for index in range(count))
            else:
                tasks.append(Task(name, seed, None))
    return tasks


def execute_task(
    task: Task, scale: ExperimentScale
) -> tuple[object, obs.ObsDelta, float]:
    """Run one task, returning (payload, observability delta, wall s).

    Module-level so the process pool can pickle it by reference.
    """
    module = registry.load(task.figure)
    before = obs.snapshot()
    started = time.perf_counter()
    if task.point_index is None:
        payload: object = module.run(scale, task.seed)
    else:
        point = module.sweep(scale)[task.point_index]
        payload = module.run_point(scale, task.seed, point)
    return payload, obs.since(before), time.perf_counter() - started


def _collect_member_requests(
    names: Sequence[str], scale: ExperimentScale, seeds: Sequence[int]
) -> list[object]:
    """Distinct member requests of a batch, in first-appearance order.

    A figure module opts into shared-memory membership by exposing
    ``member_requests(scale, seed)``; modules without the hook keep
    building their members per task (nothing to publish, nothing to
    attach — the fallback path by construction).
    """
    requests: list[object] = []
    seen: set[object] = set()
    for name in names:
        module = registry.load(name)
        hook = getattr(module, "member_requests", None)
        if hook is None:
            continue
        for seed in seeds:
            for request in hook(scale, seed):
                if request not in seen:
                    seen.add(request)
                    requests.append(request)
    return requests


def _init_worker(tracing_enabled: bool, member_handles=None) -> None:
    """Pool initializer: mirror the parent's tracing state and adopt the
    published membership buffers.

    With the fork start method workers inherit the flag anyway, but
    spawn/forkserver workers import a fresh (disabled) tracer — without
    this they would ship empty event deltas.  ``member_handles`` is the
    parent's :func:`~repro.membership.exchange.export_handles` map;
    installing it never attaches — first touch happens inside a task,
    so the attach lands in that task's observability delta.
    """
    if tracing_enabled:
        TRACER.enable()
    else:
        TRACER.disable()
    exchange.install(member_handles if member_handles is not None else {})


def run_experiments(
    names: Sequence[str],
    scale: ExperimentScale,
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
) -> list[FigureRun]:
    """Run experiments over seeds, fanned over ``jobs`` processes.

    Returns one :class:`FigureRun` per (name, seed), ordered name-major
    to match the CLI argument order.  ``jobs <= 1`` executes the same
    task plan in-process (no pool), guaranteeing identical results.
    """
    if not names:
        return []
    tasks = plan_tasks(names, scale, seeds)
    if jobs > 1:
        try:
            for request in _collect_member_requests(names, scale, seeds):
                exchange.publish(request, members_snapshot(request))
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(TRACER.enabled, exchange.export_handles()),
            ) as pool:
                futures = [pool.submit(execute_task, task, scale) for task in tasks]
                outcomes = [future.result() for future in futures]
        finally:
            exchange.release_all()
    else:
        outcomes = [execute_task(task, scale) for task in tasks]

    by_task = dict(zip(tasks, outcomes))
    runs: list[FigureRun] = []
    for name in names:
        module = registry.load(name)
        for seed in seeds:
            if registry.is_sweepable(module):
                point_count = len(module.sweep(scale))
                parts = [by_task[Task(name, seed, i)] for i in range(point_count)]
                result = module.assemble(scale, seed, [p[0] for p in parts])
            else:
                parts = [by_task[Task(name, seed, None)]]
                result = parts[0][0]
            delta = obs.ObsDelta()
            for _, part_delta, _ in parts:
                delta = delta + part_delta
            work = sum(duration for _, _, duration in parts)
            runs.append(
                FigureRun(name, seed, result, delta.counters, work, delta.events)
            )
    return runs
