"""Figure 11: average path length vs average node capacity.

Sweeps the capacity ranges of Figures 9/10 (x = mean capacity) and
plots, alongside both systems, the artificial bound
``1.5 * ln(n) / ln(c)`` that the paper uses to verify Theorems 4 and 6.

Expected shape (paper): both curves fall with capacity and stay below
the bound; CAM-Chord is shorter for mean capacity below ~10,
CAM-Koorde shorter above ~12.
"""

from __future__ import annotations

import math
from random import Random

from repro.capacity.distributions import (
    CapacityDistribution,
    FixedCapacity,
    UniformCapacity,
)
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    capacity_group,
)
from repro.multicast.session import SystemKind

CAPACITY_RANGES: tuple[CapacityDistribution, ...] = (
    FixedCapacity(4),
    UniformCapacity(4, 8),
    UniformCapacity(4, 10),
    UniformCapacity(4, 20),
    UniformCapacity(4, 40),
    UniformCapacity(4, 60),
    UniformCapacity(4, 100),
    UniformCapacity(4, 200),
)


def theoretical_bound(mean_capacity: float, group_size: int) -> float:
    """The paper's reference curve ``1.5 ln(n) / ln(c)``."""
    return 1.5 * math.log(group_size) / math.log(mean_capacity)


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 11 series."""
    result = FigureResult(
        figure="fig11",
        title="Average path length vs average node capacity",
    )
    bound = Series(label="1.5*ln(n)/ln(c)")
    per_system = {
        kind: Series(label=kind.value)
        for kind in (SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE)
    }
    rng = Random(seed)
    for distribution in CAPACITY_RANGES:
        mean_capacity = distribution.mean()
        for kind, series in per_system.items():
            group = capacity_group(kind, scale, distribution, seed=seed)
            lengths = [
                group.multicast_from(group.random_member(rng)).average_path_length()
                for _ in range(scale.sources)
            ]
            series.add(mean_capacity, sum(lengths) / len(lengths))
        bound.add(mean_capacity, theoretical_bound(mean_capacity, scale.group_size))
    result.series.extend(per_system.values())
    result.series.append(bound)
    result.notes.append(
        "Both systems should sit below the 1.5*ln(n)/ln(c) bound; "
        "CAM-Chord wins at small capacities, CAM-Koorde at large ones "
        "(paper crossover between mean capacity 10 and 12)."
    )
    return result
