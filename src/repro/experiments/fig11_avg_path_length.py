"""Figure 11: average path length vs average node capacity.

Sweeps the capacity ranges of Figures 9/10 (x = mean capacity) and
plots, alongside both systems, the artificial bound
``1.5 * ln(n) / ln(c)`` that the paper uses to verify Theorems 4 and 6.

Expected shape (paper): both curves fall with capacity and stay below
the bound; CAM-Chord is shorter for mean capacity below ~10,
CAM-Koorde shorter above ~12.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.capacity.distributions import (
    CapacityDistribution,
    FixedCapacity,
    UniformCapacity,
)
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    capacity_group,
    point_rng,
    run_sweep,
)
from repro.multicast.session import SystemKind

CAPACITY_RANGES: tuple[CapacityDistribution, ...] = (
    FixedCapacity(4),
    UniformCapacity(4, 8),
    UniformCapacity(4, 10),
    UniformCapacity(4, 20),
    UniformCapacity(4, 40),
    UniformCapacity(4, 60),
    UniformCapacity(4, 100),
    UniformCapacity(4, 200),
)


def theoretical_bound(mean_capacity: float, group_size: int) -> float:
    """The paper's reference curve ``1.5 ln(n) / ln(c)``."""
    return 1.5 * math.log(group_size) / math.log(mean_capacity)


SYSTEMS = (SystemKind.CAM_CHORD, SystemKind.CAM_KOORDE)


def sweep(scale: ExperimentScale) -> list[tuple[SystemKind, CapacityDistribution]]:
    """One point per (system, capacity range)."""
    return [(kind, d) for d in CAPACITY_RANGES for kind in SYSTEMS]


def run_point(
    scale: ExperimentScale,
    seed: int,
    point: tuple[SystemKind, CapacityDistribution],
) -> tuple[str, float, float]:
    """Mean multicast path length of one (system, range) pair."""
    kind, distribution = point
    rng = point_rng(seed, "fig11", kind.value, distribution)
    group = capacity_group(kind, scale, distribution, seed=seed)
    lengths = [
        group.multicast_from(group.random_member(rng)).average_path_length()
        for _ in range(scale.sources)
    ]
    return (kind.value, distribution.mean(), sum(lengths) / len(lengths))


def assemble(
    scale: ExperimentScale,
    seed: int,
    partials: Sequence[tuple[str, float, float]],
) -> FigureResult:
    """Collect the measured means plus the analytic bound curve."""
    result = FigureResult(
        figure="fig11",
        title="Average path length vs average node capacity",
    )
    per_system = {kind.value: Series(label=kind.value) for kind in SYSTEMS}
    for label, mean_capacity, mean_length in partials:
        per_system[label].add(mean_capacity, mean_length)
    bound = Series(label="1.5*ln(n)/ln(c)")
    for distribution in CAPACITY_RANGES:
        mean_capacity = distribution.mean()
        bound.add(mean_capacity, theoretical_bound(mean_capacity, scale.group_size))
    result.series.extend(per_system.values())
    result.series.append(bound)
    result.notes.append(
        "Both systems should sit below the 1.5*ln(n)/ln(c) bound; "
        "CAM-Chord wins at small capacities, CAM-Koorde at large ones "
        "(paper crossover between mean capacity 10 and 12)."
    )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 11 series."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
