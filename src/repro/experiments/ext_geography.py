"""Extension G: Geographic Layout vs random layout vs PNS (§5.2).

Section 5.2 names two ways to "cope with geography": *Proximity
Neighbor Selection* (pick the nearest node inside each neighbor
window — extD) and *Geographic Layout* (choose identifiers so nearby
hosts cluster on the ring).  This experiment compares three CAM-Chord
configurations over the same hosts on a geographic torus:

* random layout (the default hash placement),
* geographic layout (identifiers along a Hilbert curve of the host
  coordinates),
* random layout + PNS (extD's heuristic).

Expected shape: both techniques cut delivery delay versus the random
baseline.  Geographic layout helps most on the short successor-chain
hops (ring neighbors become LAN neighbors); PNS helps on every hop it
has a choice for.
"""

from __future__ import annotations

from random import Random

from repro.experiments.common import ExperimentScale, FigureResult, Series
from repro.idspace.geography import geographic_identifiers
from repro.idspace.ring import IdentifierSpace
from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.proximity import pns_cam_chord_multicast, tree_delay_statistics
from repro.overlay.base import Node, RingSnapshot, sample_identifiers
from repro.overlay.cam_chord import CamChordOverlay
from repro.sim.latency import GeographicLatency

GROUP_CAP = 8_000


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the layout comparison."""
    result = FigureResult(
        figure="extG",
        title="§5.2 techniques: mean delivery delay (seconds) per source",
    )
    rng = Random(seed)
    count = min(scale.group_size, GROUP_CAP)
    space = IdentifierSpace(scale.space_bits)
    coordinates = [(rng.random(), rng.random()) for _ in range(count)]
    capacities = [rng.randint(4, 10) for _ in range(count)]

    def snapshot_with(idents: list[int]) -> RingSnapshot:
        nodes = [
            Node(ident=ident, capacity=capacities[i])
            for i, ident in enumerate(idents)
        ]
        return RingSnapshot(space, nodes)

    random_idents = sample_identifiers(count, space.size, Random(seed + 1))
    geo_idents = geographic_identifiers(coordinates, space)

    layouts = {
        "random layout": snapshot_with(random_idents),
        "geographic layout": snapshot_with(geo_idents),
    }
    # pin every host's true position in each layout's latency model
    models: dict[str, GeographicLatency] = {}
    ident_lists = {"random layout": random_idents, "geographic layout": geo_idents}
    for name, idents in ident_lists.items():
        model = GeographicLatency(jitter=0.0, placement_seed=seed)
        for index, ident in enumerate(idents):
            model.place(ident, *coordinates[index])
        models[name] = model

    series_by_label: dict[str, Series] = {}

    def record(label: str, index: int, mean_delay: float, hops: float) -> None:
        series = series_by_label.setdefault(label, Series(label=label))
        series.add(index, mean_delay)
        series.add(index + 0.5, hops)

    source_count = scale.sources
    for name, snapshot in layouts.items():
        overlay = CamChordOverlay(snapshot)
        model = models[name]
        delay = lambda a, b, m=model: m.delay(a, b, Random(0))
        picker = Random(seed + 2)
        for index in range(source_count):
            source = snapshot.random_node(picker)
            tree = cam_chord_multicast(overlay, source)
            mean_delay, _ = tree_delay_statistics(tree, delay)
            record(name, index, mean_delay, tree.average_path_length())
            if name == "random layout":
                pns_tree = pns_cam_chord_multicast(overlay, source, delay)
                pns_delay, _ = tree_delay_statistics(pns_tree, delay)
                record(
                    "random + pns",
                    index,
                    pns_delay,
                    pns_tree.average_path_length(),
                )
    result.series.extend(series_by_label.values())
    result.notes.append(
        "Per source: x=k mean delivery delay, x=k+0.5 mean hop count. "
        "Both geographic layout and PNS should beat the random baseline "
        "on delay at comparable hop counts."
    )
    return result
