"""Extension L: scale sweep over decades of group size.

Times the three hot stages of the structural pipeline — array-backed
snapshot build, streaming tree construction, fused array metrics — for
all four registered systems at n = 10^3, 10^4, 10^5 (and, opt-in,
10^6), recording wall time and peak RSS per decade.  The paper
evaluates at n = 100,000; this experiment is the evidence that the
flat-array representation actually scales past it with ~linear memory.

Two execution modes:

* **figure mode** (``python -m repro.experiments extL``): a normal
  sweepable figure module — one sweep point per (decade, system).
  All decades share this process, so the peak-RSS note reports the
  process high-water mark only (it never goes down).
* **benchmark mode** (``python -m repro.experiments.ext_scale``): each
  decade is measured in its own subprocess (the module re-execs itself
  with the hidden ``--measure-one`` flag), so per-decade peak RSS is
  exact.  The CLI asserts an optional absolute ceiling and that memory
  grows ~linearly across decades, and writes a JSON report for CI.

The decade ladder tops out at 10^5 by default; the million-member tier
is opt-in via ``--max-n 1000000`` (or the ``REPRO_EXTL_DECADES``
environment variable, a comma list that overrides the ladder in both
modes) because it needs a few GB of RSS and minutes of wall time.

Identifier-space width grows with n to keep the member density n/N
near the paper's 100,000 / 2**19 ~ 0.19 (see
:data:`repro.experiments.common.SCALES`): occupancy, and with it tree
shape, must stay comparable across decades or the sweep would measure
a changing workload.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from random import Random
from typing import Sequence

from repro import perf
from repro.capacity.model import CapacityModel
from repro.experiments.common import ExperimentScale, FigureResult, Series, run_sweep
from repro.idspace.ring import IdentifierSpace
from repro.metrics.throughput import sustainable_throughput
from repro.multicast.session import SystemKind
from repro.overlay.base import build_array_snapshot
from repro.systems import all_descriptors, resolve

#: decade ladder per scale (figure mode); CI uses bench, the paper
#: point is 10^5.  The 10^6 tier never enters a ladder implicitly.
DECADES_BY_SCALE = {
    "bench": (1_000,),
    "quick": (1_000, 10_000),
    "default": (1_000, 10_000, 100_000),
    "paper": (1_000, 10_000, 100_000),
}

#: environment override: comma-separated decades, e.g. "1000,1000000"
DECADES_ENV = "REPRO_EXTL_DECADES"

#: the full opt-in ladder the CLI selects from with --max-n
FULL_LADDER = (1_000, 10_000, 100_000, 1_000_000)

#: the Figure 6 bandwidth setup: uniform [400, 1000] kbps, p = 100
LOW_KBPS = 400.0
HIGH_KBPS = 1000.0
PER_LINK_KBPS = 100.0

#: fanout knob for the uniform baselines (Chord base / Koorde degree)
BASELINE_FANOUT = 16

#: allowed super-linearity of peak RSS between adjacent decades: the
#: measured ratio may exceed the size ratio by at most this factor
#: (interpreter noise, allocator slack, constant overheads at small n)
LINEARITY_SLACK = 1.5


def space_bits_for(count: int) -> int:
    """Density-preserving identifier width: smallest b with n/2**b
    at or below the paper's ~0.19 occupancy (floor 12 bits)."""
    return max(12, (4 * count - 1).bit_length())


def decades_for(scale: ExperimentScale) -> tuple[int, ...]:
    """The decade ladder of a scale, or the env-var override."""
    override = os.environ.get(DECADES_ENV)
    if override:
        return tuple(int(part) for part in override.split(",") if part.strip())
    return DECADES_BY_SCALE.get(scale.name, DECADES_BY_SCALE["default"])


def measure_system(kind: SystemKind, count: int, seed: int) -> dict:
    """Build + multicast + fused metrics for one system at one n.

    Uses the array-backed snapshot constructor throughout, so peak
    memory is the flat columns plus the kernel's CSR state — no Node
    tuple, no ident->Node dict.
    """
    system = resolve(kind)
    rng = Random(f"extL:{seed}:{count}")
    bandwidths = [rng.uniform(LOW_KBPS, HIGH_KBPS) for _ in range(count)]
    model = CapacityModel(PER_LINK_KBPS, minimum=system.min_capacity)
    capacities = model.capacities(bandwidths)

    watch = perf.StopWatch()
    with watch:
        snapshot = build_array_snapshot(
            IdentifierSpace(space_bits_for(count)),
            capacities,
            bandwidths=bandwidths,
            rng=Random(seed),
        )
        overlay = system.build_overlay(snapshot, uniform_fanout=BASELINE_FANOUT)
    build_s = watch.elapsed

    source = snapshot.node_for_index(0)
    with watch:
        tree = system.run_multicast(overlay, source)
    multicast_s = watch.elapsed

    with watch:
        throughput = sustainable_throughput(tree, snapshot)
    metrics_s = watch.elapsed

    return {
        "system": system.name,
        "n": count,
        "build_s": round(build_s, 4),
        "multicast_s": round(multicast_s, 4),
        "metrics_s": round(metrics_s, 4),
        "receivers": len(tree.order),
        "throughput_kbps": round(throughput, 3),
    }


def measure_decade(count: int, seed: int) -> dict:
    """All four systems at one decade, plus this process's peak RSS.

    ``peak_rss_mb`` is the *process* high-water mark — exact only when
    the decade runs in a fresh process (see
    :func:`measure_decades_isolated`).
    """
    systems = [
        measure_system(system.kind, count, seed) for system in all_descriptors()
    ]
    return {
        "n": count,
        "space_bits": space_bits_for(count),
        "seed": seed,
        "systems": systems,
        "peak_rss_mb": perf.peak_rss_mb(),
    }


def measure_decades_isolated(decades: Sequence[int], seed: int) -> list[dict]:
    """One subprocess per decade: exact per-decade peak RSS.

    Peak RSS is a high-water mark that only grows within a process, so
    decades measured in one process would all report the largest
    decade's footprint; the re-exec resets the mark.  (This relies on
    :func:`repro.perf.peak_rss` reading ``VmHWM``, which ``exec``
    resets — ``ru_maxrss`` survives exec on Linux, so a child of a
    large parent would inherit the parent's footprint.)  Falls back to
    in-process measurement when the interpreter cannot be re-launched
    (embedded/frozen).
    """
    results: list[dict] = []
    for count in decades:
        command = [
            sys.executable,
            "-m",
            "repro.experiments.ext_scale",
            "--measure-one",
            str(count),
            "--seed",
            str(seed),
        ]
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
            results.append(json.loads(proc.stdout))
        except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
            results.append(measure_decade(count, seed))
    return results


def check_rss(
    results: Sequence[dict], ceiling_mb: float | None
) -> list[str]:
    """RSS assertions: absolute ceiling and ~linear growth in n."""
    failures: list[str] = []
    measured = [r for r in results if r.get("peak_rss_mb") is not None]
    if ceiling_mb is not None:
        for entry in measured:
            if entry["peak_rss_mb"] > ceiling_mb:
                failures.append(
                    f"n={entry['n']}: peak RSS {entry['peak_rss_mb']}MB "
                    f"exceeds ceiling {ceiling_mb}MB"
                )
    for smaller, larger in zip(measured, measured[1:]):
        size_ratio = larger["n"] / smaller["n"]
        rss_ratio = larger["peak_rss_mb"] / max(smaller["peak_rss_mb"], 1e-9)
        if rss_ratio > size_ratio * LINEARITY_SLACK:
            failures.append(
                f"n={smaller['n']}->{larger['n']}: peak RSS grew "
                f"{rss_ratio:.2f}x for a {size_ratio:.0f}x size step "
                f"(limit {size_ratio * LINEARITY_SLACK:.1f}x)"
            )
    return failures


# -- figure mode (sweepable module contract) ---------------------------------


def sweep(scale: ExperimentScale) -> list[tuple[int, SystemKind]]:
    """One point per (decade, system)."""
    return [
        (count, system.kind)
        for count in decades_for(scale)
        for system in all_descriptors()
    ]


def run_point(
    scale: ExperimentScale, seed: int, point: tuple[int, SystemKind]
) -> dict:
    """Measure one system at one decade."""
    count, kind = point
    return measure_system(kind, count, seed)


def assemble(
    scale: ExperimentScale, seed: int, partials: Sequence[dict]
) -> FigureResult:
    """Per-system multicast-time curves vs n, build/metrics in notes."""
    result = FigureResult(
        figure="extL",
        title="Structural pipeline wall time (s) vs group size",
    )
    per_system: dict[str, Series] = {}
    for entry in partials:
        label = f"{entry['system']} multicast_s"
        series = per_system.get(label)
        if series is None:
            series = per_system[label] = Series(label=label)
            result.series.append(series)
        series.add(float(entry["n"]), entry["multicast_s"])
        result.notes.append(
            f"{entry['system']} n={entry['n']}: build {entry['build_s']}s, "
            f"multicast {entry['multicast_s']}s, metrics {entry['metrics_s']}s, "
            f"{entry['receivers']} receivers"
        )
    rss = perf.peak_rss_mb()
    if rss is not None:
        result.notes.append(
            f"process peak RSS {rss}MB (lifetime high-water mark; run "
            "python -m repro.experiments.ext_scale for per-decade isolation)"
        )
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the scale-sweep series."""
    return run_sweep(sweep, run_point, assemble, scale, seed)


# -- benchmark mode (subprocess-isolated CLI) --------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-ext-scale",
        description="Scale sweep with per-decade subprocess RSS isolation.",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=100_000,
        help="largest decade to run (pass 1000000 to opt into the "
        "million-member tier; default 100000)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--rss-ceiling-mb",
        type=float,
        default=None,
        help="fail (exit 1) when any decade's peak RSS exceeds this",
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write the report to this path"
    )
    parser.add_argument(
        "--measure-one",
        type=int,
        default=None,
        metavar="N",
        help=argparse.SUPPRESS,  # internal: one decade, JSON on stdout
    )
    args = parser.parse_args(argv)

    if args.measure_one is not None:
        print(json.dumps(measure_decade(args.measure_one, args.seed)))
        return 0

    override = os.environ.get(DECADES_ENV)
    if override:
        decades = tuple(int(part) for part in override.split(",") if part.strip())
    else:
        decades = tuple(n for n in FULL_LADDER if n <= args.max_n)
    if not decades:
        parser.error(f"--max-n {args.max_n} leaves no decades to run")

    results = measure_decades_isolated(decades, args.seed)
    for entry in results:
        rss = entry["peak_rss_mb"]
        rss_text = f"{rss}MB" if rss is not None else "n/a"
        print(f"n={entry['n']} (b={entry['space_bits']}): peak RSS {rss_text}")
        for system in entry["systems"]:
            print(
                f"  {system['system']:10s} build {system['build_s']:8.3f}s  "
                f"multicast {system['multicast_s']:8.3f}s  "
                f"metrics {system['metrics_s']:8.3f}s  "
                f"({system['receivers']} receivers)"
            )

    failures = check_rss(results, args.rss_ceiling_mb)
    report = {
        "decades": list(decades),
        "seed": args.seed,
        "rss_ceiling_mb": args.rss_ceiling_mb,
        "results": results,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report -> {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
