"""Figure 9: multicast path-length distribution in CAM-Chord.

One curve per capacity range {4, [4..6], [4..8], [4..10], [4..20],
[4..40], [4..60], [4..100], [4..200]}: how many members are reached in
exactly h hops.  Expected shape (paper): single-peaked curves that
shift left as capacities grow, with rapidly diminishing returns beyond
[4..10] and no heavy right tail.
"""

from __future__ import annotations

from typing import Sequence

from repro.capacity.distributions import (
    CapacityDistribution,
    FixedCapacity,
    UniformCapacity,
)
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    capacity_group,
    merged_histogram,
    point_rng,
    run_sweep,
)
from repro.multicast.session import SystemKind

CAPACITY_RANGES: tuple[CapacityDistribution, ...] = (
    FixedCapacity(4),
    UniformCapacity(4, 6),
    UniformCapacity(4, 8),
    UniformCapacity(4, 10),
    UniformCapacity(4, 20),
    UniformCapacity(4, 40),
    UniformCapacity(4, 60),
    UniformCapacity(4, 100),
    UniformCapacity(4, 200),
)

#: one sweep point: (figure tag, system, capacity range)
PathDistPoint = tuple[str, SystemKind, CapacityDistribution]


def sweep(scale: ExperimentScale) -> list[PathDistPoint]:
    """One point per capacity range (Figure 9: CAM-Chord)."""
    return [("fig9", SystemKind.CAM_CHORD, d) for d in CAPACITY_RANGES]


def run_point(
    scale: ExperimentScale, seed: int, point: PathDistPoint
) -> tuple[str, list[tuple[int, int]]]:
    """One capacity range: merged path-length histogram over sources.

    Source draws come from a per-point RNG stream keyed by (figure,
    range), so every point is independent of its sweep neighbors —
    the property that lets points run on worker processes while staying
    bit-identical to the serial sweep.
    """
    figure, kind, distribution = point
    rng = point_rng(seed, figure, kind.value, distribution)
    group = capacity_group(kind, scale, distribution, seed=seed)
    trees = [
        group.multicast_from(group.random_member(rng)) for _ in range(scale.sources)
    ]
    histogram = merged_histogram(trees)
    return (str(distribution), list(histogram.items()))


def assemble(
    scale: ExperimentScale,
    seed: int,
    partials: Sequence[tuple[str, list[tuple[int, int]]]],
) -> FigureResult:
    """Collect the per-range histograms into the Figure 9 curves."""
    result = build_figure("fig9", SystemKind.CAM_CHORD, partials)
    result.notes.append(
        "Curves are single-peaked and shift left as the capacity range "
        "widens; improvement saturates beyond [4..10]."
    )
    return result


def build_figure(
    figure: str,
    kind: SystemKind,
    partials: Sequence[tuple[str, list[tuple[int, int]]]],
) -> FigureResult:
    """Shared assembly for the Figure 9/10 path-length distributions."""
    result = FigureResult(
        figure=figure,
        title=f"Path length distribution in {kind.value}",
    )
    for label, histogram in partials:
        series = Series(label=label)
        for hops, count in histogram:
            series.add(float(hops), float(count))
        result.series.append(series)
    return result


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the Figure 9 curves."""
    return run_sweep(sweep, run_point, assemble, scale, seed)
