"""Figure 9: multicast path-length distribution in CAM-Chord.

One curve per capacity range {4, [4..6], [4..8], [4..10], [4..20],
[4..40], [4..60], [4..100], [4..200]}: how many members are reached in
exactly h hops.  Expected shape (paper): single-peaked curves that
shift left as capacities grow, with rapidly diminishing returns beyond
[4..10] and no heavy right tail.
"""

from __future__ import annotations

from random import Random

from repro.capacity.distributions import (
    CapacityDistribution,
    FixedCapacity,
    UniformCapacity,
)
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    capacity_group,
    merged_histogram,
)
from repro.multicast.session import SystemKind

CAPACITY_RANGES: tuple[CapacityDistribution, ...] = (
    FixedCapacity(4),
    UniformCapacity(4, 6),
    UniformCapacity(4, 8),
    UniformCapacity(4, 10),
    UniformCapacity(4, 20),
    UniformCapacity(4, 40),
    UniformCapacity(4, 60),
    UniformCapacity(4, 100),
    UniformCapacity(4, 200),
)


def run(
    scale: ExperimentScale,
    seed: int = 0,
    kind: SystemKind = SystemKind.CAM_CHORD,
    capacity_ranges: tuple[CapacityDistribution, ...] = CAPACITY_RANGES,
    figure: str = "fig9",
) -> FigureResult:
    """Regenerate the Figure 9 curves (also reused by Figure 10)."""
    result = FigureResult(
        figure=figure,
        title=f"Path length distribution in {kind.value}",
    )
    rng = Random(seed)
    for distribution in capacity_ranges:
        group = capacity_group(kind, scale, distribution, seed=seed)
        trees = [
            group.multicast_from(group.random_member(rng))
            for _ in range(scale.sources)
        ]
        histogram = merged_histogram(trees)
        series = Series(label=str(distribution))
        for hops, count in histogram.items():
            series.add(float(hops), float(count))
        result.series.append(series)
    result.notes.append(
        "Curves are single-peaked and shift left as the capacity range "
        "widens; improvement saturates beyond [4..10]."
    )
    return result
