"""Reproduction harness: one module per figure of Section 6 plus the
extension experiments of DESIGN.md.

Run everything::

    python -m repro.experiments --scale quick all

or a single figure::

    python -m repro.experiments fig6 fig11

Scales: ``quick`` (n=5,000 — seconds per figure), ``default``
(n=30,000), ``paper`` (n=100,000, the paper's group size).  Figure
*shapes* (orderings, crossovers, ratios) are stable across scales; see
EXPERIMENTS.md for the measured outputs.
"""

from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    Series,
    resolve_scale,
)

__all__ = ["ExperimentScale", "FigureResult", "Series", "resolve_scale"]
