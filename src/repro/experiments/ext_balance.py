"""Extension E: tree balance — the paper's splitter vs El-Ansary.

Section 3.4 argues that the El-Ansary broadcast is unbalanced ("the
depths of the root's subtrees range from O(log n) to O(1) ... the
number of children per node ranges from 1 to (M - h)") while the
paper's splitter keeps children counts even.  This ablation runs both
on the *same* Chord overlay (uniform fanout, same membership) and
compares root degree, maximum node degree, depth, and path-length
spread.

Expected shape: El-Ansary's root degree ~ (k-1) log_k n vs the
balanced splitter's k; smaller average path length for El-Ansary's
top-heavy tree but a much larger degree spread (which is exactly what
destroys its bottleneck throughput in Figure 6's model).
"""

from __future__ import annotations

from random import Random

from repro.experiments.common import ExperimentScale, FigureResult, Series, bandwidth_group
from repro.metrics.tree_stats import summarize_tree
from repro.multicast.cam_chord import cam_chord_multicast
from repro.multicast.chord_broadcast import chord_broadcast
from repro.multicast.session import SystemKind
from repro.overlay.chord import ChordOverlay

FANOUT = 4


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the balance ablation."""
    result = FigureResult(
        figure="extE",
        title=f"Tree balance on base-{FANOUT} Chord: balanced splitter vs El-Ansary",
    )
    group = bandwidth_group(
        SystemKind.CHORD, scale, per_link_kbps=100, uniform_fanout=FANOUT, seed=seed
    )
    overlay = group.overlay
    assert isinstance(overlay, ChordOverlay)
    rng = Random(seed)
    members = {n.ident for n in group.snapshot}

    balanced = Series(label="balanced (ours)")
    el_ansary = Series(label="el-ansary")
    for index in range(scale.sources):
        source = group.random_member(rng)
        for series, tree in (
            (balanced, cam_chord_multicast(overlay, source)),
            (el_ansary, chord_broadcast(overlay, source)),
        ):
            tree.verify_exactly_once(members)
            stats = summarize_tree(tree)
            root_degree = tree.children_counts()[source.ident]
            series.add(index, float(root_degree))
            series.add(index + 0.2, float(stats.max_children))
            series.add(index + 0.4, float(stats.max_path_length))
            series.add(index + 0.6, stats.average_path_length)
    result.series.extend([balanced, el_ansary])
    result.notes.append(
        "Per source: x=k root degree, k+0.2 max degree, k+0.4 tree "
        "depth, k+0.6 mean path length.  The balanced splitter should "
        "cap both degrees at the fanout; El-Ansary's root degree grows "
        "with log n."
    )
    return result
