"""Extension B: forwarding-load balance — flooding vs tree building.

Quantifies the Section 5.1 analysis.  A workload of m messages from m
distinct random sources is pushed through

* (a) the **flooding** architecture — each source's own implicit
  CAM-Chord tree (the paper's approach), and
* (b) the **tree-building** architecture — one shared tree built by
  reverse path forwarding toward a rendezvous key (the Scribe/Bayeux
  family the paper contrasts with), every message descending it.

Expected shape: under the shared tree, internal nodes forward
O(k * M) while the majority (leaves) forward nothing — high
max-to-mean ratio and idle fraction — and routing convergence near the
root gives some nodes more children than their capacity (the §5.1
"disparity").  Under flooding every node is internal in some trees and
leaf in others: per-node load concentrates around O(M), and no node
ever exceeds its capacity.
"""

from __future__ import annotations

from random import Random

from repro.experiments.common import ExperimentScale, FigureResult, Series, bandwidth_group
from repro.metrics.load import ForwardingLoad, flooding_load
from repro.multicast.session import SystemKind
from repro.multicast.tree_building import build_shared_tree
from repro.overlay.cam_chord import CamChordOverlay

#: number of multicast sources (= messages) in the workload
SOURCE_COUNT = 32


def run(scale: ExperimentScale, seed: int = 0) -> FigureResult:
    """Regenerate the load-balance comparison."""
    result = FigureResult(
        figure="extB",
        title="Forwarding-load balance: flooding vs reverse-path shared tree",
    )
    group = bandwidth_group(SystemKind.CAM_CHORD, scale, per_link_kbps=100, seed=seed)
    overlay = group.overlay
    assert isinstance(overlay, CamChordOverlay)
    rng = Random(seed)
    sources = [group.random_member(rng) for _ in range(SOURCE_COUNT)]
    trees = [group.multicast_from(source) for source in sources]

    flood = flooding_load(trees, message_kbits=1.0)
    shared_tree = build_shared_tree(
        overlay, group_key=rng.randrange(group.overlay.space.size)
    )
    shared = ForwardingLoad(
        per_node=shared_tree.forwarding_load(message_count=SOURCE_COUNT)
    )

    for label, load in (("flooding", flood), ("single-tree", shared)):
        series = Series(label=label)
        series.add(0, load.mean)
        series.add(1, load.max_over_mean)
        series.add(2, load.coefficient_of_variation)
        series.add(3, load.idle_fraction)
        result.series.append(series)

    violations = shared_tree.capacity_violations(group.snapshot)
    disparity = Series(label="shared-tree capacity disparity")
    disparity.add(0, float(len(violations)))  # overloaded nodes
    disparity.add(1, float(max(violations.values(), default=0)))  # worst excess
    disparity.add(
        2,
        float(max(shared_tree.children_counts().values(), default=0)),
    )  # max degree
    result.series.append(disparity)
    result.notes.append(
        "x-codes: 0=mean kbits forwarded per node, 1=max/mean, "
        "2=coefficient of variation, 3=idle fraction.  Flooding should "
        "show a much smaller max/mean and idle fraction.  The disparity "
        "series (0=#overloaded nodes, 1=worst excess children, 2=max "
        "degree) quantifies §5.1's closing observation: the shared tree "
        "ignores capacities, the CAM trees cannot."
    )
    return result
